"""Model architectures.

``TinyResNet`` and ``TinyShuffleNet`` are reduced-depth analogues of the
paper's ResNet-18 and ShuffleNetv2: the ResNet variant is parameter-heavier
and slower per image, the ShuffleNet variant is lighter and faster — the
property that makes ShuffleNet more storage-bandwidth bound in the paper's
experiments.  ``SmallCNN`` and ``LinearProbe`` are cheaper models used where
training cost, not architecture fidelity, matters.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.training.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAveragePool,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualBlock,
    Sequential,
    ShuffleBlock,
)


class Model:
    """A classifier over NHWC image batches."""

    #: Relative single-image compute cost, used by the throughput simulator to
    #: map model choice to images/second (ResNet-18 : ShuffleNetv2 is roughly
    #: 760/405 in the paper's cluster).
    relative_compute_cost = 1.0

    def __init__(self, network: Sequential, n_classes: int) -> None:
        self.network = network
        self.n_classes = n_classes

    def forward(self, images_nhwc: np.ndarray) -> np.ndarray:
        """Compute logits for an (N, H, W, C) batch scaled to [0, 1]."""
        inputs = np.transpose(np.asarray(images_nhwc, dtype=np.float64), (0, 3, 1, 2))
        return self.network.forward(inputs)

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate a gradient with respect to the logits."""
        self.network.backward(grad_logits)

    def set_training(self, training: bool) -> None:
        """Toggle training/evaluation mode (affects batch norm)."""
        self.network.set_training(training)

    def parameter_layers(self) -> list[Layer]:
        """All layers owning parameters."""
        return self.network.parameter_layers()

    # -- checkpointing (needed by the dynamic autotuner's rollback) ---------

    def state_dict(self) -> list[dict[str, np.ndarray]]:
        """Copy every parameter tensor."""
        return [
            {name: parameter.copy() for name, parameter in layer.params.items()}
            for layer in self.parameter_layers()
        ]

    def load_state_dict(self, state: list[dict[str, np.ndarray]]) -> None:
        """Restore parameters captured by :meth:`state_dict`."""
        layers = self.parameter_layers()
        if len(layers) != len(state):
            raise ValueError("state does not match the model's layer structure")
        for layer, saved in zip(layers, state):
            for name, value in saved.items():
                layer.params[name] = value.copy()

    def clone(self) -> "Model":
        """Deep copy of the model (used to probe scan groups without side effects)."""
        return copy.deepcopy(self)

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(
            parameter.size for layer in self.parameter_layers() for parameter in layer.params.values()
        )


class TinyResNet(Model):
    """A small residual network (the ResNet-18 analogue)."""

    relative_compute_cost = 760.0 / 405.0  # ~1.88x slower per image than ShuffleNet

    def __init__(self, n_classes: int, in_channels: int = 3, width: int = 16, seed: int = 0) -> None:
        network = Sequential(
            [
                Conv2d(in_channels, width, 3, stride=1, padding=1, seed=seed),
                BatchNorm2d(width),
                ReLU(),
                MaxPool2d(2),
                ResidualBlock(width, width, stride=1, seed=seed + 10),
                ResidualBlock(width, 2 * width, stride=2, seed=seed + 20),
                ResidualBlock(2 * width, 2 * width, stride=1, seed=seed + 30),
                GlobalAveragePool(),
                Linear(2 * width, n_classes, seed=seed + 40),
            ]
        )
        super().__init__(network, n_classes)


class TinyShuffleNet(Model):
    """A small channel-shuffle network (the ShuffleNetv2 analogue)."""

    relative_compute_cost = 1.0

    def __init__(self, n_classes: int, in_channels: int = 3, width: int = 16, seed: int = 0) -> None:
        network = Sequential(
            [
                Conv2d(in_channels, width, 3, stride=2, padding=1, seed=seed),
                BatchNorm2d(width),
                ReLU(),
                ShuffleBlock(width, stride=1, seed=seed + 10),
                ShuffleBlock(width, stride=2, seed=seed + 20),
                ShuffleBlock(width, stride=1, seed=seed + 30),
                GlobalAveragePool(),
                Linear(width, n_classes, seed=seed + 40),
            ]
        )
        super().__init__(network, n_classes)


class SmallCNN(Model):
    """A two-conv CNN for fast experiments."""

    relative_compute_cost = 0.5

    def __init__(self, n_classes: int, in_channels: int = 3, width: int = 12, seed: int = 0) -> None:
        network = Sequential(
            [
                Conv2d(in_channels, width, 3, stride=2, padding=1, seed=seed),
                BatchNorm2d(width),
                ReLU(),
                Conv2d(width, 2 * width, 3, stride=2, padding=1, seed=seed + 1),
                BatchNorm2d(2 * width),
                ReLU(),
                GlobalAveragePool(),
                Linear(2 * width, n_classes, seed=seed + 2),
            ]
        )
        super().__init__(network, n_classes)


class LinearProbe(Model):
    """A single linear layer over flattened pixels (fastest possible model)."""

    relative_compute_cost = 0.1

    def __init__(self, n_classes: int, input_size: int, in_channels: int = 3, seed: int = 0) -> None:
        network = Sequential(
            [
                Flatten(),
                Linear(input_size * input_size * in_channels, n_classes, seed=seed),
            ]
        )
        super().__init__(network, n_classes)
