"""Classification metrics."""

from __future__ import annotations

import numpy as np


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of samples whose label is among the top-``k`` predictions."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, logits.shape[1])
    top_k = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean())


def top_1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy (the metric reported in the paper's figures)."""
    return top_k_accuracy(logits, labels, k=1)
