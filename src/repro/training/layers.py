"""Neural-network layers with manual forward/backward passes.

All layers operate on NCHW float64 arrays (except :class:`Linear`, which
takes 2-D inputs).  Each layer exposes ``params`` and ``grads`` dictionaries
keyed by parameter name so the optimizer can update them generically.
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base class: a differentiable module with named parameters."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.training = True

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def set_training(self, training: bool) -> None:
        """Switch between training and evaluation behaviour."""
        self.training = training

    def parameter_layers(self) -> list["Layer"]:
        """Layers (including children) that own parameters."""
        return [self] if self.params else []


def _im2col(inputs: np.ndarray, kernel: int, stride: int, padding: int) -> tuple[np.ndarray, int, int]:
    """Unfold NCHW inputs into columns for convolution as matrix multiply."""
    batch, channels, height, width = inputs.shape
    if padding:
        inputs = np.pad(
            inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    out_height = (height + 2 * padding - kernel) // stride + 1
    out_width = (width + 2 * padding - kernel) // stride + 1
    strides = inputs.strides
    shape = (batch, channels, out_height, out_width, kernel, kernel)
    view = np.lib.stride_tricks.as_strided(
        inputs,
        shape=shape,
        strides=(strides[0], strides[1], strides[2] * stride, strides[3] * stride, strides[2], strides[3]),
        writeable=False,
    )
    columns = view.reshape(batch, channels, out_height * out_width, kernel * kernel)
    columns = columns.transpose(0, 2, 1, 3).reshape(batch * out_height * out_width, channels * kernel * kernel)
    return np.ascontiguousarray(columns), out_height, out_width


def _col2im(
    columns: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_height: int,
    out_width: int,
) -> np.ndarray:
    """Fold column gradients back to the padded input and crop the padding."""
    batch, channels, height, width = input_shape
    padded = np.zeros((batch, channels, height + 2 * padding, width + 2 * padding))
    columns = columns.reshape(batch, out_height * out_width, channels, kernel * kernel).transpose(0, 2, 1, 3)
    columns = columns.reshape(batch, channels, out_height, out_width, kernel, kernel)
    for kernel_row in range(kernel):
        for kernel_col in range(kernel):
            padded[
                :,
                :,
                kernel_row : kernel_row + out_height * stride : stride,
                kernel_col : kernel_col + out_width * stride : stride,
            ] += columns[:, :, :, :, kernel_row, kernel_col]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Layer):
    """2-D convolution via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.params["weight"] = rng.normal(0.0, scale, size=(out_channels, fan_in))
        self.params["bias"] = np.zeros(out_channels)
        self._cache: tuple | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        columns, out_height, out_width = _im2col(inputs, self.kernel_size, self.stride, self.padding)
        output = columns @ self.params["weight"].T + self.params["bias"]
        batch = inputs.shape[0]
        output = output.reshape(batch, out_height, out_width, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (inputs.shape, columns, out_height, out_width)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape, columns, out_height, out_width = self._cache
        batch = input_shape[0]
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(batch * out_height * out_width, self.out_channels)
        self.grads["weight"] = grad_flat.T @ columns
        self.grads["bias"] = grad_flat.sum(axis=0)
        grad_columns = grad_flat @ self.params["weight"]
        return _col2im(
            grad_columns, input_shape, self.kernel_size, self.stride, self.padding, out_height, out_width
        )


class BatchNorm2d(Layer):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, n_channels: int, momentum: float = 0.9, epsilon: float = 1e-5) -> None:
        super().__init__()
        self.momentum = momentum
        self.epsilon = epsilon
        self.params["gamma"] = np.ones(n_channels)
        self.params["beta"] = np.zeros(n_channels)
        self.running_mean = np.zeros(n_channels)
        self.running_var = np.ones(n_channels)
        self._cache: tuple | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if self.training:
            mean = inputs.mean(axis=(0, 2, 3))
            var = inputs.var(axis=(0, 2, 3))
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        mean_b = mean[None, :, None, None]
        std_b = np.sqrt(var + self.epsilon)[None, :, None, None]
        normalized = (inputs - mean_b) / std_b
        self._cache = (normalized, std_b)
        return self.params["gamma"][None, :, None, None] * normalized + self.params["beta"][None, :, None, None]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        normalized, std_b = self._cache
        self.grads["gamma"] = (grad_output * normalized).sum(axis=(0, 2, 3))
        self.grads["beta"] = grad_output.sum(axis=(0, 2, 3))
        n = grad_output.shape[0] * grad_output.shape[2] * grad_output.shape[3]
        gamma = self.params["gamma"][None, :, None, None]
        grad_normalized = grad_output * gamma
        grad_input = (
            grad_normalized
            - grad_normalized.mean(axis=(0, 2, 3), keepdims=True)
            - normalized * (grad_normalized * normalized).sum(axis=(0, 2, 3), keepdims=True) / n
        ) / std_b
        return grad_input


class ReLU(Layer):
    """Rectified linear unit."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class MaxPool2d(Layer):
    """Max pooling with a square window (window == stride)."""

    def __init__(self, window: int = 2) -> None:
        super().__init__()
        self.window = window

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        batch, channels, height, width = inputs.shape
        window = self.window
        trimmed_h = height - height % window
        trimmed_w = width - width % window
        trimmed = inputs[:, :, :trimmed_h, :trimmed_w]
        reshaped = trimmed.reshape(batch, channels, trimmed_h // window, window, trimmed_w // window, window)
        output = reshaped.max(axis=(3, 5))
        self._cache = (inputs.shape, trimmed.shape, reshaped, output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape, trimmed_shape, reshaped, output = self._cache
        window = self.window
        mask = reshaped == output[:, :, :, None, :, None]
        grad = mask * grad_output[:, :, :, None, :, None]
        grad = grad.reshape(trimmed_shape)
        full = np.zeros(input_shape)
        full[:, :, : trimmed_shape[2], : trimmed_shape[3]] = grad
        return full


class GlobalAveragePool(Layer):
    """Average over spatial dimensions, producing an (N, C) output."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._shape
        scale = 1.0 / (height * width)
        return np.broadcast_to(
            grad_output[:, :, None, None] * scale, self._shape
        ).copy()


class Linear(Layer):
    """Fully connected layer on (N, D) inputs."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        scale = np.sqrt(2.0 / in_features)
        self.params["weight"] = rng.normal(0.0, scale, size=(out_features, in_features))
        self.params["bias"] = np.zeros(out_features)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._inputs = inputs
        return inputs @ self.params["weight"].T + self.params["bias"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self.grads["weight"] = grad_output.T @ self._inputs
        self.grads["bias"] = grad_output.sum(axis=0)
        return grad_output @ self.params["weight"]


class Flatten(Layer):
    """Flatten NCHW inputs to (N, C*H*W)."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._shape)


class Sequential(Layer):
    """A chain of layers applied in order."""

    def __init__(self, layers: list[Layer]) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            inputs = layer.forward(inputs)
        return inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def set_training(self, training: bool) -> None:
        super().set_training(training)
        for layer in self.layers:
            layer.set_training(training)

    def parameter_layers(self) -> list[Layer]:
        collected: list[Layer] = []
        for layer in self.layers:
            collected.extend(layer.parameter_layers())
        return collected


class ResidualBlock(Layer):
    """A basic ResNet block: two 3x3 conv-BN pairs plus a (projected) skip."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1, seed: int = 0) -> None:
        super().__init__()
        self.body = Sequential(
            [
                Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, seed=seed),
                BatchNorm2d(out_channels),
                ReLU(),
                Conv2d(out_channels, out_channels, 3, stride=1, padding=1, seed=seed + 1),
                BatchNorm2d(out_channels),
            ]
        )
        self.needs_projection = stride != 1 or in_channels != out_channels
        if self.needs_projection:
            self.projection = Sequential(
                [
                    Conv2d(in_channels, out_channels, 1, stride=stride, padding=0, seed=seed + 2),
                    BatchNorm2d(out_channels),
                ]
            )
        self.activation = ReLU()

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        body_out = self.body.forward(inputs)
        skip = self.projection.forward(inputs) if self.needs_projection else inputs
        return self.activation.forward(body_out + skip)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.activation.backward(grad_output)
        grad_body = self.body.backward(grad)
        grad_skip = self.projection.backward(grad) if self.needs_projection else grad
        return grad_body + grad_skip

    def set_training(self, training: bool) -> None:
        super().set_training(training)
        self.body.set_training(training)
        if self.needs_projection:
            self.projection.set_training(training)
        self.activation.set_training(training)

    def parameter_layers(self) -> list[Layer]:
        collected = self.body.parameter_layers()
        if self.needs_projection:
            collected.extend(self.projection.parameter_layers())
        return collected


class ChannelShuffle(Layer):
    """ShuffleNet channel shuffle across groups."""

    def __init__(self, n_groups: int = 2) -> None:
        super().__init__()
        self.n_groups = n_groups

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        batch, channels, height, width = inputs.shape
        if channels % self.n_groups:
            raise ValueError(f"channels ({channels}) not divisible by groups ({self.n_groups})")
        self._shape = inputs.shape
        reshaped = inputs.reshape(batch, self.n_groups, channels // self.n_groups, height, width)
        return reshaped.transpose(0, 2, 1, 3, 4).reshape(batch, channels, height, width)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._shape
        per_group = channels // self.n_groups
        reshaped = grad_output.reshape(batch, per_group, self.n_groups, height, width)
        return reshaped.transpose(0, 2, 1, 3, 4).reshape(batch, channels, height, width)


class ShuffleBlock(Layer):
    """A simplified ShuffleNetv2 unit.

    The input is split channel-wise; one half passes through a small conv
    stack, the halves are concatenated and channel-shuffled.  A strided
    variant processes both halves to reduce spatial resolution.
    """

    def __init__(self, channels: int, stride: int = 1, seed: int = 0) -> None:
        super().__init__()
        if channels % 2:
            raise ValueError("ShuffleBlock requires an even channel count")
        self.stride = stride
        half = channels // 2
        self.branch = Sequential(
            [
                Conv2d(half, half, 3, stride=stride, padding=1, seed=seed),
                BatchNorm2d(half),
                ReLU(),
            ]
        )
        if stride != 1:
            self.shortcut = Sequential(
                [
                    Conv2d(half, half, 3, stride=stride, padding=1, seed=seed + 1),
                    BatchNorm2d(half),
                    ReLU(),
                ]
            )
        self.shuffle = ChannelShuffle(2)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        half = inputs.shape[1] // 2
        left, right = inputs[:, :half], inputs[:, half:]
        right_out = self.branch.forward(right)
        left_out = self.shortcut.forward(left) if self.stride != 1 else left
        merged = np.concatenate([left_out, right_out], axis=1)
        self._half = half
        return self.shuffle.forward(merged)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.shuffle.backward(grad_output)
        half = self._half
        grad_left, grad_right = grad[:, :half], grad[:, half:]
        grad_right_in = self.branch.backward(grad_right)
        grad_left_in = self.shortcut.backward(grad_left) if self.stride != 1 else grad_left
        return np.concatenate([grad_left_in, grad_right_in], axis=1)

    def set_training(self, training: bool) -> None:
        super().set_training(training)
        self.branch.set_training(training)
        if self.stride != 1:
            self.shortcut.set_training(training)

    def parameter_layers(self) -> list[Layer]:
        collected = self.branch.parameter_layers()
        if self.stride != 1:
            collected.extend(self.shortcut.parameter_layers())
        return collected
