"""Training loop with history, evaluation, and checkpoint/rollback.

The :class:`Trainer` iterates a :class:`~repro.pipeline.loader.DataLoader`,
applies SGD with the warmup/step schedule, records per-epoch loss, accuracy,
and wall-clock time (the raw material of the time-to-accuracy figures), and
supports checkpoint + rollback, which the dynamic autotuner uses when a scan
group turns out to be too aggressive (Section 4.5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.pipeline.batch import Minibatch
from repro.pipeline.loader import DataLoader
from repro.training.losses import softmax_cross_entropy
from repro.training.metrics import top_1_accuracy
from repro.training.models import Model
from repro.training.optim import SGD, WarmupStepSchedule


@dataclass(frozen=True)
class EpochResult:
    """Metrics of one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    wall_seconds: float
    images_per_second: float
    scan_group: int | None = None
    test_accuracy: float | None = None


@dataclass
class TrainingHistory:
    """The sequence of epoch results of one run."""

    epochs: list[EpochResult] = field(default_factory=list)

    def append(self, result: EpochResult) -> None:
        self.epochs.append(result)

    @property
    def final_test_accuracy(self) -> float | None:
        """Last recorded test accuracy."""
        for result in reversed(self.epochs):
            if result.test_accuracy is not None:
                return result.test_accuracy
        return None

    @property
    def best_test_accuracy(self) -> float | None:
        """Best recorded test accuracy."""
        values = [r.test_accuracy for r in self.epochs if r.test_accuracy is not None]
        return max(values) if values else None

    def total_wall_seconds(self) -> float:
        """Total training wall time."""
        return sum(result.wall_seconds for result in self.epochs)

    def time_to_accuracy(self, target: float) -> float | None:
        """Cumulative wall time until test accuracy first reaches ``target``."""
        elapsed = 0.0
        for result in self.epochs:
            elapsed += result.wall_seconds
            if result.test_accuracy is not None and result.test_accuracy >= target:
                return elapsed
        return None

    def loss_curve(self) -> list[tuple[int, float]]:
        """(epoch, train loss) pairs."""
        return [(result.epoch, result.train_loss) for result in self.epochs]

    def accuracy_curve(self) -> list[tuple[int, float]]:
        """(epoch, test accuracy) pairs for epochs that were evaluated."""
        return [
            (result.epoch, result.test_accuracy)
            for result in self.epochs
            if result.test_accuracy is not None
        ]


class Trainer:
    """Trains a model from a data loader."""

    def __init__(
        self,
        model: Model,
        optimizer: SGD | None = None,
        schedule: WarmupStepSchedule | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer if optimizer is not None else SGD(learning_rate=0.05)
        self.schedule = schedule
        self.history = TrainingHistory()
        self._epoch = 0

    # -- single steps ------------------------------------------------------------

    def train_step(self, batch: Minibatch) -> tuple[float, float]:
        """One SGD update; returns (loss, accuracy) on the batch."""
        layers = self.model.parameter_layers()
        self.optimizer.zero_grad(layers)
        logits = self.model.forward(batch.images)
        loss, grad = softmax_cross_entropy(logits, batch.labels)
        self.model.backward(grad)
        self.optimizer.step(layers)
        return loss, top_1_accuracy(logits, batch.labels)

    def evaluate(self, loader: DataLoader) -> float:
        """Top-1 accuracy over a loader's epoch (no parameter updates)."""
        self.model.set_training(False)
        correct_weighted = 0.0
        total = 0
        for batch in loader.epoch():
            logits = self.model.forward(batch.images)
            correct_weighted += top_1_accuracy(logits, batch.labels) * len(batch)
            total += len(batch)
        self.model.set_training(True)
        return correct_weighted / total if total else 0.0

    def batch_loss(self, batch: Minibatch) -> float:
        """Loss of a batch without updating parameters."""
        self.model.set_training(False)
        logits = self.model.forward(batch.images)
        loss, _ = softmax_cross_entropy(logits, batch.labels)
        self.model.set_training(True)
        return loss

    def gradient_vector(self, batch: Minibatch) -> np.ndarray:
        """Flattened parameter gradient of the loss on ``batch`` (no update)."""
        layers = self.model.parameter_layers()
        self.optimizer.zero_grad(layers)
        logits = self.model.forward(batch.images)
        _, grad = softmax_cross_entropy(logits, batch.labels)
        self.model.backward(grad)
        pieces = []
        for layer in layers:
            for name in sorted(layer.params):
                gradient = layer.grads.get(name)
                pieces.append(
                    gradient.ravel() if gradient is not None else np.zeros(layer.params[name].size)
                )
        return np.concatenate(pieces)

    # -- epochs -------------------------------------------------------------------

    def train_epoch(
        self,
        loader: DataLoader,
        test_loader: DataLoader | None = None,
        scan_group: int | None = None,
        extra_seconds_per_image: float = 0.0,
    ) -> EpochResult:
        """Train for one epoch and append the result to the history.

        ``extra_seconds_per_image`` lets callers charge simulated I/O time on
        top of the measured compute time (used when the loader is backed by a
        simulated storage device rather than the local filesystem).
        """
        if self.schedule is not None:
            self.optimizer.learning_rate = self.schedule.learning_rate(self._epoch)
        self.model.set_training(True)
        start = time.perf_counter()
        losses: list[float] = []
        accuracies: list[float] = []
        n_images = 0
        for batch in loader.epoch():
            loss, accuracy = self.train_step(batch)
            losses.append(loss)
            accuracies.append(accuracy)
            n_images += len(batch)
        wall = time.perf_counter() - start + extra_seconds_per_image * n_images
        test_accuracy = self.evaluate(test_loader) if test_loader is not None else None
        result = EpochResult(
            epoch=self._epoch,
            train_loss=float(np.mean(losses)) if losses else float("nan"),
            train_accuracy=float(np.mean(accuracies)) if accuracies else float("nan"),
            wall_seconds=wall,
            images_per_second=n_images / wall if wall > 0 else 0.0,
            scan_group=scan_group,
            test_accuracy=test_accuracy,
        )
        self.history.append(result)
        self._epoch += 1
        return result

    def fit(
        self,
        loader: DataLoader,
        n_epochs: int,
        test_loader: DataLoader | None = None,
        scan_group: int | None = None,
    ) -> TrainingHistory:
        """Train for ``n_epochs`` epochs."""
        for _ in range(n_epochs):
            self.train_epoch(loader, test_loader=test_loader, scan_group=scan_group)
        return self.history

    # -- checkpointing -------------------------------------------------------------

    def checkpoint(self) -> list[dict[str, np.ndarray]]:
        """Capture the model parameters."""
        return self.model.state_dict()

    def rollback(self, state: list[dict[str, np.ndarray]]) -> None:
        """Restore parameters captured by :meth:`checkpoint`."""
        self.model.load_state_dict(state)
