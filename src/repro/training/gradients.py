"""Per-scan-group gradient analysis (§A.6.2, Figure 19).

The dynamic autotuner's preferred signal is the cosine similarity between
the gradient computed on scan-group-``k`` images and the gradient computed
on the full-quality images: as the similarity approaches 1, updates from the
compressed data approach the true updates.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import PCRDataset
from repro.pipeline.batch import collate
from repro.training.loop import Trainer


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine of the angle between two flattened gradient vectors."""
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


def dataset_gradient(
    trainer: Trainer,
    dataset: PCRDataset,
    scan_group: int,
    max_samples: int | None = None,
) -> np.ndarray:
    """Gradient of the loss over (a subset of) the dataset at a scan group."""
    previous_group = dataset.scan_group
    dataset.set_scan_group(scan_group)
    images: list[np.ndarray] = []
    labels: list[int] = []
    try:
        for sample in dataset:
            images.append(sample.image.as_float())
            labels.append(sample.label)
            if max_samples is not None and len(images) >= max_samples:
                break
    finally:
        dataset.set_scan_group(previous_group)
    batch = collate(images, labels)
    return trainer.gradient_vector(batch)


def scan_group_gradient_similarities(
    trainer: Trainer,
    dataset: PCRDataset,
    scan_groups: list[int],
    reference_group: int | None = None,
    max_samples: int | None = None,
) -> dict[int, float]:
    """Cosine similarity of each scan group's gradient to the reference gradient.

    The reference defaults to the dataset's highest scan group (full quality),
    matching Figure 19.
    """
    reference = reference_group if reference_group is not None else dataset.n_groups
    reference_gradient = dataset_gradient(trainer, dataset, reference, max_samples=max_samples)
    similarities: dict[int, float] = {}
    for group in scan_groups:
        gradient = dataset_gradient(trainer, dataset, group, max_samples=max_samples)
        similarities[group] = cosine_similarity(gradient, reference_gradient)
    return similarities
