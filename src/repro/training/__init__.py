"""A small numpy neural-network training substrate.

The paper trains ResNet-18 and ShuffleNetv2 with PyTorch; offline, this
package provides the minimum equivalent: convolutional layers with manual
backprop, batch normalization, residual and channel-shuffle blocks, SGD with
momentum and the warmup/step learning-rate schedule of Section 4.1, a
training loop with checkpoint/rollback (needed by the dynamic autotuner),
and per-scan-group gradient extraction for the cosine-similarity analysis of
§A.6.2.
"""

from repro.training.loop import EpochResult, Trainer, TrainingHistory
from repro.training.losses import softmax_cross_entropy
from repro.training.metrics import top_k_accuracy
from repro.training.models import LinearProbe, SmallCNN, TinyResNet, TinyShuffleNet
from repro.training.optim import SGD, WarmupStepSchedule

__all__ = [
    "EpochResult",
    "LinearProbe",
    "SGD",
    "SmallCNN",
    "TinyResNet",
    "TinyShuffleNet",
    "Trainer",
    "TrainingHistory",
    "WarmupStepSchedule",
    "softmax_cross_entropy",
    "top_k_accuracy",
]
