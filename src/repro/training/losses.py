"""Loss functions."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient with respect to the logits.

    Parameters
    ----------
    logits:
        ``(N, n_classes)`` raw scores.
    labels:
        ``(N,)`` integer class labels.
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    n = logits.shape[0]
    probabilities = softmax(logits)
    clipped = np.clip(probabilities[np.arange(n), labels], 1e-12, None)
    loss = float(-np.log(clipped).mean())
    grad = probabilities.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n
