"""SGD with momentum and the warmup + step learning-rate schedule.

The paper trains with SGD, an initial learning rate of 0.1 (0.01 for the
pretrained tasks), gradual warmup, and 10x drops at fixed epochs
(Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.training.layers import Layer


@dataclass
class WarmupStepSchedule:
    """Gradual warmup followed by multiplicative drops at milestone epochs."""

    base_learning_rate: float = 0.1
    warmup_epochs: int = 5
    milestones: tuple[int, ...] = (30, 60)
    drop_factor: float = 0.1

    def learning_rate(self, epoch: int) -> float:
        """Learning rate to use during ``epoch`` (0-based)."""
        if self.warmup_epochs > 0 and epoch < self.warmup_epochs:
            return self.base_learning_rate * (epoch + 1) / self.warmup_epochs
        rate = self.base_learning_rate
        for milestone in self.milestones:
            if epoch >= milestone:
                rate *= self.drop_factor
        return rate


@dataclass
class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    learning_rate: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 1e-4
    _velocities: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)

    def step(self, layers: list[Layer]) -> None:
        """Apply one update to every parameter of the given layers."""
        for layer in layers:
            velocities = self._velocities.setdefault(id(layer), {})
            for name, parameter in layer.params.items():
                gradient = layer.grads.get(name)
                if gradient is None:
                    continue
                if self.weight_decay and parameter.ndim > 1:
                    gradient = gradient + self.weight_decay * parameter
                velocity = velocities.get(name)
                if velocity is None:
                    velocity = np.zeros_like(parameter)
                velocity = self.momentum * velocity - self.learning_rate * gradient
                velocities[name] = velocity
                layer.params[name] = parameter + velocity

    def zero_grad(self, layers: list[Layer]) -> None:
        """Clear accumulated gradients."""
        for layer in layers:
            layer.grads.clear()
