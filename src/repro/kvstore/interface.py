"""Abstract key-value store interface and backend selection."""

from __future__ import annotations

import abc
from collections.abc import Iterator
from pathlib import Path

SQLITE_BACKEND = "sqlite"
LSM_BACKEND = "lsm"
BACKENDS = (SQLITE_BACKEND, LSM_BACKEND)


class KVStore(abc.ABC):
    """A byte-keyed, byte-valued persistent store.

    Implementations must support point reads/writes, deletes, prefix
    iteration in key order, and explicit close.  Stores are context
    managers; exiting the context closes (and flushes) the store.
    """

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""

    @abc.abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Return the value for ``key`` or ``None`` if absent."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove ``key`` if present (no error if absent)."""

    @abc.abstractmethod
    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(key, value)`` pairs with the given prefix, in key order."""

    @abc.abstractmethod
    def close(self) -> None:
        """Flush and release resources."""

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())


def open_store(path: str | Path, backend: str = SQLITE_BACKEND) -> KVStore:
    """Open (creating if necessary) a store of the requested backend."""
    from repro.kvstore.lsm_store import LSMStore
    from repro.kvstore.sqlite_store import SQLiteStore

    if backend == SQLITE_BACKEND:
        return SQLiteStore(path)
    if backend == LSM_BACKEND:
        return LSMStore(path)
    raise ValueError(f"unknown kvstore backend {backend!r}; expected one of {BACKENDS}")


def detect_backend(path: str | Path) -> str:
    """Guess which backend created the store at ``path``.

    SQLite stores are single files; LSM stores are directories containing a
    manifest.
    """
    path = Path(path)
    if path.is_dir():
        return LSM_BACKEND
    return SQLITE_BACKEND
