"""SQLite-backed key-value store."""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Iterator
from pathlib import Path

from repro.kvstore.interface import KVStore


class SQLiteStore(KVStore):
    """A :class:`KVStore` stored in a single SQLite database file.

    The store may be read from multiple threads (the prefetching data loader
    issues lookups from its worker pool); a process-level lock serializes
    access to the shared connection.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(str(self._path), check_same_thread=False)
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS kv (key BLOB PRIMARY KEY, value BLOB NOT NULL)"
        )
        self._connection.commit()

    @property
    def path(self) -> Path:
        """Filesystem location of the database file."""
        return self._path

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._connection.execute(
                "INSERT INTO kv (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, value),
            )
            self._connection.commit()

    def put_many(self, items: list[tuple[bytes, bytes]]) -> None:
        """Insert many pairs in a single transaction (used by the writer)."""
        with self._lock:
            self._connection.executemany(
                "INSERT INTO kv (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                items,
            )
            self._connection.commit()

    def get(self, key: bytes) -> bytes | None:
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM kv WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else bytes(row[0])

    def delete(self, key: bytes) -> None:
        with self._lock:
            self._connection.execute("DELETE FROM kv WHERE key = ?", (key,))
            self._connection.commit()

    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        with self._lock:
            if prefix:
                upper = prefix[:-1] + bytes([prefix[-1] + 1]) if prefix[-1] < 0xFF else None
                if upper is None:
                    cursor = self._connection.execute(
                        "SELECT key, value FROM kv WHERE key >= ? ORDER BY key", (prefix,)
                    )
                else:
                    cursor = self._connection.execute(
                        "SELECT key, value FROM kv WHERE key >= ? AND key < ? ORDER BY key",
                        (prefix, upper),
                    )
            else:
                cursor = self._connection.execute("SELECT key, value FROM kv ORDER BY key")
            rows = cursor.fetchall()
        for key, value in rows:
            key_bytes = bytes(key)
            if key_bytes.startswith(prefix):
                yield key_bytes, bytes(value)

    def close(self) -> None:
        with self._lock:
            self._connection.commit()
            self._connection.close()
