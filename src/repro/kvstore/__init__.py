"""Key-value metadata stores backing the PCR metadata database.

The paper's implementation supports SQLite and RocksDB as backing databases
for PCR metadata (Section 3.2, "Loader").  This package provides the same
choice: a :class:`~repro.kvstore.sqlite_store.SQLiteStore` backed by the
standard-library ``sqlite3`` module, and a pure-Python log-structured
merge-tree store (:class:`~repro.kvstore.lsm_store.LSMStore`) standing in
for RocksDB.  Both implement the :class:`~repro.kvstore.interface.KVStore`
interface and are interchangeable from the PCR writer/reader's perspective.
"""

from repro.kvstore.interface import KVStore, open_store
from repro.kvstore.lsm_store import LSMStore
from repro.kvstore.sqlite_store import SQLiteStore

__all__ = ["KVStore", "LSMStore", "SQLiteStore", "open_store"]
