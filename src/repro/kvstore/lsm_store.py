"""A small log-structured merge-tree key-value store (RocksDB stand-in).

Writes go to an in-memory memtable backed by a write-ahead log; when the
memtable exceeds a size threshold it is flushed to an immutable sorted-run
file (an "SSTable").  Reads consult the memtable first and then the runs
from newest to oldest.  When the number of runs exceeds a limit they are
compacted into a single run, dropping deleted and shadowed keys.
"""

from __future__ import annotations

import json
import struct
from collections.abc import Iterator
from pathlib import Path

from repro.kvstore.interface import KVStore

_TOMBSTONE = None
_WAL_NAME = "wal.log"
_MANIFEST_NAME = "MANIFEST.json"
_RUN_TEMPLATE = "run-{:06d}.sst"

_PUT_TAG = 1
_DELETE_TAG = 2


class LSMStore(KVStore):
    """A directory-backed LSM-tree :class:`KVStore`."""

    def __init__(
        self,
        path: str | Path,
        memtable_limit_bytes: int = 1 << 20,
        max_runs_before_compaction: int = 4,
    ) -> None:
        self._dir = Path(path)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._memtable_limit = memtable_limit_bytes
        self._max_runs = max_runs_before_compaction
        self._memtable: dict[bytes, bytes | None] = {}
        self._memtable_bytes = 0
        self._runs: list[str] = []
        self._next_run_id = 0
        self._closed = False
        self._load_manifest()
        self._wal_path = self._dir / _WAL_NAME
        self._replay_wal()
        self._wal_file = open(self._wal_path, "ab")

    # -- public API --------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._assert_open()
        self._append_wal(_PUT_TAG, key, value)
        self._memtable[key] = value
        self._memtable_bytes += len(key) + len(value)
        self._maybe_flush()

    def get(self, key: bytes) -> bytes | None:
        self._assert_open()
        if key in self._memtable:
            return self._memtable[key]
        for run_name in reversed(self._runs):
            entries = self._read_run(run_name)
            if key in entries:
                return entries[key]
        return None

    def delete(self, key: bytes) -> None:
        self._assert_open()
        self._append_wal(_DELETE_TAG, key, b"")
        self._memtable[key] = _TOMBSTONE
        self._memtable_bytes += len(key)
        self._maybe_flush()

    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        self._assert_open()
        merged: dict[bytes, bytes | None] = {}
        for run_name in self._runs:
            merged.update(self._read_run(run_name))
        merged.update(self._memtable)
        for key in sorted(merged):
            value = merged[key]
            if value is not None and key.startswith(prefix):
                yield key, value

    def close(self) -> None:
        if self._closed:
            return
        self._flush_memtable()
        self._wal_file.close()
        self._closed = True

    # -- internals ---------------------------------------------------------

    def _assert_open(self) -> None:
        if self._closed:
            raise RuntimeError("store is closed")

    def _append_wal(self, tag: int, key: bytes, value: bytes) -> None:
        record = struct.pack("<BII", tag, len(key), len(value)) + key + value
        self._wal_file.write(record)
        self._wal_file.flush()

    def _replay_wal(self) -> None:
        if not self._wal_path.exists():
            return
        data = self._wal_path.read_bytes()
        offset = 0
        while offset + 9 <= len(data):
            tag, key_length, value_length = struct.unpack_from("<BII", data, offset)
            offset += 9
            end = offset + key_length + value_length
            if end > len(data):
                break  # torn write at the tail; discard
            key = data[offset : offset + key_length]
            value = data[offset + key_length : end]
            offset = end
            if tag == _PUT_TAG:
                self._memtable[key] = value
                self._memtable_bytes += key_length + value_length
            elif tag == _DELETE_TAG:
                self._memtable[key] = _TOMBSTONE
                self._memtable_bytes += key_length

    def _maybe_flush(self) -> None:
        if self._memtable_bytes >= self._memtable_limit:
            self._flush_memtable()

    def _flush_memtable(self) -> None:
        if not self._memtable:
            return
        run_name = _RUN_TEMPLATE.format(self._next_run_id)
        self._next_run_id += 1
        self._write_run(run_name, dict(sorted(self._memtable.items())))
        self._runs.append(run_name)
        self._memtable.clear()
        self._memtable_bytes = 0
        # Truncate the WAL: its contents are now durable in the run file.
        self._wal_file = self._reset_wal()
        if len(self._runs) > self._max_runs:
            self._compact()
        self._save_manifest()

    def _reset_wal(self):
        if hasattr(self, "_wal_file") and not self._wal_file.closed:
            self._wal_file.close()
        self._wal_path.write_bytes(b"")
        return open(self._wal_path, "ab")

    def _write_run(self, run_name: str, entries: dict[bytes, bytes | None]) -> None:
        parts = []
        for key, value in entries.items():
            is_tombstone = 1 if value is None else 0
            payload = b"" if value is None else value
            parts.append(struct.pack("<BII", is_tombstone, len(key), len(payload)))
            parts.append(key)
            parts.append(payload)
        (self._dir / run_name).write_bytes(b"".join(parts))

    def _read_run(self, run_name: str) -> dict[bytes, bytes | None]:
        data = (self._dir / run_name).read_bytes()
        entries: dict[bytes, bytes | None] = {}
        offset = 0
        while offset + 9 <= len(data):
            is_tombstone, key_length, value_length = struct.unpack_from("<BII", data, offset)
            offset += 9
            key = data[offset : offset + key_length]
            value = data[offset + key_length : offset + key_length + value_length]
            offset += key_length + value_length
            entries[key] = None if is_tombstone else value
        return entries

    def _compact(self) -> None:
        merged: dict[bytes, bytes | None] = {}
        for run_name in self._runs:
            merged.update(self._read_run(run_name))
        live = {k: v for k, v in sorted(merged.items()) if v is not None}
        for run_name in self._runs:
            (self._dir / run_name).unlink(missing_ok=True)
        run_name = _RUN_TEMPLATE.format(self._next_run_id)
        self._next_run_id += 1
        self._write_run(run_name, live)
        self._runs = [run_name]

    def _save_manifest(self) -> None:
        manifest = {"runs": self._runs, "next_run_id": self._next_run_id}
        (self._dir / _MANIFEST_NAME).write_text(json.dumps(manifest))

    def _load_manifest(self) -> None:
        manifest_path = self._dir / _MANIFEST_NAME
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
            self._runs = list(manifest.get("runs", []))
            self._next_run_id = int(manifest.get("next_run_id", 0))
