"""MXNet RecordIO / ImageRecord-style record files.

Each item is framed as::

    u32 magic | u32 length | u32 flag | f32 label | payload (encoded image)

mirroring MXNet's ``IRHeader`` + JPEG payload structure.  Like TFRecords,
the format stores a single quality level per file.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.codecs.baseline import BaselineCodec
from repro.codecs.image import ImageBuffer

RECORDIO_MAGIC = 0xCED7230A
_HEADER_STRUCT = "<IIIf"


@dataclass(frozen=True)
class RecordIOItem:
    """One item read from a RecordIO file."""

    index: int
    label: int
    image_bytes: bytes


class RecordIOWriter:
    """Writes items into one RecordIO-style file."""

    def __init__(self, path: str | Path, quality: int = 90) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "wb")
        self.codec = BaselineCodec(quality=quality)
        self.n_items = 0

    def add_sample(self, key: str, image: ImageBuffer | bytes, label: int) -> None:
        """Append one item (the key is recorded only as the running index)."""
        del key  # RecordIO identifies items positionally
        encoded = image if isinstance(image, bytes) else self.codec.encode(image)
        header = struct.pack(_HEADER_STRUCT, RECORDIO_MAGIC, len(encoded), self.n_items, float(label))
        self._handle.write(header)
        self._handle.write(encoded)
        self.n_items += 1

    def write_dataset(self, samples: Iterable[tuple[str, ImageBuffer | bytes, int]]) -> int:
        """Append every sample and close the file."""
        for key, image, label in samples:
            self.add_sample(key, image, label)
        self.close()
        return self.n_items

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RecordIOWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RecordIOReader:
    """Iterates items from a RecordIO-style file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def __iter__(self) -> Iterator[RecordIOItem]:
        data = self.path.read_bytes()
        offset = 0
        header_size = struct.calcsize(_HEADER_STRUCT)
        while offset + header_size <= len(data):
            magic, length, index, label = struct.unpack_from(_HEADER_STRUCT, data, offset)
            if magic != RECORDIO_MAGIC:
                raise ValueError(f"bad RecordIO magic at offset {offset}")
            offset += header_size
            payload = data[offset : offset + length]
            offset += length
            yield RecordIOItem(index=index, label=int(label), image_bytes=payload)

    def total_bytes(self) -> int:
        """Size of the record file in bytes."""
        return self.path.stat().st_size
