"""Baseline record formats the paper compares against.

* :mod:`repro.records.file_per_image` — a File-per-Image layout in the style
  of PyTorch's ``ImageFolder`` (one encoded file per sample, class
  subdirectories).
* :mod:`repro.records.tfrecord` — a TFRecord-style framed record file
  (length + CRC framing, one protobuf-ish payload per sample).
* :mod:`repro.records.recordio` — an MXNet ImageRecord/RecordIO-style format
  (magic + length framing with an embedded label header).

All three store data at a single, fixed quality; that is precisely the
limitation PCRs remove.
"""

from repro.records.file_per_image import FilePerImageDataset, FilePerImageWriter
from repro.records.recordio import RecordIOReader, RecordIOWriter
from repro.records.tfrecord import TFRecordReader, TFRecordWriter

__all__ = [
    "FilePerImageDataset",
    "FilePerImageWriter",
    "RecordIOReader",
    "RecordIOWriter",
    "TFRecordReader",
    "TFRecordWriter",
]
