"""File-per-Image layout (PyTorch ``ImageFolder`` style).

Every sample is stored as its own file under a per-class subdirectory::

    root/<class_label>/<key>.img

Accessing a shuffled epoch therefore issues one small random read per
sample — the access pattern the paper identifies as detrimental on
bandwidth-oriented storage (Section 2, Figure 1).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.codecs.baseline import BaselineCodec
from repro.codecs.image import ImageBuffer

IMAGE_SUFFIX = ".img"


@dataclass(frozen=True)
class FilePerImageSample:
    """One sample of a file-per-image dataset."""

    key: str
    label: int
    path: Path

    def read_bytes(self) -> bytes:
        """Read the encoded image file."""
        return self.path.read_bytes()


class FilePerImageWriter:
    """Writes a file-per-image dataset directory."""

    def __init__(self, root: str | Path, quality: int = 90) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.codec = BaselineCodec(quality=quality)
        self.n_samples = 0
        self.total_bytes = 0

    def add_sample(self, key: str, image: ImageBuffer | bytes, label: int) -> Path:
        """Write one sample and return its file path."""
        encoded = image if isinstance(image, bytes) else self.codec.encode(image)
        class_dir = self.root / str(label)
        class_dir.mkdir(parents=True, exist_ok=True)
        path = class_dir / f"{key}{IMAGE_SUFFIX}"
        path.write_bytes(encoded)
        self.n_samples += 1
        self.total_bytes += len(encoded)
        return path

    def write_dataset(self, samples: Iterable[tuple[str, ImageBuffer | bytes, int]]) -> int:
        """Write every sample; returns the number written."""
        for key, image, label in samples:
            self.add_sample(key, image, label)
        return self.n_samples


class FilePerImageDataset:
    """Reads a file-per-image dataset directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise FileNotFoundError(f"{self.root} is not a directory")
        self._samples = sorted(self._discover(), key=lambda s: s.key)
        self.codec = BaselineCodec()

    def _discover(self) -> Iterator[FilePerImageSample]:
        for class_dir in sorted(self.root.iterdir()):
            if not class_dir.is_dir():
                continue
            label = int(class_dir.name)
            for path in sorted(class_dir.glob(f"*{IMAGE_SUFFIX}")):
                yield FilePerImageSample(key=path.stem, label=label, path=path)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[FilePerImageSample]:
        return iter(self._samples)

    def __getitem__(self, index: int) -> FilePerImageSample:
        return self._samples[index]

    def read_image(self, index: int) -> tuple[ImageBuffer, int]:
        """Read and decode one sample; returns (image, label)."""
        sample = self._samples[index]
        return self.codec.decode(sample.read_bytes()), sample.label

    def total_bytes(self) -> int:
        """Total encoded bytes across all samples."""
        return sum(sample.path.stat().st_size for sample in self._samples)
