"""TFRecord-style record files.

Each record file is a sequence of framed examples::

    u64 payload_length | u32 length_crc | payload | u32 payload_crc

The payload is a tiny feature map (key, label, encoded image) serialized
with a minimal tag-length-value scheme standing in for the protobuf
``tf.train.Example`` message.  As in TensorFlow, the file supports only
full sequential iteration at the single quality it was encoded with.
"""

from __future__ import annotations

import struct
import zlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.codecs.baseline import BaselineCodec
from repro.codecs.image import ImageBuffer

_LENGTH_STRUCT = "<QI"
_CRC_STRUCT = "<I"

_TAG_KEY = 1
_TAG_LABEL = 2
_TAG_IMAGE = 3


def _masked_crc(data: bytes) -> int:
    """TFRecord-style masked CRC32C (plain CRC32 is used here)."""
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return ((crc >> 15) | (crc << 17)) & 0xFFFFFFFF ^ 0xA282EAD8


@dataclass(frozen=True)
class TFExample:
    """One (key, label, encoded image) example."""

    key: str
    label: int
    image_bytes: bytes

    def to_bytes(self) -> bytes:
        key_bytes = self.key.encode("utf-8")
        parts = [
            struct.pack("<BI", _TAG_KEY, len(key_bytes)),
            key_bytes,
            struct.pack("<BI", _TAG_LABEL, 8),
            struct.pack("<q", self.label),
            struct.pack("<BI", _TAG_IMAGE, len(self.image_bytes)),
            self.image_bytes,
        ]
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "TFExample":
        offset = 0
        key = ""
        label = 0
        image_bytes = b""
        while offset < len(payload):
            tag, length = struct.unpack_from("<BI", payload, offset)
            offset += 5
            value = payload[offset : offset + length]
            offset += length
            if tag == _TAG_KEY:
                key = value.decode("utf-8")
            elif tag == _TAG_LABEL:
                (label,) = struct.unpack("<q", value)
            elif tag == _TAG_IMAGE:
                image_bytes = value
        return cls(key=key, label=label, image_bytes=image_bytes)


class TFRecordWriter:
    """Writes examples into one TFRecord-style file."""

    def __init__(self, path: str | Path, quality: int = 90) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "wb")
        self.codec = BaselineCodec(quality=quality)
        self.n_examples = 0

    def add_sample(self, key: str, image: ImageBuffer | bytes, label: int) -> None:
        """Append one example."""
        encoded = image if isinstance(image, bytes) else self.codec.encode(image)
        payload = TFExample(key=key, label=label, image_bytes=encoded).to_bytes()
        length_bytes = struct.pack("<Q", len(payload))
        self._handle.write(length_bytes)
        self._handle.write(struct.pack(_CRC_STRUCT, _masked_crc(length_bytes)))
        self._handle.write(payload)
        self._handle.write(struct.pack(_CRC_STRUCT, _masked_crc(payload)))
        self.n_examples += 1

    def write_dataset(self, samples: Iterable[tuple[str, ImageBuffer | bytes, int]]) -> int:
        """Append every sample and close the file."""
        for key, image, label in samples:
            self.add_sample(key, image, label)
        self.close()
        return self.n_examples

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TFRecordWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TFRecordReader:
    """Iterates examples from a TFRecord-style file."""

    def __init__(self, path: str | Path, verify_crc: bool = True) -> None:
        self.path = Path(path)
        self.verify_crc = verify_crc

    def __iter__(self) -> Iterator[TFExample]:
        data = self.path.read_bytes()
        offset = 0
        while offset + 12 <= len(data):
            length, length_crc = struct.unpack_from(_LENGTH_STRUCT, data, offset)
            if self.verify_crc and _masked_crc(data[offset : offset + 8]) != length_crc:
                raise ValueError(f"corrupt length CRC at offset {offset}")
            offset += 12
            payload = data[offset : offset + length]
            offset += length
            (payload_crc,) = struct.unpack_from(_CRC_STRUCT, data, offset)
            offset += 4
            if self.verify_crc and _masked_crc(payload) != payload_crc:
                raise ValueError("corrupt payload CRC")
            yield TFExample.from_bytes(payload)

    def total_bytes(self) -> int:
        """Size of the record file in bytes."""
        return self.path.stat().st_size
