"""Progressive Compressed Records (PCR) — reproduction library.

This package reproduces the system described in "Progressive Compressed
Records: Taking a Byte out of Deep Learning Data" (Kuchnik, Amvrosiadis,
Smith; VLDB 2021).  It contains:

``repro.codecs``
    A from-scratch JPEG-style codec with baseline (sequential) and
    progressive (spectral-selection) scan modes, plus a lossless
    baseline-to-progressive transcoder.

``repro.core``
    The paper's contribution: the PCR storage format — encoder, decoder,
    scan-group layout, metadata database, and dataset-level API.

``repro.storage`` / ``repro.records`` / ``repro.kvstore``
    Substrates: simulated block devices and a striped storage cluster,
    baseline record formats (TFRecord/RecordIO/file-per-image), and
    key-value metadata stores (SQLite and an LSM tree).

``repro.pipeline`` / ``repro.training`` / ``repro.simulate``
    A prefetching data loader, a small numpy neural-network training
    stack, and the queueing-theory throughput / time-to-accuracy models
    from the paper's appendix.

``repro.datasets`` / ``repro.metrics`` / ``repro.tuning``
    Synthetic stand-ins for the paper's datasets, MSSIM/PSNR quality
    metrics, and static/dynamic scan-group autotuning.

``repro.serving``
    The network layer: a binary wire protocol, a caching TCP record
    server, a pooled client, and a remote ``DataLoader`` source.
"""

from __future__ import annotations

from typing import Any

__version__ = "1.0.0"

# Top-level convenience exports, resolved lazily so that importing a leaf
# subpackage (e.g. repro.codecs) never drags in the rest of the library.
_LAZY_EXPORTS = {
    "PCRDataset": ("repro.core.dataset", "PCRDataset"),
    "PCRReader": ("repro.core.reader", "PCRReader"),
    "PCRWriter": ("repro.core.writer", "PCRWriter"),
    "ScanGroupPolicy": ("repro.core.scan_groups", "ScanGroupPolicy"),
    "ProgressiveCodec": ("repro.codecs.progressive", "ProgressiveCodec"),
    "BaselineCodec": ("repro.codecs.baseline", "BaselineCodec"),
    "ImageBuffer": ("repro.codecs.image", "ImageBuffer"),
    "PCRRecordServer": ("repro.serving.server", "PCRRecordServer"),
    "PCRClient": ("repro.serving.client", "PCRClient"),
    "RemoteRecordSource": ("repro.serving.remote_source", "RemoteRecordSource"),
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def __dir__() -> list[str]:
    return sorted(__all__)
