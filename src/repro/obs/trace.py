"""Span-based tracing with Chrome trace-event export.

A *span* is one named, timed region of code::

    tracer = get_tracer()
    tracer.set_enabled(True)
    with tracer.span("decode.entropy"):
        ...

Spans nest naturally (the tracer keeps a per-thread stack, so each finished
span records the name of its enclosing span), timestamps come from
``time.perf_counter`` (monotonic), and finished spans land in a bounded
ring buffer — a long-running process keeps the most recent ``capacity``
spans and silently drops the oldest, so tracing never grows memory without
bound.

:meth:`Tracer.export_chrome` writes the buffer as Chrome trace-event JSON
(``"X"`` complete events, microsecond timestamps), loadable directly in
``chrome://tracing`` or https://ui.perfetto.dev — the per-batch loader
spans then render as a flame chart whose ``loader.wait`` rows *are* the
paper's Figure 11 stall timeline.

A disabled tracer (the default) costs one branch per ``span()`` call: it
returns a shared no-op context manager and touches nothing else.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path

__all__ = ["SpanEvent", "Tracer", "get_tracer"]


class SpanEvent:
    """One finished span: name, parent span name, start/duration, thread."""

    __slots__ = ("name", "parent", "start", "duration", "thread_id", "args")

    def __init__(self, name, parent, start, duration, thread_id, args) -> None:
        self.name = name
        self.parent = parent
        self.start = start
        self.duration = duration
        self.thread_id = thread_id
        self.args = args

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanEvent({self.name!r}, parent={self.parent!r}, "
            f"start={self.start:.6f}, duration={self.duration:.6f})"
        )


class _NoopSpan:
    """The shared context manager a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span; records itself into the tracer's ring buffer on exit."""

    __slots__ = ("_tracer", "name", "args", "start", "parent")

    def __init__(self, tracer: "Tracer", name: str, args) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self.start = 0.0
        self.parent = None

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self.parent = stack[-1] if stack else None
        stack.append(self.name)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._tracer._record(
            SpanEvent(
                self.name,
                self.parent,
                self.start,
                end - self.start,
                threading.get_ident(),
                self.args,
            )
        )


class Tracer:
    """Collects spans into a bounded ring buffer; exports Chrome trace JSON."""

    def __init__(self, capacity: int = 8192, enabled: bool = False) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._enabled = enabled
        self._events: deque[SpanEvent] = deque(maxlen=capacity)
        self._local = threading.local()
        #: perf_counter origin for exported timestamps, so every event in
        #: one export shares a zero point.
        self._epoch = time.perf_counter()

    # -- enablement -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = bool(enabled)

    # -- recording ------------------------------------------------------------

    def span(self, name: str, args: dict | None = None):
        """A context manager timing one region (no-op when disabled)."""
        if not self._enabled:
            return _NOOP_SPAN
        return _Span(self, name, args)

    def add_event(
        self,
        name: str,
        start: float,
        duration: float,
        args: dict | None = None,
        parent: str | None = None,
    ) -> None:
        """Inject an already-measured interval as a span.

        Used where the caller has timed the interval itself (the loader's
        stall accounting measures each wait exactly once and feeds both the
        :class:`~repro.pipeline.stall.StallTracker` and the trace from the
        same numbers, so the exported timeline matches the stall stats to
        the digit).  ``start`` is a ``time.perf_counter`` value.
        """
        if not self._enabled:
            return
        self._record(
            SpanEvent(name, parent, start, duration, threading.get_ident(), args)
        )

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, event: SpanEvent) -> None:
        self._events.append(event)  # deque.append is atomic under the GIL

    # -- inspection / export --------------------------------------------------

    def events(self) -> list[SpanEvent]:
        """The buffered spans, oldest first (completion order)."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def to_chrome_events(self) -> list[dict]:
        """The ring buffer as Chrome trace-event dicts (``"X"`` events)."""
        pid = os.getpid()
        chrome: list[dict] = []
        for event in self._events:
            entry = {
                "name": event.name,
                "ph": "X",
                "ts": (event.start - self._epoch) * 1e6,
                "dur": event.duration * 1e6,
                "pid": pid,
                "tid": event.thread_id,
                "cat": event.name.split(".", 1)[0],
            }
            args = dict(event.args) if event.args else {}
            if event.parent is not None:
                args["parent"] = event.parent
            if args:
                entry["args"] = args
            chrome.append(entry)
        chrome.sort(key=lambda entry: entry["ts"])
        return chrome

    def export_chrome(self, path: str | Path) -> Path:
        """Write the buffer as a ``chrome://tracing`` / Perfetto JSON file."""
        path = Path(path)
        document = {
            "traceEvents": self.to_chrome_events(),
            "displayTimeUnit": "ms",
        }
        path.write_text(json.dumps(document, indent=1) + "\n")
        return path


_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled until switched on)."""
    return _DEFAULT_TRACER


# A forked child inherits the parent's ring buffer; those spans belong to
# the parent's timeline, so drop them (the enabled flag is kept as-is).
if hasattr(os, "register_at_fork"):  # pragma: no branch - always true on POSIX
    os.register_at_fork(after_in_child=_DEFAULT_TRACER.clear)
