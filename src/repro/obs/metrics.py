"""A low-overhead, fork-aware metrics registry.

Every component of the stack — the loader, the decode pool, the record
server, the storage simulators — records its telemetry as *named metrics*
in a :class:`MetricsRegistry`:

* :class:`Counter` — a monotonically increasing total (``int`` or
  ``float``, e.g. requests served, seconds stalled);
* :class:`Gauge` — a point-in-time value (open connections, cached bytes);
* :class:`Histogram` — a fixed-bucket distribution (wait times, loop
  iteration latencies).

Design constraints, in order:

1. **Disabled means one branch.**  Every update method starts with
   ``if not enabled: return`` and does nothing else; a registry that is
   switched off costs a single predictable branch per event, which the
   ``obs_overhead`` rows in the benchmark JSONs measure.
2. **Thread-safe.**  Updates take a per-metric lock; metric creation takes
   the registry lock and is idempotent (``counter("x")`` always returns the
   same object), so hot paths can re-resolve metrics without caching.
3. **Fork-aware.**  A forked child (a ``DecodePool`` worker) must report
   only *its own* work.  ``os.register_at_fork`` resets the default
   registry in the child, and :meth:`MetricsRegistry.snapshot` /
   :func:`diff_snapshots` / :meth:`MetricsRegistry.merge` let the child
   ship per-chunk deltas back to the parent, where they aggregate into the
   parent's registry as if the work had run in-process.
4. **One snapshot schema.**  :meth:`MetricsRegistry.snapshot` returns a
   plain JSON-serializable dict; :func:`merge_snapshots` combines
   snapshots from different processes (or different cluster replicas, via
   the ``GET_METRICS`` wire op) into one fleet-wide view.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "get_registry",
    "diff_snapshots",
    "merge_snapshots",
]

#: Upper bucket edges (inclusive) for latency histograms, in seconds.  The
#: implicit final bucket catches everything above the last edge.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_registry", "_lock", "_value")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (a single branch when the registry is disabled)."""
        if not self._registry._enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_registry", "_lock", "_value")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int | float) -> None:
        if not self._registry._enabled:
            return
        self._value = value

    def inc(self, amount: int | float = 1) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Histogram:
    """A fixed-bucket distribution with a running sum and count.

    Bucket ``i`` counts observations ``edges[i-1] < v <= edges[i]``
    (inclusive upper edges); one extra overflow bucket counts everything
    above the last edge, so ``len(counts) == len(edges) + 1`` and no
    observation is ever dropped.
    """

    __slots__ = ("name", "edges", "_registry", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        edges: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram edges must be strictly increasing: {edges}")
        self.name = name
        self.edges = tuple(float(edge) for edge in edges)
        self._registry = registry
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation (a single branch when disabled)."""
        if not self._registry._enabled:
            return
        index = bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def counts(self) -> list[int]:
        with self._lock:
            return list(self._counts)

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.edges) + 1)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- enablement -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        """Turn the whole registry on or off (off = one branch per event)."""
        self._enabled = bool(enabled)

    # -- metric creation (idempotent by name) ---------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.get(name)
                if metric is None:
                    self._check_name(name, self._counters)
                    metric = self._counters[name] = Counter(name, self)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.get(name)
                if metric is None:
                    self._check_name(name, self._gauges)
                    metric = self._gauges[name] = Gauge(name, self)
        return metric

    def histogram(
        self, name: str, edges: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.get(name)
                if metric is None:
                    self._check_name(name, self._histograms)
                    metric = self._histograms[name] = Histogram(name, self, edges)
        if tuple(metric.edges) != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges {metric.edges}"
            )
        return metric

    def _check_name(self, name: str, own_kind: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own_kind and name in kind:
                raise ValueError(f"metric {name!r} already registered as another type")

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable view of every metric's current value."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: metric.value for name, metric in sorted(counters.items())},
            "gauges": {name: metric.value for name, metric in sorted(gauges.items())},
            "histograms": {
                name: {
                    "edges": list(metric.edges),
                    "counts": metric.counts,
                    "sum": metric.sum,
                    "count": metric.count,
                }
                for name, metric in sorted(histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. a worker-process delta) into this registry.

        Counters and histogram buckets add; gauges add too, since merging is
        used to aggregate *disjoint* sources (workers, replicas) where sums
        are the meaningful fleet-wide value.
        """
        if not self._enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).inc(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, edges=tuple(data["edges"]))
            with histogram._lock:
                for index, count in enumerate(data["counts"]):
                    histogram._counts[index] += count
                histogram._sum += data["sum"]
                histogram._count += data["count"]

    def reset(self) -> None:
        """Zero every metric (fork hook; also handy between test cases)."""
        with self._lock:
            metrics = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for metric in metrics:
            metric._reset()


def diff_snapshots(new: dict, old: dict) -> dict:
    """The per-event delta between two snapshots of the *same* registry.

    Counters and histogram buckets subtract; gauges keep their new value
    (a gauge is a level, not a total).  This is what a ``DecodePool``
    worker ships back per chunk: the work done since its previous chunk.
    """
    counters = {}
    for name, value in new.get("counters", {}).items():
        delta = value - old.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    histograms = {}
    for name, data in new.get("histograms", {}).items():
        previous = old.get("histograms", {}).get(
            name, {"counts": [0] * len(data["counts"]), "sum": 0.0, "count": 0}
        )
        count_delta = data["count"] - previous["count"]
        if count_delta:
            histograms[name] = {
                "edges": data["edges"],
                "counts": [n - p for n, p in zip(data["counts"], previous["counts"])],
                "sum": data["sum"] - previous["sum"],
                "count": count_delta,
            }
    return {
        "counters": counters,
        "gauges": dict(new.get("gauges", {})),
        "histograms": histograms,
    }


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Combine snapshots from disjoint sources into one fleet-wide snapshot.

    Counters, gauges, and histogram buckets all add — used by
    ``ClusterCoordinator.cluster_stats`` to merge the ``GET_METRICS``
    responses of every live replica.  Histograms merge only with matching
    edges (same metric, same code); mismatched edges raise.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            merged["gauges"][name] = merged["gauges"].get(name, 0) + value
        for name, data in snapshot.get("histograms", {}).items():
            existing = merged["histograms"].get(name)
            if existing is None:
                merged["histograms"][name] = {
                    "edges": list(data["edges"]),
                    "counts": list(data["counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                }
                continue
            if existing["edges"] != list(data["edges"]):
                raise ValueError(f"histogram {name!r} merged with mismatched edges")
            existing["counts"] = [
                a + b for a, b in zip(existing["counts"], data["counts"])
            ]
            existing["sum"] += data["sum"]
            existing["count"] += data["count"]
    return merged


_DEFAULT_REGISTRY = MetricsRegistry(enabled=True)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (the one fork resets in children)."""
    return _DEFAULT_REGISTRY


# A forked child (DecodePool worker, multiprocessing helper) inherits the
# parent's accumulated totals; reset them at fork so everything the child
# reports afterwards is exactly its own work.
if hasattr(os, "register_at_fork"):  # pragma: no branch - always true on POSIX
    os.register_at_fork(after_in_child=_DEFAULT_REGISTRY.reset)
