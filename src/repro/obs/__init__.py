"""``repro.obs`` — unified observability: metrics registry + span tracing.

One schema for every number the stack produces:

* :mod:`repro.obs.metrics` — named counters / gauges / fixed-bucket
  histograms in a thread-safe, fork-aware :class:`MetricsRegistry`, with
  snapshot / diff / merge operations that carry telemetry across process
  boundaries (``DecodePool`` workers) and across the wire (the record
  server's ``GET_METRICS`` op, cluster-wide aggregation).
* :mod:`repro.obs.trace` — a span :class:`Tracer` with a bounded ring
  buffer and Chrome trace-event export for ``chrome://tracing`` /
  Perfetto.

Both default objects are cheap when off: a disabled registry or tracer
costs one branch per event.  See ``docs/observability.md`` for the metric
catalog and span naming scheme.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    merge_snapshots,
)
from repro.obs.trace import SpanEvent, Tracer, get_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "SpanEvent",
    "Tracer",
    "diff_snapshots",
    "get_registry",
    "get_tracer",
    "merge_snapshots",
]
