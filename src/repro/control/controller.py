"""The closed-loop fidelity controller and the planes it steers through.

``FidelityController`` is the thread that closes the paper's autotune loop
over the live telemetry plane: every control interval it polls the latest
:class:`~repro.control.telemetry.ClientTelemetry` per client, runs the
configured policy, publishes the resulting
:class:`~repro.control.telemetry.ScanGroupHint` back where the next
``REPORT_TELEMETRY`` ack will pick it up, biases the serving cache toward
the groups the fleet is being steered to, and records every decision (with
its rationale) both in an inspectable decision log and as ``control.*``
metrics on the plane's registry — so ``GET_METRICS`` scrapes see the
controller's behaviour next to the serving counters it acted on.

The controller never talks to sockets itself; it goes through a *control
plane* object:

* :class:`ServerControlPlane` — one :class:`~repro.serving.server.
  PCRRecordServer`: telemetry from the server's store, hints back into it,
  cache bias on the server's scan-prefix cache, fleet snapshot from the
  same registry body ``GET_METRICS`` serves.
* :class:`ClusterControlPlane` — a :class:`~repro.serving.cluster.
  coordinator.ClusterCoordinator` fleet: telemetry merged across every
  running replica (freshest report per client wins), hints republished to
  *all* replicas (a client reports to whichever shard it happens to reach),
  cache bias applied fleet-wide, and the fleet snapshot scraped over the
  wire with the existing ``GET_METRICS``/merge machinery.

Both planes are duck-typed; tests drive the controller with an in-memory
fake plane and call :meth:`FidelityController.step` directly for exact,
interval-by-interval convergence assertions.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.control.policy import (
    DOWN,
    UP,
    ClientControlState,
    ControlDecision,
    StallTargetPolicy,
)
from repro.control.telemetry import ClientTelemetry, ScanGroupHint
from repro.obs import MetricsRegistry

DEFAULT_INTERVAL_SECONDS = 0.5
DEFAULT_LOG_CAPACITY = 512
#: Fleet snapshots are scraped once every this many control intervals —
#: scraping rides the GET_METRICS path, which is cheap but not free.
DEFAULT_FLEET_SCRAPE_INTERVALS = 4


class ServerControlPlane:
    """Control-plane view of one in-process :class:`PCRRecordServer`."""

    def __init__(self, server) -> None:
        self.server = server
        self.registry: MetricsRegistry = server.registry

    def poll(self) -> dict[str, ClientTelemetry]:
        return self.server.telemetry.latest()

    def publish(self, client_id: str, hint: ScanGroupHint | None) -> None:
        self.server.telemetry.set_hint(client_id, hint)

    def set_admission_bias(self, groups: set[int] | None) -> None:
        self.server.cache.set_admission_bias(groups)

    def fleet_snapshot(self) -> dict:
        """The same registry body a ``GET_METRICS`` scrape would return."""
        return self.server.metrics_snapshot()["registry"]


class ClusterControlPlane:
    """Control-plane view of a whole :class:`ClusterCoordinator` fleet."""

    def __init__(self, coordinator, registry: MetricsRegistry | None = None) -> None:
        self.coordinator = coordinator
        self.registry = registry if registry is not None else MetricsRegistry()

    def _running_servers(self):
        return [
            managed.server
            for managed in self.coordinator._replicas.values()
            if managed.running
        ]

    def poll(self) -> dict[str, ClientTelemetry]:
        """Latest telemetry per client across every live replica.

        A client reports to whichever replica served its last fetch, so the
        fleet view keeps, per client, the freshest report any replica holds.
        """
        merged: dict[str, ClientTelemetry] = {}
        for server in self._running_servers():
            for client_id, report in server.telemetry.latest().items():
                current = merged.get(client_id)
                if current is None or report.received_at > current.received_at:
                    merged[client_id] = report
        return merged

    def publish(self, client_id: str, hint: ScanGroupHint | None) -> None:
        for server in self._running_servers():
            server.telemetry.set_hint(client_id, hint)

    def set_admission_bias(self, groups: set[int] | None) -> None:
        for server in self._running_servers():
            server.cache.set_admission_bias(groups)

    def fleet_snapshot(self) -> dict:
        """Fleet-wide merged registry, scraped over the wire (GET_METRICS)."""
        return self.coordinator.cluster_stats()["merged"]


class FidelityController:
    """Periodically turns fleet telemetry into per-client scan-group hints."""

    def __init__(
        self,
        plane,
        policy=None,
        interval: float = DEFAULT_INTERVAL_SECONDS,
        log_capacity: int = DEFAULT_LOG_CAPACITY,
        fleet_scrape_intervals: int = DEFAULT_FLEET_SCRAPE_INTERVALS,
    ) -> None:
        self.plane = plane
        self.policy = policy if policy is not None else StallTargetPolicy()
        self.interval = interval
        self.fleet_scrape_intervals = fleet_scrape_intervals
        self.registry: MetricsRegistry = plane.registry
        self.last_fleet_snapshot: dict | None = None
        self._states: dict[str, ClientControlState] = {}
        self._log: deque[ControlDecision] = deque(maxlen=log_capacity)
        self._intervals = 0
        self._decision_seq = 0
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "FidelityController":
        if self._thread is not None:
            raise RuntimeError("controller already started")
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="pcr-fidelity-controller"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "FidelityController":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self.step()
            except Exception:
                # The control loop must never die on a transient scrape
                # failure (a replica mid-restart); the next interval retries.
                self.registry.counter("control.step_errors_total").inc()

    # -- the control step ----------------------------------------------------

    def step(self) -> list[ControlDecision]:
        """Run one control interval; returns the decisions it produced.

        Public so tests (and the benchmark) can drive the loop
        deterministically — run a measured workload, call ``step()``, repeat
        — instead of racing the wall-clock thread.
        """
        with self._lock:
            return self._step_locked()

    def _step_locked(self) -> list[ControlDecision]:
        interval = self._intervals
        self._intervals += 1
        registry = self.registry
        registry.counter("control.intervals_total").inc()
        reports = self.plane.poll()
        # Forget clients whose reports aged out of the telemetry store.
        for client_id in list(self._states):
            if client_id not in reports:
                del self._states[client_id]
        decisions: list[ControlDecision] = []
        for client_id in sorted(reports):
            telemetry = reports[client_id]
            state = self._states.get(client_id)
            if state is None:
                state = self._states[client_id] = ClientControlState(client_id)
            changes_before = state.direction_changes
            decision = self.policy.decide(telemetry, state, interval)
            decisions.append(decision)
            self._log.append(decision)
            self._record(decision, state)
            if state.direction_changes > changes_before:
                registry.counter("control.direction_changes_total").inc(
                    state.direction_changes - changes_before
                )
            if decision.changed:
                self._decision_seq += 1
                self.plane.publish(
                    client_id,
                    ScanGroupHint(
                        scan_group=decision.chosen_group,
                        reason=decision.reason,
                        decision_id=self._decision_seq,
                    ),
                )
        self._apply_bias()
        registry.gauge("control.clients_tracked").set(len(self._states))
        if interval % self.fleet_scrape_intervals == 0:
            try:
                self.last_fleet_snapshot = self.plane.fleet_snapshot()
                registry.counter("control.fleet_scrapes_total").inc()
            except Exception:
                registry.counter("control.fleet_scrape_errors_total").inc()
        return decisions

    def _record(self, decision: ControlDecision, state: ClientControlState) -> None:
        registry = self.registry
        registry.counter("control.decisions_total").inc()
        if decision.direction == UP:
            registry.counter("control.steps_up_total").inc()
        elif decision.direction == DOWN:
            registry.counter("control.steps_down_total").inc()
        else:
            registry.counter("control.holds_total").inc()
        registry.gauge(f"control.client.{decision.client_id}.scan_group").set(
            state.group if state.group is not None else decision.chosen_group
        )

    def _apply_bias(self) -> None:
        """Bias cache admission toward the groups the fleet is steered to."""
        groups = {
            state.group for state in self._states.values() if state.group is not None
        }
        self.plane.set_admission_bias(groups or None)

    # -- inspection ----------------------------------------------------------

    @property
    def intervals(self) -> int:
        return self._intervals

    def states(self) -> dict[str, ClientControlState]:
        with self._lock:
            return dict(self._states)

    def decision_log(self, client_id: str | None = None) -> list[dict]:
        """Every recorded decision (optionally one client's), as payload dicts."""
        with self._lock:
            return [
                decision.to_payload()
                for decision in self._log
                if client_id is None or decision.client_id == client_id
            ]

    def switch_log(self, client_id: str | None = None) -> list[dict]:
        """Only the decisions that changed a client's group — the convergence
        trace the acceptance tests assert direction-change bounds on."""
        return [
            entry
            for entry in self.decision_log(client_id)
            if entry["direction"] != "hold"
        ]
