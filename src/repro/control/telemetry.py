"""Client telemetry reports and scan-group hints — the control loop's wire data.

``ClientTelemetry`` is what a loader-side client measures over one reporting
window and ships to its record server on a ``REPORT_TELEMETRY`` frame: the
stall fraction of its training loop, the bytes/samples it consumed, and the
scan group those measurements were taken at.  ``ScanGroupHint`` is what
comes back on the ``TELEMETRY_ACK``: the controller's current fidelity
recommendation for that client, with the rationale attached.

``TelemetryStore`` is the server-side meeting point: the event loop writes
the latest report per client, the :class:`~repro.control.controller.
FidelityController` thread reads them and writes hints back.  All payloads
are plain JSON dicts so they ride the existing JSON framing of the wire
protocol and survive snapshot merging unchanged.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

#: Reports older than this are dropped from :meth:`TelemetryStore.latest` —
#: a client that stopped reporting (finished training, crashed) must not be
#: steered forever on its last words.
DEFAULT_MAX_REPORT_AGE_SECONDS = 30.0


@dataclass(frozen=True)
class ClientTelemetry:
    """One reporting window of loader-side measurements for one client."""

    client_id: str
    scan_group: int
    n_groups: int
    window_seconds: float = 0.0
    wait_seconds: float = 0.0
    compute_seconds: float = 0.0
    bytes_read: int = 0
    records_read: int = 0
    samples: int = 0
    #: Mean compressed bytes one sample costs at each scan group, measured
    #: from a record index — what the bandwidth-budget policy projects with.
    bytes_per_sample_by_group: dict[int, float] = field(default_factory=dict)
    #: Server-side receive time (``time.monotonic`` of the *server* process),
    #: stamped by :meth:`TelemetryStore.update`, not the client.
    received_at: float = 0.0

    @property
    def stall_fraction(self) -> float:
        """Fraction of the window's wall time the training loop spent waiting."""
        busy = self.wait_seconds + self.compute_seconds
        return self.wait_seconds / busy if busy else 0.0

    @property
    def throughput_bytes_per_s(self) -> float:
        """Demonstrated link throughput over the window."""
        return self.bytes_read / self.window_seconds if self.window_seconds else 0.0

    @property
    def samples_per_s(self) -> float:
        return self.samples / self.window_seconds if self.window_seconds else 0.0

    def to_payload(self) -> dict:
        return {
            "client_id": self.client_id,
            "scan_group": self.scan_group,
            "n_groups": self.n_groups,
            "window_seconds": self.window_seconds,
            "wait_seconds": self.wait_seconds,
            "compute_seconds": self.compute_seconds,
            "bytes_read": self.bytes_read,
            "records_read": self.records_read,
            "samples": self.samples,
            "bytes_per_sample_by_group": {
                str(group): value
                for group, value in self.bytes_per_sample_by_group.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ClientTelemetry":
        return cls(
            client_id=str(payload["client_id"]),
            scan_group=int(payload["scan_group"]),
            n_groups=int(payload["n_groups"]),
            window_seconds=float(payload.get("window_seconds", 0.0)),
            wait_seconds=float(payload.get("wait_seconds", 0.0)),
            compute_seconds=float(payload.get("compute_seconds", 0.0)),
            bytes_read=int(payload.get("bytes_read", 0)),
            records_read=int(payload.get("records_read", 0)),
            samples=int(payload.get("samples", 0)),
            bytes_per_sample_by_group={
                int(group): float(value)
                for group, value in payload.get("bytes_per_sample_by_group", {}).items()
            },
        )


@dataclass(frozen=True)
class ScanGroupHint:
    """The controller's current fidelity recommendation for one client."""

    scan_group: int
    reason: str = ""
    decision_id: int = 0

    def to_payload(self) -> dict:
        return {
            "scan_group": self.scan_group,
            "reason": self.reason,
            "decision_id": self.decision_id,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ScanGroupHint":
        return cls(
            scan_group=int(payload["scan_group"]),
            reason=str(payload.get("reason", "")),
            decision_id=int(payload.get("decision_id", 0)),
        )


class TelemetryStore:
    """Latest telemetry per client, and the hints published back to them.

    The event-loop thread calls :meth:`update` on every ``REPORT_TELEMETRY``
    frame; the controller thread calls :meth:`latest` and :meth:`set_hint`.
    Both sides take one short lock — there is no per-request allocation
    beyond the parsed report itself.
    """

    def __init__(self, max_report_age: float = DEFAULT_MAX_REPORT_AGE_SECONDS) -> None:
        self.max_report_age = max_report_age
        self._lock = threading.Lock()
        self._reports: dict[str, ClientTelemetry] = {}
        self._hints: dict[str, ScanGroupHint] = {}
        self.reports_received = 0
        self.hints_served = 0

    def update(self, telemetry: ClientTelemetry) -> ScanGroupHint | None:
        """Store one report; returns the hint currently standing for the client."""
        stamped = ClientTelemetry(
            **{**telemetry.__dict__, "received_at": time.monotonic()}
        )
        with self._lock:
            self._reports[telemetry.client_id] = stamped
            self.reports_received += 1
            hint = self._hints.get(telemetry.client_id)
            if hint is not None:
                self.hints_served += 1
            return hint

    def latest(self) -> dict[str, ClientTelemetry]:
        """Fresh reports per client (stale clients pruned, copies returned)."""
        horizon = time.monotonic() - self.max_report_age
        with self._lock:
            stale = [
                client_id
                for client_id, report in self._reports.items()
                if report.received_at < horizon
            ]
            for client_id in stale:
                del self._reports[client_id]
                self._hints.pop(client_id, None)
            return dict(self._reports)

    def set_hint(self, client_id: str, hint: ScanGroupHint | None) -> None:
        with self._lock:
            if hint is None:
                self._hints.pop(client_id, None)
            else:
                self._hints[client_id] = hint

    def hint_for(self, client_id: str) -> ScanGroupHint | None:
        with self._lock:
            return self._hints.get(client_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._reports)
