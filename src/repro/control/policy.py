"""Pluggable control policies: telemetry in, scan-group decision out.

A policy is the pure decision core of the adaptive-fidelity loop — the
online counterpart of the offline controllers in :mod:`repro.tuning`.  It
sees one client's latest :class:`~repro.control.telemetry.ClientTelemetry`
plus the controller's per-client :class:`ClientControlState` and returns a
:class:`ControlDecision` (a :class:`~repro.tuning.dynamic.TuningDecision`
extended with the client, direction, and rationale) every control interval.

Two policies are provided:

* :class:`StallTargetPolicy` — drive the loader's stall fraction toward a
  target with an AIMD-style group step: multiplicative decrease when the
  client is stalling (shed fidelity fast, the paper's autotune instinct),
  additive +1 increase when it has headroom.  A hysteresis deadband around
  the target plus a post-switch cooldown keeps noisy stall measurements
  from oscillating the fidelity.
* :class:`BandwidthBudgetPolicy` — pick the *largest* scan group whose
  projected byte rate (mean bytes/sample at that group × observed
  samples/s) fits the link budget (explicit, or the client's demonstrated
  throughput) with headroom.

Both hold while the client has not yet applied the previous decision
(telemetry taken at a different group than the steered one describes the
old operating point, not the new one) — that wait is what bounds the loop's
direction changes during convergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.control.telemetry import ClientTelemetry
from repro.tuning.dynamic import TuningDecision

HOLD = "hold"
UP = "up"
DOWN = "down"


@dataclass
class ClientControlState:
    """What the controller remembers about one steered client."""

    client_id: str
    #: The group the controller currently steers the client toward (``None``
    #: until the first report seeds it with the client's actual group).
    group: int | None = None
    cooldown_remaining: int = 0
    intervals_seen: int = 0
    last_direction: str = HOLD
    direction_changes: int = 0


@dataclass
class ControlDecision(TuningDecision):
    """One control-interval outcome for one client.

    Extends the offline :class:`~repro.tuning.dynamic.TuningDecision`
    (``chosen_group`` / ``probe_metrics`` / ``epoch``, where ``epoch`` is
    the control interval index and ``probe_metrics`` carries the telemetry
    the decision was computed from) with the online-loop fields.
    """

    client_id: str = ""
    previous_group: int | None = None
    direction: str = HOLD
    reason: str = ""

    @property
    def changed(self) -> bool:
        return self.direction != HOLD

    def to_payload(self) -> dict:
        return {
            "client_id": self.client_id,
            "chosen_group": self.chosen_group,
            "previous_group": self.previous_group,
            "direction": self.direction,
            "reason": self.reason,
            "interval": self.epoch,
            "inputs": dict(self.probe_metrics),
        }


def _hold(
    state: ClientControlState, telemetry: ClientTelemetry, interval: int, reason: str
) -> ControlDecision:
    return ControlDecision(
        chosen_group=state.group if state.group is not None else telemetry.scan_group,
        probe_metrics=_inputs(telemetry),
        epoch=interval,
        client_id=state.client_id,
        previous_group=state.group,
        direction=HOLD,
        reason=reason,
    )


def _inputs(telemetry: ClientTelemetry) -> dict:
    return {
        "stall_fraction": round(telemetry.stall_fraction, 4),
        "throughput_bytes_per_s": round(telemetry.throughput_bytes_per_s, 1),
        "samples_per_s": round(telemetry.samples_per_s, 2),
        "reported_group": telemetry.scan_group,
    }


def _switch(
    state: ClientControlState,
    telemetry: ClientTelemetry,
    interval: int,
    new_group: int,
    cooldown: int,
    reason: str,
) -> ControlDecision:
    previous = state.group
    direction = UP if (previous is None or new_group > previous) else DOWN
    if state.last_direction in (UP, DOWN) and direction != state.last_direction:
        state.direction_changes += 1
    state.last_direction = direction
    state.group = new_group
    state.cooldown_remaining = cooldown
    return ControlDecision(
        chosen_group=new_group,
        probe_metrics=_inputs(telemetry),
        epoch=interval,
        client_id=state.client_id,
        previous_group=previous,
        direction=direction,
        reason=reason,
    )


def _common_holds(
    state: ClientControlState, telemetry: ClientTelemetry, interval: int
) -> ControlDecision | None:
    """Seed/cooldown/lag holds shared by every policy; ``None`` means decide."""
    state.intervals_seen += 1
    if state.group is None:
        state.group = telemetry.scan_group
        return _hold(state, telemetry, interval, "seeded from first report")
    if telemetry.scan_group != state.group:
        # Measurements describe the group the client actually ran at; wait
        # for the previous hint to take effect before judging the new one.
        return _hold(state, telemetry, interval, "awaiting client apply")
    if state.cooldown_remaining > 0:
        state.cooldown_remaining -= 1
        return _hold(
            state,
            telemetry,
            interval,
            f"cooldown ({state.cooldown_remaining + 1} intervals left)",
        )
    return None


@dataclass
class StallTargetPolicy:
    """AIMD scan-group steering toward a target stall fraction."""

    target_stall_fraction: float = 0.15
    #: Half-width of the deadband, as a fraction of the target: the policy
    #: acts only outside ``target * (1 ± hysteresis)``.
    hysteresis: float = 0.5
    cooldown_intervals: int = 2
    #: Multiplicative decrease factor applied to the group index on overload.
    decrease_factor: float = 0.5
    #: Additive increase step applied when the client has headroom.
    increase_step: int = 1
    min_group: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if self.increase_step < 1:
            raise ValueError("increase_step must be at least 1")

    def decide(
        self, telemetry: ClientTelemetry, state: ClientControlState, interval: int
    ) -> ControlDecision:
        held = _common_holds(state, telemetry, interval)
        if held is not None:
            return held
        stall = telemetry.stall_fraction
        upper = self.target_stall_fraction * (1.0 + self.hysteresis)
        lower = self.target_stall_fraction * (1.0 - self.hysteresis)
        group = state.group
        max_group = telemetry.n_groups
        if stall > upper:
            new_group = max(self.min_group, math.floor(group * self.decrease_factor))
            if new_group >= group:
                return _hold(
                    state, telemetry, interval,
                    f"stall {stall:.2f} > {upper:.2f} but already at floor group {group}",
                )
            return _switch(
                state, telemetry, interval, new_group, self.cooldown_intervals,
                f"stall {stall:.2f} above {upper:.2f}: multiplicative decrease "
                f"{group} -> {new_group}",
            )
        if stall < lower:
            new_group = min(max_group, group + self.increase_step)
            if new_group <= group:
                return _hold(
                    state, telemetry, interval,
                    f"stall {stall:.2f} < {lower:.2f} but already at ceiling group {group}",
                )
            return _switch(
                state, telemetry, interval, new_group, self.cooldown_intervals,
                f"stall {stall:.2f} below {lower:.2f}: additive increase "
                f"{group} -> {new_group}",
            )
        return _hold(
            state, telemetry, interval,
            f"stall {stall:.2f} inside deadband [{lower:.2f}, {upper:.2f}]",
        )


@dataclass
class BandwidthBudgetPolicy:
    """Largest scan group whose projected byte rate fits the link budget."""

    #: Explicit link capacity; ``None`` uses the client's demonstrated
    #: throughput over its last window (a lower bound on capacity, so the
    #: policy is conservative when the link is not saturated).
    link_bytes_per_s: float | None = None
    headroom: float = 0.9
    cooldown_intervals: int = 2
    min_group: int = 1

    def decide(
        self, telemetry: ClientTelemetry, state: ClientControlState, interval: int
    ) -> ControlDecision:
        held = _common_holds(state, telemetry, interval)
        if held is not None:
            return held
        sizes = telemetry.bytes_per_sample_by_group
        sample_rate = telemetry.samples_per_s
        if not sizes or sample_rate <= 0.0:
            return _hold(state, telemetry, interval, "no byte-size/sample-rate data")
        capacity = (
            self.link_bytes_per_s
            if self.link_bytes_per_s is not None
            else telemetry.throughput_bytes_per_s
        )
        budget = capacity * self.headroom
        if budget <= 0.0:
            return _hold(state, telemetry, interval, "no measurable link budget")
        fitting = [
            group
            for group in sorted(sizes)
            if self.min_group <= group <= telemetry.n_groups
            and sizes[group] * sample_rate <= budget
        ]
        new_group = max(fitting) if fitting else self.min_group
        if new_group == state.group:
            return _hold(
                state, telemetry, interval,
                f"group {new_group} already the largest within "
                f"{budget:.0f} B/s budget",
            )
        projected = sizes.get(new_group, 0.0) * sample_rate
        return _switch(
            state, telemetry, interval, new_group, self.cooldown_intervals,
            f"group {new_group} projects {projected:.0f} B/s "
            f"within the {budget:.0f} B/s budget",
        )
