"""Loader-side half of the control loop: report telemetry, apply hints.

``AdaptiveScanGroupSource`` wraps any remote record source
(:class:`~repro.serving.remote_source.RemoteRecordSource`, the sharded
variant, or anything exposing the same ``read_record``/``set_scan_group``
surface) and closes the loop from the client side:

* at fetch boundaries, once per reporting window, it ships a
  :class:`~repro.control.telemetry.ClientTelemetry` report — the loader's
  stall split (from the bound :class:`~repro.pipeline.stall.StallTracker`),
  the window's byte/record/sample deltas, and the per-group bytes/sample
  profile from the first record index it sees — on the ``REPORT_TELEMETRY``
  wire op;
* the hint riding the ack is applied through the wrapped source's existing
  ``set_scan_group``, i.e. exactly at a batch boundary: the fetch that
  triggered the report completes at the old fidelity, every subsequent
  fetch runs at the steered one.

An optional :class:`~repro.pipeline.stall.BandwidthThrottle` models a
capped network link for experiments and the autotune benchmark: fetched
bytes are charged against the cap *in the worker thread*, so the induced
delay surfaces in the loader's own stall tracker the same way a slow real
link would.

``DataLoader.epoch()`` binds its stall tracker automatically when the
source exposes :meth:`bind_stall_tracker`, so wiring is one line::

    source = AdaptiveScanGroupSource(RemoteRecordSource(port=server.port))
    loader = DataLoader(source, config)
"""

from __future__ import annotations

import threading
import time
import uuid

from repro.control.telemetry import ClientTelemetry, ScanGroupHint
from repro.obs import get_registry
from repro.pipeline.stall import StallTracker

DEFAULT_REPORT_INTERVAL_SECONDS = 0.25


class AdaptiveScanGroupSource:
    """A remote source that reports telemetry and follows scan-group hints."""

    def __init__(
        self,
        source,
        client_id: str | None = None,
        report_interval: float = DEFAULT_REPORT_INTERVAL_SECONDS,
        throttle=None,
        auto_apply: bool = True,
    ) -> None:
        self.source = source
        self.client_id = (
            client_id if client_id is not None else f"loader-{uuid.uuid4().hex[:8]}"
        )
        self.report_interval = report_interval
        self.throttle = throttle
        #: When False, hints are surfaced on :attr:`last_hint` but not applied
        #: — the "controller off" arm of the benchmark still reports.
        self.auto_apply = auto_apply
        self.stalls: StallTracker | None = None
        self.last_hint: ScanGroupHint | None = None
        self.reports_sent = 0
        self.hints_applied = 0
        self._report_lock = threading.Lock()
        self._throttle_lock = threading.Lock()
        self._throttle_charged = 0
        self._window_started = time.monotonic()
        self._window_base = self._usage_totals()
        self._bytes_per_sample: dict[int, float] | None = None

    # -- delegation: the DataLoader-facing source surface ---------------------

    @property
    def record_names(self):
        return self.source.record_names

    @property
    def n_groups(self) -> int:
        return self.source.n_groups

    @property
    def n_samples(self) -> int:
        return self.source.n_samples

    def __len__(self) -> int:
        return len(self.source)

    @property
    def dataset_meta(self):
        return self.source.dataset_meta

    @property
    def stats(self):
        return self.source.stats

    @property
    def scan_group(self) -> int:
        return self.source.scan_group

    def set_scan_group(self, scan_group: int) -> None:
        self.source.set_scan_group(scan_group)

    def set_decode_pool(self, pool) -> None:
        self.source.set_decode_pool(pool)

    def record_index(self, record_name: str):
        return self.source.record_index(record_name)

    def bytes_for_group(self, record_name: str, scan_group: int) -> int:
        return self.source.bytes_for_group(record_name, scan_group)

    def epoch_bytes(self) -> int:
        return self.source.epoch_bytes()

    def __iter__(self):
        for record_name in self.record_names:
            yield from self.read_record(record_name)

    # -- the loop's client side ----------------------------------------------

    def bind_stall_tracker(self, stalls: StallTracker) -> None:
        """Adopt the loader's stall tracker as the telemetry's wait/compute
        source.  ``DataLoader.epoch()`` calls this automatically."""
        self.stalls = stalls

    def read_record(self, record_name: str, decode: bool | None = None):
        samples = self.source.read_record(record_name, decode=decode)
        self._after_fetch()
        return samples

    def read_record_batch(self, record_names, decode: bool | None = None):
        out = self.source.read_record_batch(record_names, decode=decode)
        self._after_fetch()
        return out

    def _usage_totals(self) -> tuple[int, int, int, float, float]:
        stats = self.source.stats
        stalls = self.stalls
        return (
            stats.bytes_read,
            stats.records_read,
            stats.samples_decoded,
            stalls.total_wait if stalls is not None else 0.0,
            stalls.total_compute if stalls is not None else 0.0,
        )

    def _after_fetch(self) -> None:
        if self.throttle is not None:
            # Charge this fetch's bytes against the simulated link in the
            # calling (worker) thread: the sleep shows up as loader wait,
            # exactly like a saturated real link.
            total = self.source.stats.bytes_read
            with self._throttle_lock:
                delta = total - self._throttle_charged
                self._throttle_charged = total
            if delta > 0:
                self.throttle.charge(delta)
        self._maybe_report()

    def _maybe_report(self) -> None:
        now = time.monotonic()
        if now - self._window_started < self.report_interval:
            return
        # One reporter at a time; concurrent workers skip instead of queueing
        # behind the round trip.
        if not self._report_lock.acquire(blocking=False):
            return
        try:
            now = time.monotonic()
            window = now - self._window_started
            if window < self.report_interval:
                return
            base = self._window_base
            current = self._usage_totals()
            self._window_started = now
            self._window_base = current
            telemetry = ClientTelemetry(
                client_id=self.client_id,
                scan_group=self.source.scan_group,
                n_groups=self.source.n_groups,
                window_seconds=window,
                wait_seconds=max(0.0, current[3] - base[3]),
                compute_seconds=max(0.0, current[4] - base[4]),
                bytes_read=current[0] - base[0],
                records_read=current[1] - base[1],
                samples=current[2] - base[2],
                bytes_per_sample_by_group=self._group_byte_profile(),
            )
            self.report_now(telemetry)
        finally:
            self._report_lock.release()

    def report_now(self, telemetry: ClientTelemetry | None = None) -> ScanGroupHint | None:
        """Ship one report immediately and apply any hint that comes back.

        With ``telemetry=None`` a report is synthesized from the totals
        accumulated since the last window (used by tests and the benchmark
        to force a report at an exact point in the workload).
        """
        if telemetry is None:
            base = self._window_base
            current = self._usage_totals()
            now = time.monotonic()
            window = max(now - self._window_started, 1e-9)
            self._window_started = now
            self._window_base = current
            telemetry = ClientTelemetry(
                client_id=self.client_id,
                scan_group=self.source.scan_group,
                n_groups=self.source.n_groups,
                window_seconds=window,
                wait_seconds=max(0.0, current[3] - base[3]),
                compute_seconds=max(0.0, current[4] - base[4]),
                bytes_read=current[0] - base[0],
                records_read=current[1] - base[1],
                samples=current[2] - base[2],
                bytes_per_sample_by_group=self._group_byte_profile(),
            )
        try:
            ack = self.source.client.report_telemetry(telemetry.to_payload())
        except Exception:
            # Telemetry is best-effort: a dead or pre-control server must
            # never fail the fetch path that triggered the report.
            get_registry().counter("loader.telemetry.report_errors_total").inc()
            return None
        self.reports_sent += 1
        registry = get_registry()
        registry.counter("loader.telemetry.reports_total").inc()
        hint_payload = ack.get("hint") if isinstance(ack, dict) else None
        if not hint_payload:
            return None
        hint = ScanGroupHint.from_payload(hint_payload)
        self.last_hint = hint
        registry.counter("loader.telemetry.hints_received_total").inc()
        if self.auto_apply and hint.scan_group != self.source.scan_group:
            self.source.set_scan_group(hint.scan_group)
            self.hints_applied += 1
            registry.counter("loader.telemetry.hints_applied_total").inc()
        return hint

    def _group_byte_profile(self) -> dict[int, float]:
        """Mean bytes/sample at every scan group, from the first record index.

        PCR records in one dataset share their group geometry, so one
        index is a faithful per-group cost model for the whole dataset.
        """
        if self._bytes_per_sample is None:
            names = self.record_names
            if not names:
                return {}
            try:
                index = self.source.record_index(names[0])
            except Exception:
                return {}
            n_samples = max(1, index.n_samples)
            self._bytes_per_sample = {
                group: index.bytes_for_group(group) / n_samples
                for group in range(1, self.source.n_groups + 1)
            }
        return self._bytes_per_sample

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.source.close()

    def __enter__(self) -> "AdaptiveScanGroupSource":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
