"""``repro.control`` — online adaptive-fidelity serving (closing §4.5's loop).

The offline controllers of :mod:`repro.tuning` choose scan groups by
probing a local loader; this package closes the same loop *online*, over
the live telemetry plane built by :mod:`repro.obs` and the serving wire:

* :mod:`repro.control.telemetry` — the loop's data: per-client telemetry
  reports, scan-group hints, and the server-side store they meet in;
* :mod:`repro.control.policy` — pluggable decision cores (stall-target
  AIMD with hysteresis + cooldown, bandwidth-budget fitting);
* :mod:`repro.control.controller` — the ``FidelityController`` thread and
  the server/cluster control planes it steers through;
* :mod:`repro.control.adaptive_source` — the loader-side wrapper that
  reports telemetry at fetch boundaries and applies hints through
  ``set_scan_group``.

See ``docs/autotune.md`` for the loop's semantics and the benchmark keys.
"""

from repro.control.adaptive_source import AdaptiveScanGroupSource
from repro.control.controller import (
    ClusterControlPlane,
    FidelityController,
    ServerControlPlane,
)
from repro.control.policy import (
    BandwidthBudgetPolicy,
    ClientControlState,
    ControlDecision,
    StallTargetPolicy,
)
from repro.control.telemetry import ClientTelemetry, ScanGroupHint, TelemetryStore

__all__ = [
    "AdaptiveScanGroupSource",
    "BandwidthBudgetPolicy",
    "ClientControlState",
    "ClientTelemetry",
    "ClusterControlPlane",
    "ControlDecision",
    "FidelityController",
    "ScanGroupHint",
    "ServerControlPlane",
    "StallTargetPolicy",
    "TelemetryStore",
]
