"""Mean-squared error and peak signal-to-noise ratio."""

from __future__ import annotations

import math

import numpy as np

from repro.codecs.image import ImageBuffer

_DATA_RANGE = 255.0


def _as_float(image: ImageBuffer | np.ndarray) -> np.ndarray:
    if isinstance(image, ImageBuffer):
        return image.as_float()
    return np.asarray(image, dtype=np.float64)


def mse(reference: ImageBuffer | np.ndarray, candidate: ImageBuffer | np.ndarray) -> float:
    """Mean squared error between two images."""
    x = _as_float(reference)
    y = _as_float(candidate)
    if x.shape != y.shape:
        raise ValueError(f"image shapes differ: {x.shape} vs {y.shape}")
    return float(np.mean((x - y) ** 2))


def psnr(reference: ImageBuffer | np.ndarray, candidate: ImageBuffer | np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (infinity for identical images)."""
    error = mse(reference, candidate)
    if error == 0:
        return math.inf
    return 10.0 * math.log10(_DATA_RANGE**2 / error)
