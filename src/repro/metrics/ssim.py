"""Structural similarity (SSIM) between two images.

Follows Wang, Bovik, Sheikh & Simoncelli (2004): an 11x11 Gaussian window
(sigma 1.5) slides over the luma channels and local means, variances and
covariance are combined into the SSIM index.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

from repro.codecs.image import ImageBuffer

_K1 = 0.01
_K2 = 0.03
_DATA_RANGE = 255.0
_DEFAULT_WINDOW = 7


def _to_luma(image: ImageBuffer | np.ndarray) -> np.ndarray:
    if isinstance(image, ImageBuffer):
        return image.to_grayscale().as_float()
    array = np.asarray(image, dtype=np.float64)
    if array.ndim == 3:
        return 0.299 * array[..., 0] + 0.587 * array[..., 1] + 0.114 * array[..., 2]
    return array


def ssim(
    reference: ImageBuffer | np.ndarray,
    candidate: ImageBuffer | np.ndarray,
    window: int = _DEFAULT_WINDOW,
    full: bool = False,
) -> float | tuple[float, np.ndarray]:
    """Compute the mean SSIM index between two images.

    Parameters
    ----------
    reference, candidate:
        Images of identical dimensions (colour images are converted to luma).
    window:
        Side length of the local (uniform) window.
    full:
        When true, also return the per-pixel SSIM map.
    """
    x = _to_luma(reference)
    y = _to_luma(candidate)
    if x.shape != y.shape:
        raise ValueError(f"image shapes differ: {x.shape} vs {y.shape}")
    if min(x.shape) < window:
        window = max(3, min(x.shape) // 2 * 2 + 1)

    c1 = (_K1 * _DATA_RANGE) ** 2
    c2 = (_K2 * _DATA_RANGE) ** 2

    mu_x = uniform_filter(x, size=window)
    mu_y = uniform_filter(y, size=window)
    mu_x_sq = mu_x * mu_x
    mu_y_sq = mu_y * mu_y
    mu_xy = mu_x * mu_y

    sigma_x_sq = uniform_filter(x * x, size=window) - mu_x_sq
    sigma_y_sq = uniform_filter(y * y, size=window) - mu_y_sq
    sigma_xy = uniform_filter(x * y, size=window) - mu_xy

    numerator = (2.0 * mu_xy + c1) * (2.0 * sigma_xy + c2)
    denominator = (mu_x_sq + mu_y_sq + c1) * (sigma_x_sq + sigma_y_sq + c2)
    ssim_map = numerator / denominator
    mean_ssim = float(ssim_map.mean())
    if full:
        return mean_ssim, ssim_map
    return mean_ssim


def contrast_structure(
    reference: ImageBuffer | np.ndarray,
    candidate: ImageBuffer | np.ndarray,
    window: int = _DEFAULT_WINDOW,
) -> float:
    """The contrast-structure term of SSIM (used by MS-SSIM's coarse scales)."""
    x = _to_luma(reference)
    y = _to_luma(candidate)
    if x.shape != y.shape:
        raise ValueError(f"image shapes differ: {x.shape} vs {y.shape}")
    if min(x.shape) < window:
        window = max(3, min(x.shape) // 2 * 2 + 1)
    c2 = (_K2 * _DATA_RANGE) ** 2
    mu_x = uniform_filter(x, size=window)
    mu_y = uniform_filter(y, size=window)
    sigma_x_sq = uniform_filter(x * x, size=window) - mu_x * mu_x
    sigma_y_sq = uniform_filter(y * y, size=window) - mu_y * mu_y
    sigma_xy = uniform_filter(x * y, size=window) - mu_x * mu_y
    cs_map = (2.0 * sigma_xy + c2) / (sigma_x_sq + sigma_y_sq + c2)
    return float(cs_map.mean())
