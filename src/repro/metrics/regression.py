"""Linear regression of final test accuracy on MSSIM (Figure 7).

The paper observes a roughly linear relationship between a scan group's
MSSIM (against the full-quality image) and the final test accuracy a model
reaches when trained on that scan group; the fit is used as a *static*
tuning diagnostic (Section 4.4, §A.6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class LinearFit:
    """An ordinary-least-squares fit ``accuracy = slope * mssim + intercept``."""

    slope: float
    intercept: float
    r_value: float
    p_value: float
    stderr: float

    def predict(self, mssim: float | np.ndarray) -> np.ndarray:
        """Predict accuracy for one or more MSSIM values."""
        return self.slope * np.asarray(mssim, dtype=np.float64) + self.intercept

    @property
    def r_squared(self) -> float:
        """Coefficient of determination of the fit."""
        return float(self.r_value**2)


def fit_mssim_accuracy(mssim_values: list[float], accuracies: list[float]) -> LinearFit:
    """Fit the Figure 7 regression from per-scan-group (MSSIM, accuracy) pairs."""
    if len(mssim_values) != len(accuracies):
        raise ValueError("mssim_values and accuracies must have the same length")
    if len(mssim_values) < 2:
        raise ValueError("at least two points are required for a linear fit")
    result = stats.linregress(np.asarray(mssim_values), np.asarray(accuracies))
    return LinearFit(
        slope=float(result.slope),
        intercept=float(result.intercept),
        r_value=float(result.rvalue),
        p_value=float(result.pvalue),
        stderr=float(result.stderr),
    )


def cluster_by_mssim(
    mssim_values: dict[int, float], tolerance: float = 0.01
) -> list[list[int]]:
    """Group scan indices whose MSSIM values are within ``tolerance``.

    The paper notes that scans cluster (e.g. scans 2–4 are usually similar)
    and that clustering can reduce the number of scan groups worth
    considering during tuning (§A.6.1).
    """
    ordered = sorted(mssim_values.items(), key=lambda kv: kv[0])
    clusters: list[list[int]] = []
    current: list[int] = []
    current_value: float | None = None
    for scan, value in ordered:
        if current and current_value is not None and abs(value - current_value) > tolerance:
            clusters.append(current)
            current = []
        current.append(scan)
        current_value = value
    if current:
        clusters.append(current)
    return clusters
