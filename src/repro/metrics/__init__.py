"""Image-quality metrics used to predict compression tolerance.

The paper uses MSSIM (multi-scale structural similarity, Wang et al. 2003)
as its diagnostic for how much accuracy a scan group will cost (Section 4.4,
Figures 7 and 17).  This package implements SSIM, MS-SSIM, PSNR/MSE, and the
MSSIM-to-accuracy linear regression used in Figure 7.
"""

from repro.metrics.msssim import ms_ssim
from repro.metrics.psnr import mse, psnr
from repro.metrics.regression import LinearFit, fit_mssim_accuracy
from repro.metrics.ssim import ssim

__all__ = ["LinearFit", "fit_mssim_accuracy", "ms_ssim", "mse", "psnr", "ssim"]
