"""Multi-scale SSIM (the paper's "MSSIM", Wang, Simoncelli & Bovik 2003).

The image pair is evaluated at several dyadic scales; contrast-structure
terms from the coarse scales and the full SSIM at the finest evaluated
scale are combined with the published exponents.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.image import ImageBuffer
from repro.metrics.ssim import _to_luma, contrast_structure, ssim

#: Published per-scale weights.
MS_SSIM_WEIGHTS = (0.0448, 0.2856, 0.3001, 0.2363, 0.1333)
_MIN_SIZE = 16


def _downsample(channel: np.ndarray) -> np.ndarray:
    h, w = channel.shape
    trimmed = channel[: h - h % 2, : w - w % 2]
    return trimmed.reshape(trimmed.shape[0] // 2, 2, trimmed.shape[1] // 2, 2).mean(axis=(1, 3))


def ms_ssim(
    reference: ImageBuffer | np.ndarray,
    candidate: ImageBuffer | np.ndarray,
    weights: tuple[float, ...] = MS_SSIM_WEIGHTS,
) -> float:
    """Compute the multi-scale SSIM index of ``candidate`` against ``reference``.

    Small images automatically use fewer scales (the weights of the dropped
    scales are renormalized), so the metric remains meaningful for the
    reduced-resolution synthetic datasets used in this reproduction.
    """
    x = _to_luma(reference)
    y = _to_luma(candidate)
    if x.shape != y.shape:
        raise ValueError(f"image shapes differ: {x.shape} vs {y.shape}")

    n_scales = len(weights)
    max_scales = 1
    size = min(x.shape)
    while size // 2 >= _MIN_SIZE and max_scales < n_scales:
        size //= 2
        max_scales += 1
    used_weights = np.array(weights[:max_scales], dtype=np.float64)
    used_weights /= used_weights.sum()

    values: list[float] = []
    for scale in range(max_scales):
        if scale == max_scales - 1:
            values.append(max(ssim(x, y), 1e-6))
        else:
            values.append(max(contrast_structure(x, y), 1e-6))
            x = _downsample(x)
            y = _downsample(y)
    result = float(np.prod(np.power(values, used_weights)))
    return result


def mssim_per_scan(
    reference: ImageBuffer,
    reconstructions: list[ImageBuffer],
) -> list[float]:
    """MS-SSIM of each progressively-decoded reconstruction (Figure 17 data)."""
    return [ms_ssim(reference, reconstruction) for reconstruction in reconstructions]
