"""Label remapping for task-difficulty experiments (Section 4.3, Figures 6/29/30).

The Stanford Cars experiments reuse one stored dataset under three labelings:

* the original fine-grained classes (make + model + year),
* "Make-Only" — classes grouped by manufacturer, and
* "Is-Corvette" — a binary detection task.

With PCRs the *stored* data never changes; only the label mapping applied at
read time does.  These helpers build the corresponding mappers for the
synthetic datasets, whose coarse group plays the role of the car make.
"""

from __future__ import annotations

from collections.abc import Callable

LabelMapper = Callable[[int], int]


def make_only_mapper(n_coarse_groups: int) -> LabelMapper:
    """Map a fine-grained label to its coarse group ("car make")."""
    if n_coarse_groups < 1:
        raise ValueError("n_coarse_groups must be >= 1")

    def mapper(label: int) -> int:
        return label % n_coarse_groups

    return mapper


def is_corvette_mapper(n_coarse_groups: int, target_group: int = 0) -> LabelMapper:
    """Binary detection of one coarse group (the "Is-Corvette" task)."""
    if not 0 <= target_group < n_coarse_groups:
        raise ValueError("target_group must be a valid coarse group index")

    def mapper(label: int) -> int:
        return 1 if (label % n_coarse_groups) == target_group else 0

    return mapper


def binary_task_mapper(positive_labels: set[int]) -> LabelMapper:
    """Generic binary remapping (e.g. CelebA-HQ "smiling" vs "not smiling")."""

    def mapper(label: int) -> int:
        return 1 if label in positive_labels else 0

    return mapper


def n_classes_after(mapper: LabelMapper, n_original_classes: int) -> int:
    """Number of distinct classes a mapper produces over the original labels."""
    return len({mapper(label) for label in range(n_original_classes)})
