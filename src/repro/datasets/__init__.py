"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on ImageNet ILSVRC, HAM10000, Stanford Cars, and
CelebA-HQ-Smile.  None of these can be shipped offline, so this package
generates synthetic datasets whose *structure* matches each original:
image resolution, sample count (scaled), class cardinality, JPEG quality,
and — crucially for the task-tolerance experiments — how much of the
class-discriminative signal lives in high spatial frequencies.
"""

from repro.datasets.labels import (
    binary_task_mapper,
    is_corvette_mapper,
    make_only_mapper,
)
from repro.datasets.registry import (
    CARS_SPEC,
    CELEBAHQ_SPEC,
    HAM10000_SPEC,
    IMAGENET_SPEC,
    PAPER_DATASET_STATISTICS,
    DatasetSpec,
    all_specs,
    generate_dataset,
)
from repro.datasets.synthetic import SyntheticImageGenerator

__all__ = [
    "CARS_SPEC",
    "CELEBAHQ_SPEC",
    "DatasetSpec",
    "HAM10000_SPEC",
    "IMAGENET_SPEC",
    "PAPER_DATASET_STATISTICS",
    "SyntheticImageGenerator",
    "all_specs",
    "binary_task_mapper",
    "generate_dataset",
    "is_corvette_mapper",
    "make_only_mapper",
]
