"""Frequency-controlled synthetic image generation.

Each synthetic class is defined by two ingredients:

* a *coarse* signature — a low-spatial-frequency pattern (colour gradient +
  broad sinusoid) shared by all classes in the same coarse group; and
* a *fine* signature — a high-spatial-frequency texture unique to the class.

A classifier that only needs the coarse group (e.g. the Cars "Make-Only" or
"Is-Corvette" tasks) can succeed from heavily compressed images, because the
coarse signature survives early scans; distinguishing classes within a
coarse group requires the high-frequency texture that only later scans carry.
This reproduces the paper's central observation that harder/fine-grained
tasks tolerate less compression (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codecs.image import ImageBuffer


@dataclass(frozen=True)
class SyntheticImageSpec:
    """Parameters controlling synthetic image appearance."""

    image_size: int = 64
    n_coarse_groups: int = 4
    fine_signal_strength: float = 60.0
    coarse_signal_strength: float = 80.0
    noise_sigma: float = 8.0
    fine_frequency: float = 14.0
    coarse_frequency: float = 2.0


class SyntheticImageGenerator:
    """Generates labelled synthetic RGB images for a class taxonomy."""

    def __init__(
        self,
        n_classes: int,
        spec: SyntheticImageSpec | None = None,
        seed: int = 0,
    ) -> None:
        if n_classes < 1:
            raise ValueError("n_classes must be >= 1")
        self.n_classes = n_classes
        self.spec = spec if spec is not None else SyntheticImageSpec()
        self._rng = np.random.default_rng(seed)
        # Per-class fixed random signatures so images of a class are consistent.
        signature_rng = np.random.default_rng(seed + 1)
        self._fine_phases = signature_rng.uniform(0, 2 * np.pi, size=(n_classes, 3))
        self._fine_angles = signature_rng.uniform(0, np.pi, size=n_classes)
        n_groups = self.spec.n_coarse_groups
        self._coarse_colors = signature_rng.uniform(0.3, 0.9, size=(n_groups, 3))
        self._coarse_phases = signature_rng.uniform(0, 2 * np.pi, size=n_groups)

    def coarse_group(self, label: int) -> int:
        """The coarse group (e.g. "car make") a class label belongs to."""
        return label % self.spec.n_coarse_groups

    def generate(self, label: int, sample_seed: int | None = None) -> ImageBuffer:
        """Generate one image of the given class."""
        if not 0 <= label < self.n_classes:
            raise ValueError(f"label {label} out of range [0, {self.n_classes})")
        spec = self.spec
        rng = self._rng if sample_seed is None else np.random.default_rng(sample_seed)
        size = spec.image_size
        coordinates = np.linspace(0.0, 1.0, size)
        xx, yy = np.meshgrid(coordinates, coordinates)

        group = self.coarse_group(label)
        group_color = self._coarse_colors[group]
        coarse_wave = np.sin(
            2 * np.pi * spec.coarse_frequency * (xx + yy) + self._coarse_phases[group]
        )
        # Small per-sample geometric jitter so samples of a class are not identical.
        shift_x, shift_y = rng.uniform(-0.15, 0.15, size=2)
        angle = self._fine_angles[label] + rng.normal(0, 0.05)
        rotated = (xx - 0.5 + shift_x) * np.cos(angle) + (yy - 0.5 + shift_y) * np.sin(angle)

        channels = []
        for channel_index in range(3):
            fine_texture = np.sin(
                2 * np.pi * spec.fine_frequency * rotated
                + self._fine_phases[label, channel_index]
            )
            base = 128.0 * group_color[channel_index]
            channel = (
                base
                + spec.coarse_signal_strength * coarse_wave * group_color[channel_index]
                + spec.fine_signal_strength * fine_texture
                + rng.normal(0.0, spec.noise_sigma, size=(size, size))
            )
            channels.append(channel)
        return ImageBuffer.from_array(np.stack(channels, axis=-1))

    def generate_batch(
        self, n_samples: int, seed: int = 0
    ) -> list[tuple[str, ImageBuffer, int]]:
        """Generate ``n_samples`` images with labels cycling over all classes."""
        samples: list[tuple[str, ImageBuffer, int]] = []
        for index in range(n_samples):
            label = index % self.n_classes
            image = self.generate(label, sample_seed=seed * 1_000_003 + index)
            samples.append((f"sample-{index:06d}", image, label))
        return samples
