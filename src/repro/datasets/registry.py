"""Dataset specifications mirroring the paper's evaluation suite (Table 1).

Each :class:`DatasetSpec` scales one of the paper's datasets down to a size
that a pure-Python reproduction can generate and train on, while keeping the
properties that matter to the experiments: relative image size, class
cardinality, JPEG quality, and whether the classification task is
fine-grained (needs high frequencies) or coarse.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.codecs.image import ImageBuffer
from repro.datasets.synthetic import SyntheticImageGenerator, SyntheticImageSpec


@dataclass(frozen=True)
class DatasetSpec:
    """A scaled-down synthetic analogue of one evaluation dataset."""

    name: str
    paper_name: str
    n_samples: int
    image_size: int
    n_classes: int
    jpeg_quality: int
    images_per_record: int
    fine_grained: bool
    n_coarse_groups: int
    #: Relative compute cost of one model update on this dataset's inputs
    #: (all paper inputs are resized to 224x224, so this is 1.0 everywhere;
    #: kept as a knob for ablations).
    compute_scale: float = 1.0

    def generator(self, seed: int = 0) -> SyntheticImageGenerator:
        """Build the synthetic image generator for this spec."""
        fine_strength = 70.0 if self.fine_grained else 35.0
        spec = SyntheticImageSpec(
            image_size=self.image_size,
            n_coarse_groups=self.n_coarse_groups,
            fine_signal_strength=fine_strength,
        )
        return SyntheticImageGenerator(self.n_classes, spec=spec, seed=seed)


#: ImageNet ILSVRC: 1000 classes, 1.28M images, ~110 kB mean JPEG, quality ~92.
IMAGENET_SPEC = DatasetSpec(
    name="imagenet",
    paper_name="ImageNet",
    n_samples=256,
    image_size=64,
    n_classes=16,
    jpeg_quality=92,
    images_per_record=32,
    fine_grained=False,
    n_coarse_groups=8,
)

#: HAM10000: 8k dermatoscopy images, 7 classes, the largest images (quality 100).
HAM10000_SPEC = DatasetSpec(
    name="ham10000",
    paper_name="HAM10000",
    n_samples=192,
    image_size=96,
    n_classes=7,
    jpeg_quality=100,
    images_per_record=32,
    fine_grained=False,
    n_coarse_groups=7,
)

#: Stanford Cars: 196 fine-grained classes (make/model/year), 16k images, quality ~84.
CARS_SPEC = DatasetSpec(
    name="cars",
    paper_name="Stanford Cars",
    n_samples=240,
    image_size=64,
    n_classes=24,
    jpeg_quality=84,
    images_per_record=32,
    fine_grained=True,
    n_coarse_groups=6,
)

#: CelebA-HQ-Smile: 30k faces, binary smiling/not-smiling task, quality 75.
CELEBAHQ_SPEC = DatasetSpec(
    name="celebahq",
    paper_name="CelebAHQ-Smile",
    n_samples=192,
    image_size=80,
    n_classes=2,
    jpeg_quality=75,
    images_per_record=32,
    fine_grained=False,
    n_coarse_groups=2,
)


def all_specs() -> list[DatasetSpec]:
    """The four evaluation dataset specs, in the paper's order."""
    return [IMAGENET_SPEC, CELEBAHQ_SPEC, HAM10000_SPEC, CARS_SPEC]


def spec_by_name(name: str) -> DatasetSpec:
    """Look a spec up by its short name."""
    for spec in all_specs():
        if spec.name == name:
            return spec
    raise KeyError(f"unknown dataset spec {name!r}")


def generate_dataset(
    spec: DatasetSpec, seed: int = 0, n_samples: int | None = None
) -> Iterator[tuple[str, ImageBuffer, int]]:
    """Yield ``(key, image, label)`` samples for a dataset spec."""
    generator = spec.generator(seed=seed)
    count = spec.n_samples if n_samples is None else n_samples
    for index in range(count):
        label = index % spec.n_classes
        image = generator.generate(label, sample_seed=seed * 7_000_003 + index)
        yield f"{spec.name}-{index:06d}", image, label


#: Published Table 1 statistics, used by the Table 1 benchmark for comparison.
PAPER_DATASET_STATISTICS = {
    "ImageNet": {
        "record_count": 1251,
        "image_count": 1_281_167,
        "dataset_size": "129GiB",
        "jpeg_quality": 91.7,
        "classes": 1000,
    },
    "HAM10000": {
        "record_count": 125,
        "image_count": 8012,
        "dataset_size": "2GiB",
        "jpeg_quality": 100.0,
        "classes": 7,
    },
    "Stanford Cars": {
        "record_count": 63,
        "image_count": 8144,
        "dataset_size": "887MiB",
        "jpeg_quality": 83.8,
        "classes": 196,
    },
    "CelebAHQ": {
        "record_count": 93,
        "image_count": 24000,
        "dataset_size": "2GiB",
        "jpeg_quality": 75.0,
        "classes": 2,
    },
}
