"""Simulated block devices.

A :class:`BlockDevice` stores data in memory but charges simulated time for
every access according to a :class:`DeviceProfile`: a fixed per-operation
setup cost (seek + rotational latency for HDDs, command overhead for SSDs)
plus a bandwidth term.  Sequential accesses that continue from the previous
position skip the seek charge — this is what gives record layouts (and PCR
prefix reads) their advantage over File-per-Image random reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.io_stats import IOStats


@dataclass(frozen=True)
class DeviceProfile:
    """Latency/bandwidth parameters of a storage device."""

    name: str
    bandwidth_bytes_per_second: float
    seek_seconds: float
    sequential_threshold_bytes: int = 0

    def access_time(self, n_bytes: int, sequential: bool) -> float:
        """Simulated service time of one access of ``n_bytes``."""
        transfer = n_bytes / self.bandwidth_bytes_per_second
        if sequential:
            return transfer
        return self.seek_seconds + transfer


#: A 7200 RPM SATA HDD (as used by the paper's Ceph OSD nodes): ~8.5 ms average
#: seek + rotational latency, ~160 MiB/s sequential bandwidth.
HDD_PROFILE = DeviceProfile(
    name="hdd-7200rpm",
    bandwidth_bytes_per_second=160 * 1024 * 1024,
    seek_seconds=8.5e-3,
)

#: A SATA SSD comparable to the paper's microbenchmark drive (~400 MiB/s loaded
#: read bandwidth, ~80 us access overhead).
SSD_PROFILE = DeviceProfile(
    name="sata-ssd",
    bandwidth_bytes_per_second=400 * 1024 * 1024,
    seek_seconds=80e-6,
)

#: Main memory, for compute-bound comparisons.
MEMORY_PROFILE = DeviceProfile(
    name="memory",
    bandwidth_bytes_per_second=10 * 1024 * 1024 * 1024,
    seek_seconds=1e-7,
)


class BlockDevice:
    """A byte-addressable simulated device with latency accounting."""

    def __init__(self, profile: DeviceProfile, capacity_bytes: int = 1 << 32) -> None:
        self.profile = profile
        self.capacity_bytes = capacity_bytes
        self._data: dict[int, bytes] = {}
        self._next_free = 0
        self._last_position: int | None = None
        self.stats = IOStats()
        self.clock_seconds = 0.0

    # -- allocation ----------------------------------------------------------

    def allocate(self, n_bytes: int) -> int:
        """Reserve a contiguous extent; returns its start offset."""
        if self._next_free + n_bytes > self.capacity_bytes:
            raise IOError(
                f"device {self.profile.name} out of space "
                f"({self._next_free + n_bytes} > {self.capacity_bytes})"
            )
        offset = self._next_free
        self._next_free += n_bytes
        return offset

    # -- I/O ------------------------------------------------------------------

    def write(self, offset: int, data: bytes) -> float:
        """Write bytes at ``offset``; returns the simulated latency."""
        sequential = self._is_sequential(offset)
        latency = self.profile.access_time(len(data), sequential)
        self._data[offset] = bytes(data)
        self._advance(offset, len(data), latency)
        self.stats.record_write(len(data), latency, seek=not sequential)
        return latency

    def read(self, offset: int, length: int) -> tuple[bytes, float]:
        """Read ``length`` bytes from ``offset``; returns (data, latency).

        Reads may start inside a previously written extent; the stored
        extents are stitched together as needed.
        """
        sequential = self._is_sequential(offset)
        latency = self.profile.access_time(length, sequential)
        data = self._read_bytes(offset, length)
        self._advance(offset, length, latency)
        self.stats.record_read(length, latency, seek=not sequential)
        return data, latency

    def read_extent(self, offset: int, length: int) -> bytes:
        """Read and return only the data (latency is still accounted)."""
        data, _ = self.read(offset, length)
        return data

    # -- internals -------------------------------------------------------------

    def _is_sequential(self, offset: int) -> bool:
        return self._last_position is not None and offset == self._last_position

    def _advance(self, offset: int, length: int, latency: float) -> None:
        self._last_position = offset + length
        self.clock_seconds += latency

    def _read_bytes(self, offset: int, length: int) -> bytes:
        # Fast path: the exact extent was written as one piece.
        exact = self._data.get(offset)
        if exact is not None and len(exact) >= length:
            return exact[:length]
        result = bytearray(length)
        for extent_offset, extent in self._data.items():
            extent_end = extent_offset + len(extent)
            read_end = offset + length
            overlap_start = max(offset, extent_offset)
            overlap_end = min(read_end, extent_end)
            if overlap_start < overlap_end:
                result[overlap_start - offset : overlap_end - offset] = extent[
                    overlap_start - extent_offset : overlap_end - extent_offset
                ]
        return bytes(result)

    def reset_position(self) -> None:
        """Forget the head position (forces the next access to seek)."""
        self._last_position = None
