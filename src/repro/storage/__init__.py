"""Simulated storage substrate.

The paper's experiments run against a 16-node Ceph cluster of 7200 RPM hard
drives and, for microbenchmarks, a SATA SSD.  This package simulates those
devices and the cluster so the layout arguments (sequential vs random
access, bandwidth saturation, cache behaviour) can be exercised and measured
without the hardware:

* :mod:`repro.storage.device` — block devices with seek/rotational latency
  and bandwidth models (HDD, SSD, and an in-memory device).
* :mod:`repro.storage.cache` — a page cache with a DirectIO bypass, matching
  the paper's use of DirectIO to exclude caching effects.
* :mod:`repro.storage.filesystem` — extent-based file allocation over a
  device, used to model File-per-Image fragmentation vs record contiguity.
* :mod:`repro.storage.cluster` — a striped multi-OSD cluster (the Ceph role).
* :mod:`repro.storage.io_stats` — operation/byte/latency accounting.
"""

from repro.storage.cache import CachedDevice, PageCache
from repro.storage.cluster import StorageCluster
from repro.storage.device import (
    BlockDevice,
    DeviceProfile,
    HDD_PROFILE,
    MEMORY_PROFILE,
    SSD_PROFILE,
)
from repro.storage.filesystem import SimulatedFilesystem
from repro.storage.io_stats import IOStats

__all__ = [
    "BlockDevice",
    "CachedDevice",
    "DeviceProfile",
    "HDD_PROFILE",
    "IOStats",
    "MEMORY_PROFILE",
    "PageCache",
    "SSD_PROFILE",
    "SimulatedFilesystem",
    "StorageCluster",
]
