"""I/O accounting shared by the simulated storage components.

``IOStats`` keeps its per-instance fields (each simulated device owns one
and the simulators read them directly), but every recorded operation also
lands on the shared :mod:`repro.obs` registry — ``storage.*_total``
counters and a ``storage.op_latency_seconds`` histogram — so storage
activity shows up in the same snapshot schema as loader, decode, and
serving telemetry.  :meth:`IOStats.reset` zeroes only the instance fields;
the registry totals are monotonic, process-wide aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import get_registry

_registry = get_registry()
_M_READ_OPS = _registry.counter("storage.read_ops_total")
_M_BYTES_READ = _registry.counter("storage.bytes_read_total")
_M_WRITE_OPS = _registry.counter("storage.write_ops_total")
_M_BYTES_WRITTEN = _registry.counter("storage.bytes_written_total")
_M_SEEKS = _registry.counter("storage.seeks_total")
_M_BUSY_SECONDS = _registry.counter("storage.busy_seconds_total")
_M_OP_LATENCY = _registry.histogram("storage.op_latency_seconds")


@dataclass
class IOStats:
    """Counters for operations, bytes, seeks, and simulated time."""

    read_ops: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    bytes_written: int = 0
    seeks: int = 0
    busy_seconds: float = 0.0
    per_op_latencies: list[float] = field(default_factory=list)

    def record_read(self, n_bytes: int, latency: float, seek: bool) -> None:
        """Account one read operation."""
        self.read_ops += 1
        self.bytes_read += n_bytes
        self.busy_seconds += latency
        self.per_op_latencies.append(latency)
        if seek:
            self.seeks += 1
            _M_SEEKS.inc()
        _M_READ_OPS.inc()
        _M_BYTES_READ.inc(n_bytes)
        _M_BUSY_SECONDS.inc(latency)
        _M_OP_LATENCY.observe(latency)

    def record_write(self, n_bytes: int, latency: float, seek: bool) -> None:
        """Account one write operation."""
        self.write_ops += 1
        self.bytes_written += n_bytes
        self.busy_seconds += latency
        self.per_op_latencies.append(latency)
        if seek:
            self.seeks += 1
            _M_SEEKS.inc()
        _M_WRITE_OPS.inc()
        _M_BYTES_WRITTEN.inc(n_bytes)
        _M_BUSY_SECONDS.inc(latency)
        _M_OP_LATENCY.observe(latency)

    @property
    def mean_latency(self) -> float:
        """Mean latency per operation in simulated seconds."""
        if not self.per_op_latencies:
            return 0.0
        return sum(self.per_op_latencies) / len(self.per_op_latencies)

    def read_throughput_bytes_per_second(self) -> float:
        """Effective read bandwidth over the busy time."""
        if self.busy_seconds == 0:
            return 0.0
        return self.bytes_read / self.busy_seconds

    def reset(self) -> None:
        """Zero all instance counters (registry totals stay monotonic)."""
        self.read_ops = 0
        self.bytes_read = 0
        self.write_ops = 0
        self.bytes_written = 0
        self.seeks = 0
        self.busy_seconds = 0.0
        self.per_op_latencies.clear()
