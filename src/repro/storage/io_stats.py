"""I/O accounting shared by the simulated storage components."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Counters for operations, bytes, seeks, and simulated time."""

    read_ops: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    bytes_written: int = 0
    seeks: int = 0
    busy_seconds: float = 0.0
    per_op_latencies: list[float] = field(default_factory=list)

    def record_read(self, n_bytes: int, latency: float, seek: bool) -> None:
        """Account one read operation."""
        self.read_ops += 1
        self.bytes_read += n_bytes
        self.busy_seconds += latency
        self.per_op_latencies.append(latency)
        if seek:
            self.seeks += 1

    def record_write(self, n_bytes: int, latency: float, seek: bool) -> None:
        """Account one write operation."""
        self.write_ops += 1
        self.bytes_written += n_bytes
        self.busy_seconds += latency
        self.per_op_latencies.append(latency)
        if seek:
            self.seeks += 1

    @property
    def mean_latency(self) -> float:
        """Mean latency per operation in simulated seconds."""
        if not self.per_op_latencies:
            return 0.0
        return sum(self.per_op_latencies) / len(self.per_op_latencies)

    def read_throughput_bytes_per_second(self) -> float:
        """Effective read bandwidth over the busy time."""
        if self.busy_seconds == 0:
            return 0.0
        return self.bytes_read / self.busy_seconds

    def reset(self) -> None:
        """Zero all counters."""
        self.read_ops = 0
        self.bytes_read = 0
        self.write_ops = 0
        self.bytes_written = 0
        self.seeks = 0
        self.busy_seconds = 0.0
        self.per_op_latencies.clear()
