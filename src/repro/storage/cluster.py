"""A striped multi-OSD storage cluster (the Ceph role in the paper).

The paper's testbed dedicates five Object Storage Device (OSD) nodes and one
metadata server (MDS) to storage, giving the ten training workers roughly
400+ MiB/s of aggregate bandwidth (§A.3).  The simulated cluster stripes
objects across OSD block devices, charges metadata lookups to the MDS, and
reports aggregate bandwidth so the end-to-end experiments can reason about
the compute-to-storage ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.hashing import placement_index
from repro.storage.device import HDD_PROFILE, BlockDevice, DeviceProfile

DEFAULT_STRIPE_BYTES = 4 * 1024 * 1024


def placement_osd(name: str, n_osds: int) -> int:
    """Deterministic first-OSD placement for an object name.

    Delegates to :func:`repro.common.hashing.placement_index` so storage
    placement and serving-shard routing share one hash implementation.
    """
    return placement_index(name, n_osds)


@dataclass
class ObjectLocation:
    """Placement of one stored object across the cluster."""

    name: str
    size: int
    stripes: list[tuple[int, int, int]] = field(default_factory=list)
    """List of ``(osd_index, offset, length)`` stripe placements."""


class StorageCluster:
    """A collection of OSD devices with round-robin striping and an MDS."""

    def __init__(
        self,
        n_osds: int = 5,
        profile: DeviceProfile = HDD_PROFILE,
        stripe_bytes: int = DEFAULT_STRIPE_BYTES,
        mds_lookup_seconds: float = 0.3e-3,
        osd_capacity_bytes: int = 1 << 32,
    ) -> None:
        if n_osds < 1:
            raise ValueError("a cluster needs at least one OSD")
        self.osds = [BlockDevice(profile, capacity_bytes=osd_capacity_bytes) for _ in range(n_osds)]
        self.stripe_bytes = stripe_bytes
        self.mds_lookup_seconds = mds_lookup_seconds
        self.mds_lookups = 0
        self._objects: dict[str, ObjectLocation] = {}

    # -- write path --------------------------------------------------------------

    def put_object(self, name: str, data: bytes) -> ObjectLocation:
        """Store an object, striping it across OSDs."""
        if name in self._objects:
            raise FileExistsError(f"object {name!r} already exists")
        location = ObjectLocation(name=name, size=len(data))
        # Stable placement: ``hash(str)`` is salted per process
        # (PYTHONHASHSEED), which made simulated latencies irreproducible
        # across runs; CRC32 pins each object to the same OSD everywhere.
        osd_index = placement_osd(name, len(self.osds))
        cursor = 0
        while cursor < len(data) or not location.stripes:
            chunk = data[cursor : cursor + self.stripe_bytes]
            device = self.osds[osd_index]
            offset = device.allocate(max(len(chunk), 1))
            device.write(offset, chunk)
            location.stripes.append((osd_index, offset, len(chunk)))
            cursor += len(chunk)
            osd_index = (osd_index + 1) % len(self.osds)
        self._objects[name] = location
        return location

    # -- read path ----------------------------------------------------------------

    def read_object(self, name: str, length: int | None = None) -> tuple[bytes, float]:
        """Read an object prefix; returns (data, simulated latency).

        Stripes on distinct OSDs are fetched in parallel, so the latency of a
        multi-stripe read is the per-OSD maximum, plus one MDS lookup.
        """
        location = self._lookup(name)
        read_length = location.size if length is None else min(length, location.size)
        remaining = read_length
        per_osd_latency: dict[int, float] = {}
        chunks: list[bytes] = []
        for osd_index, offset, stripe_length in location.stripes:
            if remaining <= 0:
                break
            take = min(stripe_length, remaining)
            data, latency = self.osds[osd_index].read(offset, take)
            chunks.append(data)
            per_osd_latency[osd_index] = per_osd_latency.get(osd_index, 0.0) + latency
            remaining -= take
        total_latency = self.mds_lookup_seconds + (max(per_osd_latency.values()) if per_osd_latency else 0.0)
        return b"".join(chunks), total_latency

    def object_size(self, name: str) -> int:
        """Size of a stored object."""
        return self._lookup(name).size

    def list_objects(self) -> list[str]:
        """Names of stored objects."""
        return list(self._objects)

    # -- reporting ------------------------------------------------------------------

    def aggregate_bandwidth_bytes_per_second(self) -> float:
        """Peak aggregate sequential bandwidth across all OSDs."""
        return sum(osd.profile.bandwidth_bytes_per_second for osd in self.osds)

    def total_bytes_read(self) -> int:
        """Total bytes served by all OSDs."""
        return sum(osd.stats.bytes_read for osd in self.osds)

    def total_busy_seconds(self) -> float:
        """Total simulated busy time across OSDs."""
        return sum(osd.stats.busy_seconds for osd in self.osds)

    def _lookup(self, name: str) -> ObjectLocation:
        self.mds_lookups += 1
        try:
            return self._objects[name]
        except KeyError as exc:
            raise FileNotFoundError(name) from exc
