"""A simulated filesystem over a block device.

Files are allocated as contiguous extents (record files) or deliberately
scattered extents (to model the fragmentation and metadata overhead of a
File-per-Image directory tree).  Reads go through the device so that every
access pattern is charged realistic simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.device import BlockDevice


@dataclass(frozen=True)
class FileExtent:
    """Location of one stored file on the device."""

    name: str
    offset: int
    length: int


class SimulatedFilesystem:
    """A flat namespace of files stored on a :class:`BlockDevice`."""

    def __init__(self, device: BlockDevice, scatter_stride_bytes: int = 0) -> None:
        self.device = device
        self._files: dict[str, FileExtent] = {}
        #: When non-zero, successive files are placed ``scatter_stride_bytes``
        #: apart instead of back to back, modelling allocator fragmentation.
        self.scatter_stride_bytes = scatter_stride_bytes

    # -- writing ---------------------------------------------------------------

    def write_file(self, name: str, data: bytes) -> FileExtent:
        """Store a file; returns its extent."""
        if name in self._files:
            raise FileExistsError(f"file {name!r} already exists")
        if self.scatter_stride_bytes:
            padding = self.scatter_stride_bytes
            self.device.allocate(padding)
        offset = self.device.allocate(len(data))
        self.device.write(offset, data)
        extent = FileExtent(name=name, offset=offset, length=len(data))
        self._files[name] = extent
        return extent

    # -- reading ---------------------------------------------------------------

    def read_file(self, name: str, length: int | None = None) -> tuple[bytes, float]:
        """Read a file (or its first ``length`` bytes); returns (data, latency).

        Reading a prefix is a single sequential device access — exactly the
        PCR partial-read pattern.
        """
        extent = self._require(name)
        read_length = extent.length if length is None else min(length, extent.length)
        return self.device.read(extent.offset, read_length)

    def file_size(self, name: str) -> int:
        """Size of a stored file in bytes."""
        return self._require(name).length

    def list_files(self) -> list[str]:
        """Names of all stored files in creation order."""
        return list(self._files)

    def total_bytes(self) -> int:
        """Sum of all stored file sizes."""
        return sum(extent.length for extent in self._files.values())

    def _require(self, name: str) -> FileExtent:
        try:
            return self._files[name]
        except KeyError as exc:
            raise FileNotFoundError(name) from exc
