"""A page cache with a DirectIO bypass.

The paper minimizes caching effects with DirectIO and reduced cache sizes so
that the measured speedups reflect bandwidth rather than RAM (§A.3).  The
simulated cache makes the same choice explicit: reads served from the cache
cost (almost) nothing, DirectIO reads always go to the device, and the cache
evicts least-recently-used pages when full.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.device import BlockDevice

DEFAULT_PAGE_SIZE = 4096


class PageCache:
    """An LRU page cache keyed by (device page index)."""

    def __init__(self, capacity_bytes: int, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.capacity_pages = max(0, capacity_bytes // page_size)
        self.page_size = page_size
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, page_index: int) -> bytes | None:
        """Return a cached page and mark it most-recently-used."""
        page = self._pages.get(page_index)
        if page is None:
            self.misses += 1
            return None
        self._pages.move_to_end(page_index)
        self.hits += 1
        return page

    def insert(self, page_index: int, data: bytes) -> None:
        """Insert a page, evicting the LRU page if at capacity."""
        if self.capacity_pages == 0:
            return
        self._pages[page_index] = data
        self._pages.move_to_end(page_index)
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._pages)


class CachedDevice:
    """Wraps a :class:`BlockDevice` with a page cache and DirectIO option."""

    def __init__(
        self,
        device: BlockDevice,
        cache_bytes: int = 64 * 1024 * 1024,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_hit_seconds: float = 2e-6,
    ) -> None:
        self.device = device
        self.cache = PageCache(cache_bytes, page_size=page_size)
        self.cache_hit_seconds = cache_hit_seconds
        self.simulated_seconds = 0.0

    def read(self, offset: int, length: int, direct_io: bool = False) -> tuple[bytes, float]:
        """Read bytes, serving whole cached pages when allowed.

        ``direct_io=True`` bypasses the cache entirely (no lookups, no fills),
        matching O_DIRECT semantics.
        """
        if direct_io:
            data, latency = self.device.read(offset, length)
            self.simulated_seconds += latency
            return data, latency

        page_size = self.cache.page_size
        first_page = offset // page_size
        last_page = (offset + length - 1) // page_size if length else first_page
        total_latency = 0.0
        chunks: list[bytes] = []
        for page_index in range(first_page, last_page + 1):
            cached = self.cache.lookup(page_index)
            if cached is None:
                page_offset = page_index * page_size
                cached, latency = self.device.read(page_offset, page_size)
                total_latency += latency
                self.cache.insert(page_index, cached)
            else:
                total_latency += self.cache_hit_seconds
            chunks.append(cached)
        combined = b"".join(chunks)
        start = offset - first_page * page_size
        self.simulated_seconds += total_latency
        return combined[start : start + length], total_latency

    def write(self, offset: int, data: bytes) -> float:
        """Write through to the device and invalidate affected pages."""
        latency = self.device.write(offset, data)
        page_size = self.cache.page_size
        first_page = offset // page_size
        last_page = (offset + len(data) - 1) // page_size if data else first_page
        for page_index in range(first_page, last_page + 1):
            self.cache._pages.pop(page_index, None)
        self.simulated_seconds += latency
        return latency
