"""A threaded TCP server that serves PCR record prefixes over the network.

``PCRRecordServer`` wraps a :class:`~repro.core.reader.PCRReader` and answers
the wire protocol of :mod:`repro.serving.protocol`.  Its cache exploits the
defining property of the PCR layout: the bytes a reader needs at scan group
*k* are a strict prefix of the bytes it needs at any group *g ≥ k*.  The
cache therefore keys entries by record and remembers the *highest* group it
has seen for each; any request at a lower group is served by slicing the
cached prefix (a *prefix-containment hit*) without touching storage.
"""

from __future__ import annotations

import os
import socket
import socketserver
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import PCRError, ScanGroupError
from repro.core.reader import PCRReader
from repro.serving import protocol
from repro.serving.protocol import (
    DEFAULT_MAX_PAYLOAD_BYTES,
    MSG_BATCH,
    MSG_BATCH_DATA,
    MSG_DATASET_META,
    MSG_GET_INDEX,
    MSG_GET_RECORD,
    MSG_INDEX_DATA,
    MSG_META_DATA,
    MSG_RECORD_DATA,
    MSG_STAT,
    MSG_STAT_DATA,
    ProtocolError,
)

DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


@dataclass
class _CacheEntry:
    scan_group: int
    data: bytes


class ScanPrefixCache:
    """An LRU byte cache of record prefixes with prefix-containment hits.

    One entry per record, holding the longest prefix (highest scan group)
    seen so far.  A lookup at group ``g`` hits whenever the cached group is
    ``≥ g``: the response is the first ``bytes_for_group(g)`` bytes of the
    cached prefix.  Eviction is least-recently-used by total cached bytes.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.exact_hits = 0
        self.prefix_hits = 0
        self.misses = 0
        self.evictions = 0
        self.hits_by_group: dict[int, int] = {}
        self.misses_by_group: dict[int, int] = {}
        self.bytes_served_by_group: dict[int, int] = {}

    def get(self, record_name: str, scan_group: int, length: int) -> bytes | None:
        """Return the first ``length`` bytes of the record, or ``None`` on miss."""
        with self._lock:
            entry = self._entries.get(record_name)
            if entry is None or entry.scan_group < scan_group:
                self.misses += 1
                self.misses_by_group[scan_group] = self.misses_by_group.get(scan_group, 0) + 1
                return None
            self._entries.move_to_end(record_name)
            if entry.scan_group == scan_group:
                self.exact_hits += 1
            else:
                self.prefix_hits += 1
            self.hits_by_group[scan_group] = self.hits_by_group.get(scan_group, 0) + 1
            self.bytes_served_by_group[scan_group] = (
                self.bytes_served_by_group.get(scan_group, 0) + length
            )
            return entry.data[:length]

    def put(self, record_name: str, scan_group: int, data: bytes) -> None:
        """Cache a record prefix read at ``scan_group`` (longest prefix wins)."""
        if len(data) > self.capacity_bytes:
            return
        with self._lock:
            existing = self._entries.get(record_name)
            if existing is not None:
                if existing.scan_group >= scan_group:
                    self._entries.move_to_end(record_name)
                    return
                self._bytes -= len(existing.data)
            self._entries[record_name] = _CacheEntry(scan_group=scan_group, data=data)
            self._entries.move_to_end(record_name)
            self._bytes += len(data)
            while self._bytes > self.capacity_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted.data)
                self.evictions += 1

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Counters for the ``STAT`` response and the serving benchmark."""
        with self._lock:
            hits = self.exact_hits + self.prefix_hits
            lookups = hits + self.misses
            return {
                "entries": len(self._entries),
                "cached_bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
                "exact_hits": self.exact_hits,
                "prefix_hits": self.prefix_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": hits / lookups if lookups else 0.0,
                "prefix_hit_rate": self.prefix_hits / lookups if lookups else 0.0,
                "hits_by_group": {str(g): n for g, n in sorted(self.hits_by_group.items())},
                "misses_by_group": {str(g): n for g, n in sorted(self.misses_by_group.items())},
                "bytes_served_by_group": {
                    str(g): n for g, n in sorted(self.bytes_served_by_group.items())
                },
            }


class _RequestHandler(socketserver.BaseRequestHandler):
    """Per-connection loop: read frames, dispatch, write responses."""

    def setup(self) -> None:
        record_server: PCRRecordServer = self.server.record_server  # type: ignore[attr-defined]
        record_server._register_connection(self.request, threading.current_thread())
        if record_server._stopping.is_set():
            # Accepted in serve_forever's final iteration, registered after
            # stop() snapshotted the registry: sever ourselves so the
            # handler loop exits immediately instead of outliving stop().
            try:
                self.request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def finish(self) -> None:
        self.server.record_server._unregister_connection(self.request)  # type: ignore[attr-defined]

    def handle(self) -> None:
        record_server: PCRRecordServer = self.server.record_server  # type: ignore[attr-defined]
        sock: socket.socket = self.request
        while True:
            try:
                frame = protocol.read_frame(sock, record_server.max_payload)
            except OSError:
                return  # connection reset or severed by server shutdown
            except ProtocolError as exc:
                self._send_quietly(
                    sock, protocol.error_frame(protocol.ERR_MALFORMED, str(exc))
                )
                return
            if frame is None:
                return
            msg_type, payload = frame
            response = record_server.dispatch(msg_type, payload)
            if not self._send_quietly(sock, response):
                return

    @staticmethod
    def _send_quietly(sock: socket.socket, data: bytes) -> bool:
        try:
            sock.sendall(data)
            return True
        except OSError:
            return False


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class PCRRecordServer:
    """Serves a PCR dataset directory to remote readers over TCP.

    The server owns one shared (thread-safe) :class:`PCRReader`; every
    client connection is handled on its own thread, and all connections
    share the scan-prefix cache.

    Use as a context manager, or call :meth:`start` / :meth:`stop`::

        with PCRRecordServer(dataset_dir, port=0) as server:
            client = PCRClient(port=server.port)
            ...
    """

    def __init__(
        self,
        dataset: str | Path | PCRReader | object,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES,
    ) -> None:
        if isinstance(dataset, (str, Path, os.PathLike)):
            self.reader = PCRReader(dataset, decode=False)
            self._owns_reader = True
        else:
            # A PCRReader or any reader-shaped view (e.g. the cluster's
            # ShardViewReader); its owner is responsible for closing it.
            self.reader = dataset
            self._owns_reader = False
        self.host = host
        self.max_payload = max_payload
        self.cache = ScanPrefixCache(capacity_bytes=cache_bytes)
        self.requests_by_type: dict[int, int] = {}
        self.errors = 0
        self._counter_lock = threading.Lock()
        self._connections: dict[socket.socket, threading.Thread] = {}
        self._connections_lock = threading.Lock()
        self._stopping = threading.Event()
        self._tcp_server = _ThreadingTCPServer((host, port), _RequestHandler)
        self._tcp_server.record_server = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even when constructed with port=0)."""
        return self._tcp_server.server_address[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "PCRRecordServer":
        """Start accepting connections on a background thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._tcp_server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name=f"pcr-record-server:{self.port}",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Gracefully stop: unbind, sever live connections, join every handler.

        Established connections are shut down explicitly — a persistent
        client blocked in ``recv`` would otherwise keep its handler thread
        (and the reader underneath it) alive past "shutdown".  Only after
        every handler has exited is the reader closed.
        """
        self._stopping.set()
        if self._thread is not None:
            self._tcp_server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        # Every handler thread was spawned inside serve_forever, so after the
        # join above the registry can only shrink.  A handler registered after
        # our snapshot severs itself (see _RequestHandler.setup).
        with self._connections_lock:
            live = list(self._connections.items())
        for conn, _ in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        for _, handler_thread in live:
            handler_thread.join(timeout=max(0.0, deadline - time.monotonic()))
        self._tcp_server.server_close()
        if self._owns_reader:
            self.reader.close()

    def _register_connection(self, conn: socket.socket, thread: threading.Thread) -> None:
        with self._connections_lock:
            self._connections[conn] = thread

    def _unregister_connection(self, conn: socket.socket) -> None:
        with self._connections_lock:
            self._connections.pop(conn, None)

    def __enter__(self) -> "PCRRecordServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, msg_type: int, payload: bytes) -> bytes:
        """Map one request frame to one complete response frame."""
        with self._counter_lock:
            self.requests_by_type[msg_type] = self.requests_by_type.get(msg_type, 0) + 1
        try:
            if msg_type == MSG_GET_RECORD:
                request = protocol.unpack_record_request(payload)
                return self._record_response(request)
            if msg_type == MSG_GET_INDEX:
                request = protocol.unpack_record_request(payload)
                index = self.reader.record_index(request.record_name)
                return protocol.encode_frame(
                    MSG_INDEX_DATA, index.to_json().encode("utf-8"), self.max_payload
                )
            if msg_type == MSG_STAT:
                return protocol.encode_frame(
                    MSG_STAT_DATA, protocol.pack_json(self.stats()), self.max_payload
                )
            if msg_type == MSG_DATASET_META:
                return protocol.encode_frame(
                    MSG_META_DATA, protocol.pack_json(self._dataset_meta()), self.max_payload
                )
            if msg_type == MSG_BATCH:
                return self._batch_response(payload)
            return self._error(
                protocol.ERR_UNSUPPORTED, f"unknown request type 0x{msg_type:02x}"
            )
        except ProtocolError as exc:
            return self._error(protocol.ERR_MALFORMED, str(exc))
        except ScanGroupError as exc:
            return self._error(protocol.ERR_BAD_SCAN_GROUP, str(exc))
        except PCRError as exc:
            return self._error(protocol.ERR_NOT_FOUND, str(exc))
        except Exception as exc:  # never let a handler thread die silently
            return self._error(protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}")

    def _record_response(self, request: protocol.RecordRequest) -> bytes:
        data = self.serve_record_bytes(request.record_name, request.scan_group)
        if len(data) > self.max_payload:
            return self._error(
                protocol.ERR_OVERSIZED,
                f"record prefix of {len(data)} bytes exceeds the frame limit",
            )
        return protocol.encode_frame(MSG_RECORD_DATA, data, self.max_payload)

    def _batch_response(self, payload: bytes) -> bytes:
        requests = protocol.unpack_batch_request(payload)
        sub_frames: list[bytes] = []
        total = 2  # the count field of the batch body
        for index, request in enumerate(requests):
            frame = self._record_response(request)
            total += len(frame)
            if total > self.max_payload:
                # Bail before materializing more sub-frames: a small BATCH
                # request must not be able to force an unbounded response
                # allocation server-side.
                return self._error(
                    protocol.ERR_OVERSIZED,
                    f"batch response exceeds the frame limit at sub-request "
                    f"{index} of {len(requests)}; split the batch",
                )
            sub_frames.append(frame)
        body = protocol.pack_batch_response(sub_frames)
        return protocol.encode_frame(MSG_BATCH_DATA, body, self.max_payload)

    def _error(self, code: int, message: str) -> bytes:
        with self._counter_lock:
            self.errors += 1
        return protocol.error_frame(code, message)

    # -- serving -------------------------------------------------------------

    def serve_record_bytes(self, record_name: str, scan_group: int) -> bytes:
        """Record prefix at ``scan_group``, from cache when containment allows."""
        self.reader._validate_group(scan_group)
        length = self.reader.bytes_for_group(record_name, scan_group)
        cached = self.cache.get(record_name, scan_group, length)
        if cached is not None:
            return cached
        data = self.reader.read_record_bytes(record_name, scan_group)
        self.cache.put(record_name, scan_group, data)
        return data

    def _dataset_meta(self) -> dict:
        return {
            "dataset": self.reader.dataset_meta,
            "n_groups": self.reader.n_groups,
            "n_samples": self.reader.n_samples,
            "record_names": self.reader.record_names,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "max_payload_bytes": self.max_payload,
        }

    def stats(self) -> dict:
        """Aggregate serving statistics (also the ``STAT`` response body)."""
        with self._counter_lock:
            requests = dict(self.requests_by_type)
            errors = self.errors
        return {
            "address": list(self.address),
            "requests_by_type": {f"0x{t:02x}": n for t, n in sorted(requests.items())},
            "n_requests": sum(requests.values()),
            "errors": errors,
            "reader_bytes_read": self.reader.stats.bytes_read,
            "reader_records_read": self.reader.stats.records_read,
            "cache": self.cache.stats(),
        }
