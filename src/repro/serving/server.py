"""An event-loop TCP server that serves PCR record prefixes over the network.

``PCRRecordServer`` wraps a :class:`~repro.core.reader.PCRReader` and answers
the wire protocol of :mod:`repro.serving.protocol`.  Its cache exploits the
defining property of the PCR layout: the bytes a reader needs at scan group
*k* are a strict prefix of the bytes it needs at any group *g ≥ k*.  The
cache therefore keys entries by record and remembers the *highest* group it
has seen for each; any request at a lower group is served by slicing the
cached prefix (a *prefix-containment hit*) without touching storage.

The network front end is a non-blocking event loop on :mod:`selectors`
rather than a thread per connection, so one replica sustains thousands of
concurrent sockets:

* every connection is a small state machine — an incremental
  :class:`~repro.serving.protocol.FrameAssembler` on the read side, a queue
  of pending buffer segments on the write side;
* responses are *gather lists*: an 8-byte frame header plus a
  ``memoryview`` slice straight out of the scan-prefix cache, handed to
  ``socket.sendmsg`` without ever concatenating header and payload (and a
  ``BATCH`` response is one gather list across all its sub-frames — no
  intermediate joins);
* write interest is toggled per connection, and a connection whose output
  queue exceeds ``backpressure_bytes`` stops being *read* until the peer
  drains it, so one slow client can neither stall the loop nor balloon
  server memory;
* ``n_loops > 1`` runs several independent loops with round-robin accept
  handoff (the cache then re-enables its internal locking).
"""

from __future__ import annotations

import os
import selectors
import socket
import struct
import threading
import time
from bisect import bisect_left
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path

from repro.control.telemetry import ClientTelemetry, TelemetryStore
from repro.core.errors import PCRError, ScanGroupError
from repro.core.reader import PCRReader
from repro.obs import MetricsRegistry
from repro.serving import protocol
from repro.serving.protocol import (
    DEFAULT_MAX_PAYLOAD_BYTES,
    MSG_BATCH,
    MSG_BATCH_DATA,
    MSG_DATASET_META,
    MSG_GET_INDEX,
    MSG_GET_METRICS,
    MSG_GET_RECORD,
    MSG_INDEX_DATA,
    MSG_META_DATA,
    MSG_METRICS_DATA,
    MSG_RECORD_DATA,
    MSG_REPORT_TELEMETRY,
    MSG_STAT,
    MSG_STAT_DATA,
    MSG_TELEMETRY_ACK,
    ProtocolError,
)

DEFAULT_CACHE_BYTES = 256 * 1024 * 1024
DEFAULT_BACKPRESSURE_BYTES = 8 * 1024 * 1024
LISTEN_BACKLOG = 1024

LOOP_HISTOGRAM_NAME = "serving.loop.iteration_seconds"

_RECV_BYTES = 256 * 1024

try:
    _IOV_MAX = os.sysconf("SC_IOV_MAX")
except (AttributeError, OSError, ValueError):
    _IOV_MAX = 1024
# Cap the per-sendmsg gather list: IOV_MAX is the hard kernel limit, and
# beyond a few hundred segments list-building costs more than it saves.
_MAX_GATHER_SEGMENTS = max(16, min(_IOV_MAX, 512))

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


class _NullLock:
    """A no-op context manager standing in for a Lock on single-loop servers."""

    __slots__ = ()

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


@dataclass
class _CacheEntry:
    scan_group: int
    data: bytes
    view: memoryview


class ScanPrefixCache:
    """An LRU byte cache of record prefixes with prefix-containment hits.

    One entry per record, holding the longest prefix (highest scan group)
    seen so far.  A lookup at group ``g`` hits whenever the cached group is
    ``≥ g``: the response is a zero-copy ``memoryview`` of the first
    ``bytes_for_group(g)`` bytes of the cached prefix (the full ``bytes``
    object on an exact-length hit), which the event-loop server hands to
    ``sendmsg`` without ever materializing the slice.  Eviction is
    least-recently-used by total cached bytes.

    ``thread_safe=False`` drops the internal lock: the single-threaded
    event loop is the only reader and writer, so the hit/miss/bytes
    counters stay coherent without one.  Threaded embedders (and
    ``n_loops > 1`` servers) keep ``thread_safe=True``.

    The cache also publishes its counters as ``serving.cache.*`` metrics
    on a :class:`~repro.obs.MetricsRegistry` (the embedding server's, or a
    private one for standalone caches).  The hot path touches only the
    plain attributes it always did — the registry counters are brought up
    to date lazily by :meth:`sync_registry`, which every scrape
    (``GET_METRICS``) calls — so instrumentation adds nothing to the
    per-lookup cost.
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CACHE_BYTES,
        thread_safe: bool = True,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.capacity_bytes = capacity_bytes
        self.thread_safe = thread_safe
        self.registry = registry if registry is not None else MetricsRegistry()
        self._entries: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock() if thread_safe else _NullLock()
        self.exact_hits = 0
        self.prefix_hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_served = 0
        self.admissions = 0
        self.bias_skips = 0
        self.hits_by_group: dict[int, int] = {}
        self.misses_by_group: dict[int, int] = {}
        self.bytes_served_by_group: dict[int, int] = {}
        self.admissions_by_group: dict[int, int] = {}
        self.evictions_by_group: dict[int, int] = {}
        # The fidelity controller's steer: admission of groups *above* the
        # fleet's steered set is skipped once the cache is under pressure.
        self._admission_bias: frozenset[int] | None = None
        self._bias_ceiling = 0

    def sync_registry(self) -> None:
        """Bring the ``serving.cache.*`` registry counters up to date.

        Counters are monotonic on both sides, so folding in the difference
        makes the registry exact as of this call without the hot path ever
        touching a metric lock.
        """
        registry = self.registry
        for name, total in (
            ("serving.cache.exact_hits_total", self.exact_hits),
            ("serving.cache.prefix_hits_total", self.prefix_hits),
            ("serving.cache.misses_total", self.misses),
            ("serving.cache.evictions_total", self.evictions),
            ("serving.cache.bytes_served_total", self.bytes_served),
            ("serving.cache.admissions_total", self.admissions),
            ("serving.cache.bias_skips_total", self.bias_skips),
        ):
            counter = registry.counter(name)
            counter.inc(total - counter.value)
        for suffix, by_group in (
            ("hits_total", self.hits_by_group),
            ("misses_total", self.misses_by_group),
            ("bytes_served_total", self.bytes_served_by_group),
            ("admissions_total", self.admissions_by_group),
            ("evictions_total", self.evictions_by_group),
        ):
            # list() snapshots the dict: the event-loop thread may be adding
            # a first-seen group concurrently.
            for group, total in list(by_group.items()):
                counter = registry.counter(f"serving.cache.group.{group}.{suffix}")
                counter.inc(total - counter.value)

    def get(self, record_name: str, scan_group: int, length: int):
        """Return a view of the first ``length`` bytes, or ``None`` on miss.

        The result is ``bytes`` on an exact-length hit and a read-only
        ``memoryview`` slice on a containment hit; both compare equal to
        the equivalent ``bytes`` and both support ``len``/buffer APIs.  The
        view pins the backing ``bytes`` object, so it stays valid even if
        the entry is evicted afterwards.
        """
        with self._lock:
            entry = self._entries.get(record_name)
            if entry is None or entry.scan_group < scan_group:
                self.misses += 1
                self.misses_by_group[scan_group] = self.misses_by_group.get(scan_group, 0) + 1
                return None
            self._entries.move_to_end(record_name)
            if entry.scan_group == scan_group:
                self.exact_hits += 1
            else:
                self.prefix_hits += 1
            self.bytes_served += length
            self.hits_by_group[scan_group] = self.hits_by_group.get(scan_group, 0) + 1
            self.bytes_served_by_group[scan_group] = (
                self.bytes_served_by_group.get(scan_group, 0) + length
            )
            if length == len(entry.data):
                return entry.data
            return entry.view[:length]

    def set_admission_bias(self, groups: set[int] | None) -> None:
        """Bias admission toward the fleet's steered scan groups.

        With a bias set, a prefix read at a group *above* every steered
        group is not admitted once the cache is past half occupancy: when
        the controller has steered the fleet down, high-fidelity prefixes
        nobody is fetching any more must not evict the short prefixes the
        fleet now lives on.  Prefix containment makes admitting *smaller*
        groups always safe, so only the upward direction is gated.  Pass
        ``None`` to clear the bias.
        """
        with self._lock:
            if groups:
                self._admission_bias = frozenset(groups)
                self._bias_ceiling = max(groups)
            else:
                self._admission_bias = None
                self._bias_ceiling = 0

    def put(self, record_name: str, scan_group: int, data: bytes) -> None:
        """Cache a record prefix read at ``scan_group`` (longest prefix wins)."""
        if len(data) > self.capacity_bytes:
            return
        data = bytes(data)
        with self._lock:
            if (
                self._admission_bias is not None
                and scan_group > self._bias_ceiling
                and self._bytes * 2 >= self.capacity_bytes
            ):
                self.bias_skips += 1
                return
            existing = self._entries.get(record_name)
            if existing is not None:
                if existing.scan_group >= scan_group:
                    self._entries.move_to_end(record_name)
                    return
                self._bytes -= len(existing.data)
            self._entries[record_name] = _CacheEntry(
                scan_group=scan_group, data=data, view=memoryview(data)
            )
            self._entries.move_to_end(record_name)
            self._bytes += len(data)
            self.admissions += 1
            self.admissions_by_group[scan_group] = (
                self.admissions_by_group.get(scan_group, 0) + 1
            )
            while self._bytes > self.capacity_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted.data)
                self.evictions += 1
                self.evictions_by_group[evicted.scan_group] = (
                    self.evictions_by_group.get(evicted.scan_group, 0) + 1
                )

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Counters for the ``STAT`` response and the serving benchmark."""
        with self._lock:
            hits = self.exact_hits + self.prefix_hits
            lookups = hits + self.misses
            return {
                "entries": len(self._entries),
                "cached_bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
                "exact_hits": self.exact_hits,
                "prefix_hits": self.prefix_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "admissions": self.admissions,
                "bias_skips": self.bias_skips,
                "admission_bias": sorted(self._admission_bias)
                if self._admission_bias is not None
                else None,
                "hit_rate": hits / lookups if lookups else 0.0,
                "prefix_hit_rate": self.prefix_hits / lookups if lookups else 0.0,
                "hits_by_group": {str(g): n for g, n in sorted(self.hits_by_group.items())},
                "misses_by_group": {str(g): n for g, n in sorted(self.misses_by_group.items())},
                "bytes_served_by_group": {
                    str(g): n for g, n in sorted(self.bytes_served_by_group.items())
                },
                "admissions_by_group": {
                    str(g): n for g, n in sorted(self.admissions_by_group.items())
                },
                "evictions_by_group": {
                    str(g): n for g, n in sorted(self.evictions_by_group.items())
                },
            }


class _Connection:
    """Per-socket state machine: incremental parse in, gather-list out."""

    __slots__ = (
        "sock",
        "fd",
        "assembler",
        "out",
        "out_bytes",
        "close_after_flush",
        "paused",
        "interest",
        "open",
        "bytes_received",
        "bytes_sent",
    )

    def __init__(self, sock: socket.socket, max_payload: int) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.assembler = protocol.FrameAssembler(max_payload)
        self.out: deque[memoryview] = deque()
        self.out_bytes = 0
        self.close_after_flush = False
        self.paused = False
        self.interest = selectors.EVENT_READ
        self.open = True
        self.bytes_received = 0
        self.bytes_sent = 0

    def queue(self, segments) -> None:
        """Append response buffer segments to the pending gather list."""
        for segment in segments:
            view = segment if isinstance(segment, memoryview) else memoryview(segment)
            if not len(view):
                continue
            self.out.append(view)
            self.out_bytes += len(view)

    def consume(self, n_sent: int) -> None:
        """Advance the gather list past ``n_sent`` transmitted bytes."""
        self.out_bytes -= n_sent
        out = self.out
        while n_sent:
            head = out[0]
            if n_sent >= len(head):
                n_sent -= len(head)
                out.popleft()
            else:
                out[0] = head[n_sent:]
                return


class _EventLoop:
    """One selector thread: accepts (loop 0), reads, dispatches, writes."""

    def __init__(self, server: "PCRRecordServer", index: int) -> None:
        self.server = server
        self.index = index
        self.selector = selectors.DefaultSelector()
        self.connections: dict[int, _Connection] = {}
        self.pending: deque[socket.socket] = deque()
        self.pending_lock = threading.Lock()
        self.thread: threading.Thread | None = None
        # Hot-path counters are plain attributes — this loop's thread is the
        # only writer, so they cost one integer add and stay exact.  Scrapes
        # fold them into the server registry via _sync_registry().  The
        # iteration-latency histogram accumulates the same way: plain bucket
        # counts bumped per wakeup, merged into the registry at scrape time.
        self.accepted = 0
        self.closed = 0
        self.backpressure_pauses = 0
        self.backpressure_resumes = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        self.iter_edges = server.registry.histogram(LOOP_HISTOGRAM_NAME).edges
        self.iter_counts = [0] * (len(self.iter_edges) + 1)
        self.iter_sum = 0.0
        self.iter_count = 0
        # What has already been folded into the registry histogram; the
        # scrape thread (under the server's sync lock) is the only writer.
        self._iter_synced_counts = [0] * (len(self.iter_edges) + 1)
        self._iter_synced_sum = 0.0
        self._iter_synced_count = 0
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self.selector.register(self._wake_r, selectors.EVENT_READ, "wake")

    def sync_iteration_histogram(self) -> None:
        """Fold iteration timings recorded since the last sync into the
        registry histogram.  Called under the server's sync lock; the loop
        thread may observe concurrently, so reads are snapshotted first and
        anything racing in lands in the next sync.
        """
        if not self.server.registry.enabled:
            return  # merge() would drop the delta but the shadows would advance
        count = self.iter_count
        delta_count = count - self._iter_synced_count
        if not delta_count:
            return
        counts = list(self.iter_counts)
        total = self.iter_sum
        self.server.registry.merge(
            {
                "histograms": {
                    LOOP_HISTOGRAM_NAME: {
                        "edges": list(self.iter_edges),
                        "counts": [
                            n - p for n, p in zip(counts, self._iter_synced_counts)
                        ],
                        "sum": total - self._iter_synced_sum,
                        "count": delta_count,
                    }
                }
            }
        )
        self._iter_synced_counts = counts
        self._iter_synced_sum = total
        self._iter_synced_count = count

    # -- cross-thread signalling ---------------------------------------------

    def wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # a wake is already pending, or the loop is tearing down

    def hand_off(self, sock: socket.socket) -> None:
        """Queue an accepted socket for admission by this loop's thread."""
        with self.pending_lock:
            self.pending.append(sock)
        self.wake()

    # -- main loop -------------------------------------------------------------

    def run(self) -> None:
        stop = self.server._stop_event
        registry = self.server.registry
        perf_counter = time.perf_counter
        iter_edges = self.iter_edges
        iter_counts = self.iter_counts  # mutated in place; sync copies it
        try:
            while not stop.is_set():
                events = self.selector.select(timeout=0.2)
                if events:
                    # Idle selector timeouts are not timed: the histogram
                    # measures how long the loop spends servicing ready
                    # sockets, not how long it sleeps waiting for them.
                    iteration_start = perf_counter() if registry._enabled else 0.0
                    for key, mask in events:
                        data = key.data
                        if data == "wake":
                            self._drain_wake()
                        elif data == "listener":
                            self._accept_ready()
                        else:
                            conn: _Connection = data
                            if mask & selectors.EVENT_WRITE and conn.open:
                                self._flush(conn)
                            if mask & selectors.EVENT_READ and conn.open:
                                self._read(conn)
                    if iteration_start:
                        elapsed = perf_counter() - iteration_start
                        iter_counts[bisect_left(iter_edges, elapsed)] += 1
                        self.iter_sum += elapsed
                        self.iter_count += 1
                self._admit_pending()
        finally:
            self._teardown()

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _admit_pending(self) -> None:
        while True:
            with self.pending_lock:
                if not self.pending:
                    return
                sock = self.pending.popleft()
            self._admit(sock)

    def _teardown(self) -> None:
        for conn in list(self.connections.values()):
            self._close(conn)
        self._admit_stragglers_closed()
        try:
            self.selector.unregister(self._wake_r)
        except (KeyError, ValueError):
            pass
        self._wake_r.close()
        self._wake_w.close()
        self.selector.close()

    def _admit_stragglers_closed(self) -> None:
        """Sockets handed off after stop was signalled are closed, not served."""
        with self.pending_lock:
            stragglers = list(self.pending)
            self.pending.clear()
        for sock in stragglers:
            try:
                sock.close()
            except OSError:
                pass

    # -- accept ----------------------------------------------------------------

    def _accept_ready(self) -> None:
        server = self.server
        while True:
            try:
                sock, _ = server._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us during shutdown
            server._configure_socket(sock)
            target = server._loops[server._next_loop_index()]
            if target is self:
                self._admit(sock)
            else:
                target.hand_off(sock)

    def _admit(self, sock: socket.socket) -> None:
        if self.server._stop_event.is_set():
            try:
                sock.close()
            except OSError:
                pass
            return
        conn = _Connection(sock, self.server.max_payload)
        self.connections[conn.fd] = conn
        self.selector.register(sock, selectors.EVENT_READ, conn)
        self.accepted += 1

    # -- read side -------------------------------------------------------------

    def _read(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(_RECV_BYTES)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(conn)
            return
        if data:
            conn.bytes_received += len(data)
            self.bytes_received += len(data)
        else:
            if conn.assembler.mid_frame:
                # Mirror the blocking read_frame contract: EOF inside a
                # frame is a malformed stream, answered before closing.
                self._respond(
                    conn,
                    [protocol.error_frame(
                        protocol.ERR_MALFORMED, "connection closed mid-frame"
                    )],
                    close_after=True,
                )
            else:
                self._close(conn)
            return
        try:
            frames = conn.assembler.feed(data)
        except ProtocolError as exc:
            self._respond(
                conn,
                [protocol.error_frame(protocol.ERR_MALFORMED, str(exc))],
                close_after=True,
            )
            return
        if not frames:
            return
        # Queue every response parsed out of this recv, then flush once:
        # a pipelined client gets its whole response burst coalesced into
        # as few sendmsg gather calls as the socket buffer allows.
        for msg_type, payload in frames:
            conn.queue(self.server._dispatch_segments(msg_type, payload))
        self._flush(conn)

    # -- write side ------------------------------------------------------------

    def _respond(self, conn: _Connection, segments, close_after: bool = False) -> None:
        conn.queue(segments)
        if close_after:
            conn.close_after_flush = True
        self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        sock = conn.sock
        out = conn.out
        while out:
            try:
                if _HAS_SENDMSG:
                    if len(out) <= _MAX_GATHER_SEGMENTS:
                        n_sent = sock.sendmsg(out)
                    else:
                        n_sent = sock.sendmsg(
                            [out[i] for i in range(_MAX_GATHER_SEGMENTS)]
                        )
                else:  # pragma: no cover - non-sendmsg platforms
                    n_sent = sock.send(out[0])
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close(conn)
                return
            if n_sent == 0:
                break
            conn.consume(n_sent)
            conn.bytes_sent += n_sent
            self.bytes_sent += n_sent
        if not out:
            if conn.close_after_flush:
                self._close(conn)
                return
            self._set_interest(conn, selectors.EVENT_READ)
            if conn.paused:
                conn.paused = False
                self.backpressure_resumes += 1
        else:
            interest = selectors.EVENT_WRITE
            high_water = self.server.backpressure_bytes
            if conn.out_bytes > high_water:
                if not conn.paused:
                    conn.paused = True
                    self.backpressure_pauses += 1
            elif conn.paused and conn.out_bytes <= high_water // 2:
                conn.paused = False
                self.backpressure_resumes += 1
            if not conn.paused and not conn.close_after_flush:
                interest |= selectors.EVENT_READ
            self._set_interest(conn, interest)

    def _set_interest(self, conn: _Connection, interest: int) -> None:
        if conn.interest == interest:
            return
        try:
            self.selector.modify(conn.sock, interest, conn)
            conn.interest = interest
        except (KeyError, ValueError, OSError):
            self._close(conn)

    # -- lifecycle -------------------------------------------------------------

    def _close(self, conn: _Connection) -> None:
        if not conn.open:
            return
        conn.open = False
        try:
            self.selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self.connections.pop(conn.fd, None)
        conn.out.clear()
        conn.out_bytes = 0
        self.closed += 1


class PCRRecordServer:
    """Serves a PCR dataset directory to remote readers over TCP.

    The server owns one shared :class:`PCRReader` and runs ``n_loops``
    event-loop threads (one by default); every client connection is a
    non-blocking state machine on one of those loops, and all connections
    share the scan-prefix cache.

    Use as a context manager, or call :meth:`start` / :meth:`stop`::

        with PCRRecordServer(dataset_dir, port=0) as server:
            client = PCRClient(port=server.port)
            ...
    """

    def __init__(
        self,
        dataset: str | Path | PCRReader | object,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES,
        n_loops: int = 1,
        backpressure_bytes: int = DEFAULT_BACKPRESSURE_BYTES,
        socket_buffer_bytes: int | None = None,
        metrics_enabled: bool = True,
    ) -> None:
        if isinstance(dataset, (str, Path, os.PathLike)):
            self.reader = PCRReader(dataset, decode=False)
            self._owns_reader = True
        else:
            # A PCRReader or any reader-shaped view (e.g. the cluster's
            # ShardViewReader); its owner is responsible for closing it.
            self.reader = dataset
            self._owns_reader = False
        if n_loops < 1:
            raise ValueError("n_loops must be at least 1")
        self.host = host
        self.max_payload = max_payload
        self.n_loops = n_loops
        self.backpressure_bytes = backpressure_bytes
        self.socket_buffer_bytes = socket_buffer_bytes
        # Per-instance registry, not the process default: cluster tests run
        # many replicas in one process and each replica's GET_METRICS must
        # report only its own traffic.
        self.registry = MetricsRegistry(enabled=metrics_enabled)
        # The single-threaded loop is the cache's only reader/writer, so it
        # runs lock-free; multiple loops re-enable the lock.
        self.cache = ScanPrefixCache(
            capacity_bytes=cache_bytes,
            thread_safe=(n_loops > 1),
            registry=self.registry,
        )
        # Request/error counts live in plain fields — the same shape the
        # pre-registry server kept — and are folded into `serving.*` registry
        # counters at scrape time by _sync_registry(), so the dispatch path
        # never takes a metric lock.
        self._requests_by_type: dict[int, int] = {}
        self._errors = 0
        # The meeting point of the control loop: REPORT_TELEMETRY frames
        # land here, the fidelity controller (if started) reads them and
        # writes hints back.  Always present — a server without a controller
        # still accepts reports and acks with no hint.
        self.telemetry = TelemetryStore()
        self._controller = None
        self._sync_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._started = False
        self._stopped = False
        self._accept_rr = 0
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if socket_buffer_bytes:
                listener.setsockopt(
                    socket.SOL_SOCKET, socket.SO_RCVBUF, socket_buffer_bytes
                )
                listener.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, socket_buffer_bytes
                )
            listener.bind((host, port))
            listener.listen(LISTEN_BACKLOG)
            listener.setblocking(False)
        except BaseException:
            listener.close()
            if self._owns_reader:
                self.reader.close()
            raise
        self._listener = listener
        self._loops = [_EventLoop(self, index) for index in range(n_loops)]

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even when constructed with port=0)."""
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def open_connections(self) -> int:
        """Live client connections across every event loop."""
        return sum(len(loop.connections) for loop in self._loops)

    def _configure_socket(self, sock: socket.socket) -> None:
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass
        if self.socket_buffer_bytes:
            try:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_RCVBUF, self.socket_buffer_bytes
                )
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, self.socket_buffer_bytes
                )
            except OSError:  # pragma: no cover
                pass

    def _next_loop_index(self) -> int:
        index = self._accept_rr % len(self._loops)
        self._accept_rr += 1
        return index

    def start(self) -> "PCRRecordServer":
        """Start the event loop(s) on background threads."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._loops[0].selector.register(
            self._listener, selectors.EVENT_READ, "listener"
        )
        for loop in self._loops:
            loop.thread = threading.Thread(
                target=loop.run,
                daemon=True,
                name=f"pcr-record-server:{self.port}:loop{loop.index}",
            )
            loop.thread.start()
        return self

    def stop(self) -> None:
        """Gracefully stop: wake every loop, close every connection, unbind.

        Established connections are closed by their owning loop during
        teardown — a persistent client blocked in ``recv`` sees EOF
        immediately instead of a hang.  Only after every loop has exited is
        the reader closed.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._controller is not None:
            self._controller.stop()
        self._stop_event.set()
        for loop in self._loops:
            loop.wake()
        for loop in self._loops:
            if loop.thread is not None:
                loop.thread.join(timeout=5.0)
                loop.thread = None
        try:
            self._listener.close()
        except OSError:
            pass
        if not self._started:
            # Never-started loops still hold their waker socketpairs.
            for loop in self._loops:
                loop._teardown()
        if self._owns_reader:
            self.reader.close()

    def __enter__(self) -> "PCRRecordServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, msg_type: int, payload: bytes) -> bytes:
        """Map one request frame to one complete response frame (joined)."""
        return b"".join(bytes(s) for s in self._dispatch_segments(msg_type, payload))

    def _dispatch_segments(self, msg_type: int, payload: bytes) -> list:
        """Map one request frame to a response *gather list*.

        The list holds buffer segments (header ``bytes`` + payload
        ``memoryview``/``bytes``) that, concatenated, form one complete
        response frame — the event loop hands them to ``sendmsg`` as-is,
        so cache bytes reach the socket without an intermediate copy.
        """
        requests = self._requests_by_type
        requests[msg_type] = requests.get(msg_type, 0) + 1
        try:
            if msg_type == MSG_GET_RECORD:
                request = protocol.unpack_record_request(payload)
                return self._record_segments(request)
            if msg_type == MSG_GET_INDEX:
                request = protocol.unpack_record_request(payload)
                index = self.reader.record_index(request.record_name)
                return [
                    protocol.encode_frame(
                        MSG_INDEX_DATA, index.to_json().encode("utf-8"), self.max_payload
                    )
                ]
            if msg_type == MSG_STAT:
                return [
                    protocol.encode_frame(
                        MSG_STAT_DATA, protocol.pack_json(self.stats()), self.max_payload
                    )
                ]
            if msg_type == MSG_DATASET_META:
                return [
                    protocol.encode_frame(
                        MSG_META_DATA, protocol.pack_json(self._dataset_meta()),
                        self.max_payload,
                    )
                ]
            if msg_type == MSG_BATCH:
                return self._batch_segments(payload)
            if msg_type == MSG_REPORT_TELEMETRY:
                return [
                    protocol.encode_frame(
                        MSG_TELEMETRY_ACK,
                        protocol.pack_json(self._handle_telemetry(payload)),
                        self.max_payload,
                    )
                ]
            if msg_type == MSG_GET_METRICS:
                return [
                    protocol.encode_frame(
                        MSG_METRICS_DATA,
                        protocol.pack_json(self.metrics_snapshot()),
                        self.max_payload,
                    )
                ]
            return [
                self._error(
                    protocol.ERR_UNSUPPORTED, f"unknown request type 0x{msg_type:02x}"
                )
            ]
        except ProtocolError as exc:
            return [self._error(protocol.ERR_MALFORMED, str(exc))]
        except ScanGroupError as exc:
            return [self._error(protocol.ERR_BAD_SCAN_GROUP, str(exc))]
        except PCRError as exc:
            return [self._error(protocol.ERR_NOT_FOUND, str(exc))]
        except Exception as exc:  # never let the event loop die on a request
            return [self._error(protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}")]

    def _record_segments(self, request: protocol.RecordRequest) -> list:
        """``[header, payload-view]`` for one record, or ``[error-frame]``."""
        try:
            data = self.serve_record_bytes(request.record_name, request.scan_group)
        except ScanGroupError as exc:
            return [self._error(protocol.ERR_BAD_SCAN_GROUP, str(exc))]
        except PCRError as exc:
            return [self._error(protocol.ERR_NOT_FOUND, str(exc))]
        if len(data) > self.max_payload:
            return [
                self._error(
                    protocol.ERR_OVERSIZED,
                    f"record prefix of {len(data)} bytes exceeds the frame limit",
                )
            ]
        return [
            protocol.encode_header(MSG_RECORD_DATA, len(data), self.max_payload),
            data,
        ]

    def _batch_segments(self, payload: bytes) -> list:
        """One gather list for a whole ``BATCH`` response — zero joins.

        Sub-frame segments accumulate directly into the outer response's
        gather list; only their total length is computed up front, for the
        outer header and the frame-limit check.
        """
        requests = protocol.unpack_batch_request(payload)
        segments: list = []
        total = 2  # the count field of the batch body
        for index, request in enumerate(requests):
            sub = self._record_segments(request)
            total += sum(len(s) for s in sub)
            if total > self.max_payload:
                # Bail before materializing more sub-frames: a small BATCH
                # request must not be able to force an unbounded response
                # allocation server-side.
                return [
                    self._error(
                        protocol.ERR_OVERSIZED,
                        f"batch response exceeds the frame limit at sub-request "
                        f"{index} of {len(requests)}; split the batch",
                    )
                ]
            segments.extend(sub)
        return [
            protocol.encode_header(MSG_BATCH_DATA, total, self.max_payload),
            struct.pack("<H", len(requests)),
            *segments,
        ]

    def _error(self, code: int, message: str) -> bytes:
        self._errors += 1
        return protocol.error_frame(code, message)

    def _handle_telemetry(self, payload: bytes) -> dict:
        """One ``REPORT_TELEMETRY`` frame: store the report, return the ack.

        The ack piggybacks the controller's current hint for the reporting
        client (if any), so the report round trip *is* the hint delivery —
        no extra poll op on the wire.
        """
        try:
            telemetry = ClientTelemetry.from_payload(protocol.unpack_json(payload))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed telemetry report: {exc}") from exc
        hint = self.telemetry.update(telemetry)
        return {
            "controller_active": self._controller is not None,
            "hint": hint.to_payload() if hint is not None else None,
        }

    # -- control loop --------------------------------------------------------

    @property
    def controller(self):
        """The attached :class:`~repro.control.FidelityController` (or None)."""
        return self._controller

    def start_controller(
        self, policy=None, interval: float | None = None, auto_start: bool = True
    ):
        """Attach (and by default start) a fidelity controller on this server.

        The controller steers every client that reports telemetry to this
        server; its decisions and rationale appear as ``control.*`` metrics
        in this server's ``GET_METRICS`` snapshots.  ``auto_start=False``
        attaches without spawning the thread, for callers that drive
        :meth:`~repro.control.FidelityController.step` themselves.
        """
        if self._controller is not None:
            raise RuntimeError("controller already attached")
        from repro.control.controller import FidelityController, ServerControlPlane

        kwargs = {} if interval is None else {"interval": interval}
        controller = FidelityController(ServerControlPlane(self), policy, **kwargs)
        self._controller = controller
        if auto_start:
            controller.start()
        return controller

    # -- serving -------------------------------------------------------------

    def serve_record_bytes(self, record_name: str, scan_group: int):
        """Record prefix at ``scan_group``, from cache when containment allows.

        Returns ``bytes`` on a miss or exact-length hit and a zero-copy
        ``memoryview`` on a prefix-containment hit.
        """
        self.reader._validate_group(scan_group)
        length = self.reader.bytes_for_group(record_name, scan_group)
        cached = self.cache.get(record_name, scan_group, length)
        if cached is not None:
            return cached
        data = self.reader.read_record_bytes(record_name, scan_group)
        self.cache.put(record_name, scan_group, data)
        return data

    def _dataset_meta(self) -> dict:
        return {
            "dataset": self.reader.dataset_meta,
            "n_groups": self.reader.n_groups,
            "n_samples": self.reader.n_samples,
            "record_names": self.reader.record_names,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "max_payload_bytes": self.max_payload,
        }

    @property
    def requests_by_type(self) -> dict[int, int]:
        """Request counts per message type."""
        return dict(self._requests_by_type)

    @property
    def errors(self) -> int:
        """Total error responses."""
        return self._errors

    def _sync_registry(self) -> None:
        """Fold the event loops' plain hot-path counters into the registry.

        Each loop thread is the sole writer of its own totals and every
        total is monotonic, so summing across loops and folding in the
        difference yields an exact registry as of this call — without the
        per-request path paying for a metric lock.  The sync lock keeps
        concurrent scrapes from folding the same difference twice.
        """
        with self._sync_lock:
            self.cache.sync_registry()
            registry = self.registry
            loops = self._loops
            for name, total in (
                ("serving.bytes_received_total", sum(l.bytes_received for l in loops)),
                ("serving.bytes_sent_total", sum(l.bytes_sent for l in loops)),
                ("serving.connections.accepted_total", sum(l.accepted for l in loops)),
                ("serving.connections.closed_total", sum(l.closed for l in loops)),
                (
                    "serving.backpressure.pauses_total",
                    sum(l.backpressure_pauses for l in loops),
                ),
                (
                    "serving.backpressure.resumes_total",
                    sum(l.backpressure_resumes for l in loops),
                ),
            ):
                counter = registry.counter(name)
                counter.inc(total - counter.value)
            for msg_type, total in self._requests_by_type.items():
                name = protocol.MESSAGE_NAMES.get(msg_type, f"op_0x{msg_type:02x}")
                counter = registry.counter(f"serving.requests.{name}_total")
                counter.inc(total - counter.value)
            errors = registry.counter("serving.errors_total")
            errors.inc(self._errors - errors.value)
            reports = registry.counter("serving.telemetry.reports_total")
            reports.inc(self.telemetry.reports_received - reports.value)
            hints = registry.counter("serving.telemetry.hints_served_total")
            hints.inc(self.telemetry.hints_served - hints.value)
            for loop in loops:
                loop.sync_iteration_histogram()

    def metrics_snapshot(self) -> dict:
        """The ``GET_METRICS`` response body: one registry snapshot.

        Counters kept as plain event-loop attributes and gauges that
        describe current state (cache size, open connections) are refreshed
        at scrape time, so the snapshot is self-contained — a scraper needs
        no second round-trip to ``STAT``.
        """
        registry = self.registry
        self._sync_registry()
        registry.gauge("serving.cache.entries").set(len(self.cache))
        registry.gauge("serving.cache.cached_bytes").set(self.cache.cached_bytes)
        registry.gauge("serving.connections.open").set(self.open_connections)
        registry.gauge("serving.telemetry.clients").set(len(self.telemetry))
        return {
            "address": list(self.address),
            "pid": os.getpid(),
            "metrics_enabled": registry.enabled,
            "registry": registry.snapshot(),
        }

    def stats(self) -> dict:
        """Aggregate serving statistics (also the ``STAT`` response body)."""
        requests = self.requests_by_type
        return {
            "address": list(self.address),
            "requests_by_type": {f"0x{t:02x}": n for t, n in sorted(requests.items())},
            "n_requests": sum(requests.values()),
            "errors": self.errors,
            "reader_bytes_read": self.reader.stats.bytes_read,
            "reader_records_read": self.reader.stats.records_read,
            "cache": self.cache.stats(),
            "event_loop": {
                "n_loops": self.n_loops,
                "open_connections": self.open_connections,
                "accepted_connections": sum(loop.accepted for loop in self._loops),
                "closed_connections": sum(loop.closed for loop in self._loops),
                "backpressure_pauses": sum(
                    loop.backpressure_pauses for loop in self._loops
                ),
            },
        }
