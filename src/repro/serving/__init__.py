"""Network serving layer: ship PCR record prefixes to remote readers.

The subsystem has four parts:

:mod:`repro.serving.protocol`
    The versioned, length-prefixed binary wire format (requests, responses,
    structured error frames, pipelined batches).

:mod:`repro.serving.server`
    ``PCRRecordServer`` — a threaded TCP server over a shared
    :class:`~repro.core.reader.PCRReader` with a scan-prefix LRU cache that
    serves any scan group ≤ a cached group by slicing the cached prefix.

:mod:`repro.serving.client`
    ``PCRClient`` — a connection-pooled client with pipelined batch fetches
    and retry-on-reconnect.

:mod:`repro.serving.remote_source`
    ``RemoteRecordSource`` — the ``DataLoader``-compatible record source
    that streams minibatches from a server with a runtime-switchable scan
    group.

:mod:`repro.serving.cluster`
    The multi-node layer: ``ShardMap`` (consistent-hash routing),
    ``ClusterCoordinator`` (shard fleet supervision),
    ``ClusterClient`` (failover-aware routing client), and
    ``ShardedRemoteRecordSource`` (the clustered ``DataLoader`` source).
"""

from repro.serving.client import PCRClient
from repro.serving.cluster import (
    ClusterClient,
    ClusterCoordinator,
    ShardMap,
    ShardedRemoteRecordSource,
)
from repro.serving.remote_source import RemoteRecordSource
from repro.serving.server import PCRRecordServer, ScanPrefixCache

__all__ = [
    "ClusterClient",
    "ClusterCoordinator",
    "PCRClient",
    "PCRRecordServer",
    "RemoteRecordSource",
    "ScanPrefixCache",
    "ShardMap",
    "ShardedRemoteRecordSource",
]
