"""Versioned length-prefixed binary wire format for the PCR record server.

Every message on the wire is one *frame*::

    +-------+---------+------+----------------+---------------+
    | magic | version | type | payload length |    payload    |
    | 2 B   | 1 B     | 1 B  | 4 B (LE)       | <length> B    |
    +-------+---------+------+----------------+---------------+

Requests carry structured binary payloads (``struct``-packed, names UTF-8;
``REPORT_TELEMETRY`` carries UTF-8 JSON); responses carry either raw record
bytes (``RECORD_DATA``), UTF-8 JSON (``INDEX_DATA`` / ``STAT_DATA`` /
``META_DATA`` / ``METRICS_DATA`` / ``TELEMETRY_ACK``), a concatenation of
complete sub-frames (``BATCH_DATA``, one per pipelined sub-request), or a
structured error frame (``ERROR``: error code + UTF-8 message).

The payload length is bounded (:data:`DEFAULT_MAX_PAYLOAD_BYTES`); both
sides reject oversized frames before allocating, so a corrupt or hostile
peer cannot force a multi-gigabyte read.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass

PROTOCOL_MAGIC = b"PR"
PROTOCOL_VERSION = 1

_HEADER_STRUCT = "<2sBBI"
HEADER_SIZE = struct.calcsize(_HEADER_STRUCT)

DEFAULT_MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

# One-syscall exact reads (kernel-side loop); 0 where unsupported.
_MSG_WAITALL = getattr(socket, "MSG_WAITALL", 0)

# -- message types ------------------------------------------------------------

MSG_GET_RECORD = 0x01
MSG_GET_INDEX = 0x02
MSG_STAT = 0x03
MSG_DATASET_META = 0x04
MSG_BATCH = 0x05
MSG_GET_METRICS = 0x06
MSG_REPORT_TELEMETRY = 0x07

MSG_RECORD_DATA = 0x81
MSG_INDEX_DATA = 0x82
MSG_STAT_DATA = 0x83
MSG_META_DATA = 0x84
MSG_BATCH_DATA = 0x85
MSG_METRICS_DATA = 0x86
MSG_TELEMETRY_ACK = 0x87
MSG_ERROR = 0xFF

REQUEST_TYPES = frozenset(
    {
        MSG_GET_RECORD,
        MSG_GET_INDEX,
        MSG_STAT,
        MSG_DATASET_META,
        MSG_BATCH,
        MSG_GET_METRICS,
        MSG_REPORT_TELEMETRY,
    }
)

#: Mnemonic names for request types — also the suffixes of the server's
#: ``serving.requests.<name>_total`` registry counters.
MESSAGE_NAMES = {
    MSG_GET_RECORD: "get_record",
    MSG_GET_INDEX: "get_index",
    MSG_STAT: "stat",
    MSG_DATASET_META: "dataset_meta",
    MSG_BATCH: "batch",
    MSG_GET_METRICS: "get_metrics",
    MSG_REPORT_TELEMETRY: "report_telemetry",
}

# -- error codes --------------------------------------------------------------

ERR_MALFORMED = 1
ERR_UNSUPPORTED = 2
ERR_NOT_FOUND = 3
ERR_BAD_SCAN_GROUP = 4
ERR_OVERSIZED = 5
ERR_INTERNAL = 6

ERROR_NAMES = {
    ERR_MALFORMED: "malformed",
    ERR_UNSUPPORTED: "unsupported",
    ERR_NOT_FOUND: "not-found",
    ERR_BAD_SCAN_GROUP: "bad-scan-group",
    ERR_OVERSIZED: "oversized",
    ERR_INTERNAL: "internal",
}


class ProtocolError(Exception):
    """A malformed, truncated, or version-incompatible frame."""


class FrameTooLargeError(ProtocolError):
    """A frame whose payload exceeds the negotiated maximum."""


class RemoteError(Exception):
    """A structured error frame returned by the server."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[{ERROR_NAMES.get(code, code)}] {message}")
        self.code = code
        self.message = message


# -- frame encoding / decoding ------------------------------------------------


def encode_header(
    msg_type: int, payload_length: int, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES
) -> bytes:
    """Serialize one frame *header* for a payload of ``payload_length`` bytes.

    The zero-copy send path pairs this 8-byte header with the payload's own
    buffer (e.g. a cache ``memoryview``) in a ``sendmsg`` gather list, so
    the payload bytes are never concatenated into a new frame object.
    """
    if payload_length > max_payload:
        raise FrameTooLargeError(
            f"payload of {payload_length} bytes exceeds the {max_payload}-byte frame limit"
        )
    return struct.pack(
        _HEADER_STRUCT, PROTOCOL_MAGIC, PROTOCOL_VERSION, msg_type, payload_length
    )


def encode_frame(
    msg_type: int, payload: bytes = b"", max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES
) -> bytes:
    """Serialize one frame (header + payload)."""
    return encode_header(msg_type, len(payload), max_payload) + payload


def parse_header(
    header: bytes, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES
) -> tuple[int, int]:
    """Validate a frame header; returns ``(msg_type, payload_length)``."""
    if len(header) != HEADER_SIZE:
        raise ProtocolError(f"frame header must be {HEADER_SIZE} bytes, got {len(header)}")
    magic, version, msg_type, length = struct.unpack(_HEADER_STRUCT, header)
    if magic != PROTOCOL_MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if length > max_payload:
        raise FrameTooLargeError(
            f"frame announces a {length}-byte payload, over the {max_payload}-byte limit"
        )
    return msg_type, length


def recv_exactly(sock: socket.socket, n_bytes: int) -> bytes | None:
    """Read exactly ``n_bytes`` from a socket.

    Returns ``None`` on a clean EOF before the first byte; raises
    :class:`ProtocolError` if the connection drops mid-read.  On blocking
    sockets the whole read is one ``MSG_WAITALL`` syscall — the kernel
    loops, so a multi-megabyte batch body arrives without per-chunk GIL
    round trips and with exactly one userspace allocation.
    """
    if n_bytes == 0:
        return b""
    # MSG_WAITALL needs a truly blocking socket: with a timeout set, Python
    # switches the fd to non-blocking and the flag returns partial reads.
    if _MSG_WAITALL and sock.gettimeout() is None:
        data = sock.recv(n_bytes, _MSG_WAITALL)
        if not data:
            return None
        if len(data) < n_bytes:
            raise ProtocolError(
                f"connection closed mid-frame ({len(data)} of {n_bytes} bytes)"
            )
        return data
    buffer = _recv_exactly_into(sock, n_bytes)
    return bytes(buffer) if buffer is not None else None


def _recv_exactly_into(sock: socket.socket, n_bytes: int) -> bytearray | None:
    """`recv_exactly` into a fresh ``bytearray`` (no trailing ``bytes`` copy)."""
    buffer = bytearray(n_bytes)
    view = memoryview(buffer)
    received = 0
    while received < n_bytes:
        n = sock.recv_into(view[received:])
        if n == 0:
            if received == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({received} of {n_bytes} bytes)"
            )
        received += n
    return buffer


class FrameAssembler:
    """Incremental frame parser for a non-blocking connection.

    Bytes arrive in arbitrary splits (a slow client may deliver one byte at
    a time, a fast one several frames per ``recv``); :meth:`feed` appends
    them and returns every frame completed so far.  The header is validated
    as soon as its 8 bytes are available — a bad magic/version or an
    oversized announced payload raises :class:`ProtocolError` *before* any
    payload is buffered, so a hostile peer cannot make the server allocate
    the announced size.
    """

    def __init__(self, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES) -> None:
        self.max_payload = max_payload
        self._buffer = bytearray()
        self._pending: tuple[int, int] | None = None  # validated (type, length)

    def __len__(self) -> int:
        """Bytes buffered but not yet returned as part of a complete frame."""
        return len(self._buffer)

    @property
    def mid_frame(self) -> bool:
        """True when the stream ends inside an unfinished frame."""
        return self._pending is not None or len(self._buffer) > 0

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Append received bytes; return the frames they completed, in order."""
        self._buffer += data
        frames: list[tuple[int, bytes]] = []
        offset = 0
        buffer = self._buffer
        while True:
            if self._pending is None:
                if len(buffer) - offset < HEADER_SIZE:
                    break
                self._pending = parse_header(
                    bytes(buffer[offset : offset + HEADER_SIZE]), self.max_payload
                )
                offset += HEADER_SIZE
            msg_type, length = self._pending
            if len(buffer) - offset < length:
                break
            frames.append((msg_type, bytes(buffer[offset : offset + length])))
            offset += length
            self._pending = None
        if offset:
            del buffer[:offset]
        return frames


def read_frame(
    sock: socket.socket,
    max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES,
    copy: bool = True,
) -> tuple[int, bytes] | None:
    """Read one complete frame from a socket.

    Returns ``(msg_type, payload)``, or ``None`` if the peer closed the
    connection cleanly at a frame boundary.  A close inside a frame, a bad
    magic/version, or an oversized payload raises :class:`ProtocolError`.

    ``copy=False`` may return the payload as a ``bytearray`` (the receive
    buffer itself) instead of ``bytes`` — one allocation, zero copies — for
    callers that only slice it up, like the pipelined batch client.
    """
    header = recv_exactly(sock, HEADER_SIZE)
    if header is None:
        return None
    msg_type, length = parse_header(header, max_payload)
    if length == 0:
        return msg_type, b""
    if copy or (_MSG_WAITALL and sock.gettimeout() is None):
        payload = recv_exactly(sock, length)
    else:
        payload = _recv_exactly_into(sock, length)
    if payload is None:
        raise ProtocolError("connection closed between frame header and payload")
    return msg_type, payload


def split_frames(data: bytes, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES) -> list[tuple[int, bytes]]:
    """Split a bytes-like object holding a concatenation of complete frames.

    Scanning happens over a ``memoryview`` so a multi-megabyte batch body
    is never re-sliced wholesale; each frame payload is copied out exactly
    once, into its own ``bytes``.
    """
    view = memoryview(data)
    frames: list[tuple[int, bytes]] = []
    offset = 0
    while offset < len(view):
        if offset + HEADER_SIZE > len(view):
            raise ProtocolError("trailing bytes shorter than a frame header")
        msg_type, length = parse_header(bytes(view[offset : offset + HEADER_SIZE]), max_payload)
        offset += HEADER_SIZE
        if offset + length > len(view):
            raise ProtocolError("frame payload truncated")
        frames.append((msg_type, bytes(view[offset : offset + length])))
        offset += length
    return frames


# -- request / response payloads ----------------------------------------------

_RECORD_REQ_NAME = "<H"  # name length; name bytes follow, then the group
_RECORD_REQ_GROUP = "<H"


@dataclass(frozen=True)
class RecordRequest:
    """One ``GET_RECORD``: a record name and the scan group to serve it at."""

    record_name: str
    scan_group: int


def pack_record_request(request: RecordRequest) -> bytes:
    name = request.record_name.encode("utf-8")
    return struct.pack(_RECORD_REQ_NAME, len(name)) + name + struct.pack(
        _RECORD_REQ_GROUP, request.scan_group
    )


def _unpack_record_request(payload: bytes, offset: int) -> tuple[RecordRequest, int]:
    if offset + 2 > len(payload):
        raise ProtocolError("record request truncated before the name length")
    (name_length,) = struct.unpack_from(_RECORD_REQ_NAME, payload, offset)
    offset += 2
    if offset + name_length + 2 > len(payload):
        raise ProtocolError("record request truncated inside the name or group")
    name = payload[offset : offset + name_length].decode("utf-8")
    offset += name_length
    (group,) = struct.unpack_from(_RECORD_REQ_GROUP, payload, offset)
    return RecordRequest(record_name=name, scan_group=group), offset + 2


def unpack_record_request(payload: bytes) -> RecordRequest:
    request, consumed = _unpack_record_request(payload, 0)
    if consumed != len(payload):
        raise ProtocolError(f"{len(payload) - consumed} trailing bytes after record request")
    return request


def pack_batch_request(requests: list[RecordRequest]) -> bytes:
    parts = [struct.pack("<H", len(requests))]
    parts.extend(pack_record_request(request) for request in requests)
    return b"".join(parts)


def unpack_batch_request(payload: bytes) -> list[RecordRequest]:
    if len(payload) < 2:
        raise ProtocolError("batch request shorter than its count field")
    (count,) = struct.unpack_from("<H", payload, 0)
    offset = 2
    requests: list[RecordRequest] = []
    for _ in range(count):
        request, offset = _unpack_record_request(payload, offset)
        requests.append(request)
    if offset != len(payload):
        raise ProtocolError(f"{len(payload) - offset} trailing bytes after batch request")
    return requests


def pack_batch_response(sub_frames: list[bytes]) -> bytes:
    """A batch response payload: count + concatenated complete sub-frames."""
    return struct.pack("<H", len(sub_frames)) + b"".join(sub_frames)


def unpack_batch_response(
    payload: bytes, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES
) -> list[tuple[int, bytes]]:
    if len(payload) < 2:
        raise ProtocolError("batch response shorter than its count field")
    (count,) = struct.unpack_from("<H", payload, 0)
    frames = split_frames(memoryview(payload)[2:], max_payload)
    if len(frames) != count:
        raise ProtocolError(f"batch response announced {count} frames, found {len(frames)}")
    return frames


def pack_error(code: int, message: str) -> bytes:
    text = message.encode("utf-8")
    return struct.pack("<H", code) + text


def unpack_error(payload: bytes) -> RemoteError:
    if len(payload) < 2:
        raise ProtocolError("error frame shorter than its code field")
    (code,) = struct.unpack_from("<H", payload, 0)
    return RemoteError(code, payload[2:].decode("utf-8", errors="replace"))


def error_frame(code: int, message: str) -> bytes:
    """A complete, ready-to-send ``ERROR`` frame."""
    return encode_frame(MSG_ERROR, pack_error(code, message))


def pack_json(obj: object) -> bytes:
    return json.dumps(obj).encode("utf-8")


def unpack_json(payload: bytes) -> dict:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable JSON payload: {exc}") from exc
