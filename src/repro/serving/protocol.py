"""Versioned length-prefixed binary wire format for the PCR record server.

Every message on the wire is one *frame*::

    +-------+---------+------+----------------+---------------+
    | magic | version | type | payload length |    payload    |
    | 2 B   | 1 B     | 1 B  | 4 B (LE)       | <length> B    |
    +-------+---------+------+----------------+---------------+

Requests carry structured binary payloads (``struct``-packed, names UTF-8);
responses carry either raw record bytes (``RECORD_DATA``), UTF-8 JSON
(``INDEX_DATA`` / ``STAT_DATA`` / ``META_DATA``), a concatenation of
complete sub-frames (``BATCH_DATA``, one per pipelined sub-request), or a
structured error frame (``ERROR``: error code + UTF-8 message).

The payload length is bounded (:data:`DEFAULT_MAX_PAYLOAD_BYTES`); both
sides reject oversized frames before allocating, so a corrupt or hostile
peer cannot force a multi-gigabyte read.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass

PROTOCOL_MAGIC = b"PR"
PROTOCOL_VERSION = 1

_HEADER_STRUCT = "<2sBBI"
HEADER_SIZE = struct.calcsize(_HEADER_STRUCT)

DEFAULT_MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

# -- message types ------------------------------------------------------------

MSG_GET_RECORD = 0x01
MSG_GET_INDEX = 0x02
MSG_STAT = 0x03
MSG_DATASET_META = 0x04
MSG_BATCH = 0x05

MSG_RECORD_DATA = 0x81
MSG_INDEX_DATA = 0x82
MSG_STAT_DATA = 0x83
MSG_META_DATA = 0x84
MSG_BATCH_DATA = 0x85
MSG_ERROR = 0xFF

REQUEST_TYPES = frozenset(
    {MSG_GET_RECORD, MSG_GET_INDEX, MSG_STAT, MSG_DATASET_META, MSG_BATCH}
)

# -- error codes --------------------------------------------------------------

ERR_MALFORMED = 1
ERR_UNSUPPORTED = 2
ERR_NOT_FOUND = 3
ERR_BAD_SCAN_GROUP = 4
ERR_OVERSIZED = 5
ERR_INTERNAL = 6

ERROR_NAMES = {
    ERR_MALFORMED: "malformed",
    ERR_UNSUPPORTED: "unsupported",
    ERR_NOT_FOUND: "not-found",
    ERR_BAD_SCAN_GROUP: "bad-scan-group",
    ERR_OVERSIZED: "oversized",
    ERR_INTERNAL: "internal",
}


class ProtocolError(Exception):
    """A malformed, truncated, or version-incompatible frame."""


class FrameTooLargeError(ProtocolError):
    """A frame whose payload exceeds the negotiated maximum."""


class RemoteError(Exception):
    """A structured error frame returned by the server."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[{ERROR_NAMES.get(code, code)}] {message}")
        self.code = code
        self.message = message


# -- frame encoding / decoding ------------------------------------------------


def encode_frame(
    msg_type: int, payload: bytes = b"", max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES
) -> bytes:
    """Serialize one frame (header + payload)."""
    if len(payload) > max_payload:
        raise FrameTooLargeError(
            f"payload of {len(payload)} bytes exceeds the {max_payload}-byte frame limit"
        )
    header = struct.pack(
        _HEADER_STRUCT, PROTOCOL_MAGIC, PROTOCOL_VERSION, msg_type, len(payload)
    )
    return header + payload


def parse_header(
    header: bytes, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES
) -> tuple[int, int]:
    """Validate a frame header; returns ``(msg_type, payload_length)``."""
    if len(header) != HEADER_SIZE:
        raise ProtocolError(f"frame header must be {HEADER_SIZE} bytes, got {len(header)}")
    magic, version, msg_type, length = struct.unpack(_HEADER_STRUCT, header)
    if magic != PROTOCOL_MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if length > max_payload:
        raise FrameTooLargeError(
            f"frame announces a {length}-byte payload, over the {max_payload}-byte limit"
        )
    return msg_type, length


def recv_exactly(sock: socket.socket, n_bytes: int) -> bytes | None:
    """Read exactly ``n_bytes`` from a socket.

    Returns ``None`` on a clean EOF before the first byte; raises
    :class:`ProtocolError` if the connection drops mid-read.
    """
    chunks: list[bytes] = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n_bytes - remaining} of {n_bytes} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


def read_frame(
    sock: socket.socket, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES
) -> tuple[int, bytes] | None:
    """Read one complete frame from a socket.

    Returns ``(msg_type, payload)``, or ``None`` if the peer closed the
    connection cleanly at a frame boundary.  A close inside a frame, a bad
    magic/version, or an oversized payload raises :class:`ProtocolError`.
    """
    header = recv_exactly(sock, HEADER_SIZE)
    if header is None:
        return None
    msg_type, length = parse_header(header, max_payload)
    if length == 0:
        return msg_type, b""
    payload = recv_exactly(sock, length)
    if payload is None:
        raise ProtocolError("connection closed between frame header and payload")
    return msg_type, payload


def split_frames(data: bytes, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES) -> list[tuple[int, bytes]]:
    """Split a byte string holding a concatenation of complete frames."""
    frames: list[tuple[int, bytes]] = []
    offset = 0
    while offset < len(data):
        if offset + HEADER_SIZE > len(data):
            raise ProtocolError("trailing bytes shorter than a frame header")
        msg_type, length = parse_header(data[offset : offset + HEADER_SIZE], max_payload)
        offset += HEADER_SIZE
        if offset + length > len(data):
            raise ProtocolError("frame payload truncated")
        frames.append((msg_type, data[offset : offset + length]))
        offset += length
    return frames


# -- request / response payloads ----------------------------------------------

_RECORD_REQ_NAME = "<H"  # name length; name bytes follow, then the group
_RECORD_REQ_GROUP = "<H"


@dataclass(frozen=True)
class RecordRequest:
    """One ``GET_RECORD``: a record name and the scan group to serve it at."""

    record_name: str
    scan_group: int


def pack_record_request(request: RecordRequest) -> bytes:
    name = request.record_name.encode("utf-8")
    return struct.pack(_RECORD_REQ_NAME, len(name)) + name + struct.pack(
        _RECORD_REQ_GROUP, request.scan_group
    )


def _unpack_record_request(payload: bytes, offset: int) -> tuple[RecordRequest, int]:
    if offset + 2 > len(payload):
        raise ProtocolError("record request truncated before the name length")
    (name_length,) = struct.unpack_from(_RECORD_REQ_NAME, payload, offset)
    offset += 2
    if offset + name_length + 2 > len(payload):
        raise ProtocolError("record request truncated inside the name or group")
    name = payload[offset : offset + name_length].decode("utf-8")
    offset += name_length
    (group,) = struct.unpack_from(_RECORD_REQ_GROUP, payload, offset)
    return RecordRequest(record_name=name, scan_group=group), offset + 2


def unpack_record_request(payload: bytes) -> RecordRequest:
    request, consumed = _unpack_record_request(payload, 0)
    if consumed != len(payload):
        raise ProtocolError(f"{len(payload) - consumed} trailing bytes after record request")
    return request


def pack_batch_request(requests: list[RecordRequest]) -> bytes:
    parts = [struct.pack("<H", len(requests))]
    parts.extend(pack_record_request(request) for request in requests)
    return b"".join(parts)


def unpack_batch_request(payload: bytes) -> list[RecordRequest]:
    if len(payload) < 2:
        raise ProtocolError("batch request shorter than its count field")
    (count,) = struct.unpack_from("<H", payload, 0)
    offset = 2
    requests: list[RecordRequest] = []
    for _ in range(count):
        request, offset = _unpack_record_request(payload, offset)
        requests.append(request)
    if offset != len(payload):
        raise ProtocolError(f"{len(payload) - offset} trailing bytes after batch request")
    return requests


def pack_batch_response(sub_frames: list[bytes]) -> bytes:
    """A batch response payload: count + concatenated complete sub-frames."""
    return struct.pack("<H", len(sub_frames)) + b"".join(sub_frames)


def unpack_batch_response(
    payload: bytes, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES
) -> list[tuple[int, bytes]]:
    if len(payload) < 2:
        raise ProtocolError("batch response shorter than its count field")
    (count,) = struct.unpack_from("<H", payload, 0)
    frames = split_frames(payload[2:], max_payload)
    if len(frames) != count:
        raise ProtocolError(f"batch response announced {count} frames, found {len(frames)}")
    return frames


def pack_error(code: int, message: str) -> bytes:
    text = message.encode("utf-8")
    return struct.pack("<H", code) + text


def unpack_error(payload: bytes) -> RemoteError:
    if len(payload) < 2:
        raise ProtocolError("error frame shorter than its code field")
    (code,) = struct.unpack_from("<H", payload, 0)
    return RemoteError(code, payload[2:].decode("utf-8", errors="replace"))


def error_frame(code: int, message: str) -> bytes:
    """A complete, ready-to-send ``ERROR`` frame."""
    return encode_frame(MSG_ERROR, pack_error(code, message))


def pack_json(obj: object) -> bytes:
    return json.dumps(obj).encode("utf-8")


def unpack_json(payload: bytes) -> dict:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable JSON payload: {exc}") from exc
