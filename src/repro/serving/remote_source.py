"""A network-backed record source with the read interface ``DataLoader`` uses.

``RemoteRecordSource`` mirrors the slice of the
:class:`~repro.core.dataset.PCRDataset` API the data-loading pipeline
consumes — ``record_names``, ``read_record``, ``__len__``, and the
switchable ``scan_group`` — but fetches record bytes from a
:class:`~repro.serving.server.PCRRecordServer` instead of the local
filesystem.  Decoding stays on the client: the server ships compressed
prefixes, so the network carries exactly the bytes the fidelity target
requires, and a dynamic tuning controller can call :meth:`set_scan_group`
mid-training to retarget every subsequent fetch (the over-the-network
version of the paper's lightweight quality switch).
"""

from __future__ import annotations

import threading

from repro.codecs.progressive import ProgressiveCodec
from repro.core.index import RecordIndex
from repro.core.reader import (
    PCRSample,
    ReadStats,
    assemble_samples,
    assemble_samples_batch,
    validate_scan_group,
)
from repro.obs import get_registry, get_tracer
from repro.serving.client import DEFAULT_POOL_SIZE, PCRClient


class RemoteRecordSource:
    """Reads PCR records from a record server; drop-in ``DataLoader`` source."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        scan_group: int | None = None,
        decode: bool = True,
        client: PCRClient | None = None,
        pool_size: int = DEFAULT_POOL_SIZE,
        decode_pool=None,
        socket_buffer_bytes: int | None = None,
    ) -> None:
        self.client = client if client is not None else PCRClient(
            host=host,
            port=port,
            pool_size=pool_size,
            socket_buffer_bytes=socket_buffer_bytes,
        )
        self._owns_client = client is None
        meta = self.client.dataset_meta()
        self.dataset_meta: dict = meta["dataset"]
        self.n_groups: int = int(meta["n_groups"])
        self._n_samples: int = int(meta["n_samples"])
        self._record_names: list[str] = list(meta["record_names"])
        self._scan_group = scan_group if scan_group is not None else self.n_groups
        self._validate_group(self._scan_group)
        self.decode_by_default = decode
        self._codec = ProgressiveCodec(quality=int(self.dataset_meta.get("quality", 90)))
        self._decode_pool = decode_pool
        self._indexes: dict[str, RecordIndex] = {}
        self._lock = threading.Lock()
        self.stats = ReadStats()
        get_registry().gauge("serving.client.scan_group").set(self._scan_group)

    def set_decode_pool(self, pool) -> None:
        """Decode fetched records through a :class:`~repro.codecs.parallel.DecodePool`.

        The network then feeds exactly the bytes the fidelity target needs
        while every local core chews on the entropy loops — pass ``None``
        to return to in-process decoding.  The source does not own the
        pool's lifecycle.
        """
        self._decode_pool = pool

    # -- dataset structure ---------------------------------------------------

    @property
    def record_names(self) -> list[str]:
        """Record names, as enumerated by the server."""
        return list(self._record_names)

    def __len__(self) -> int:
        return self._n_samples

    @property
    def n_samples(self) -> int:
        return self._n_samples

    def record_index(self, record_name: str) -> RecordIndex:
        """Offset index of one record, fetched once and cached."""
        with self._lock:
            index = self._indexes.get(record_name)
        if index is None:
            index = self.client.get_index(record_name)
            with self._lock:
                self._indexes[record_name] = index
        return index

    # -- quality control -----------------------------------------------------

    @property
    def scan_group(self) -> int:
        """The scan group used for subsequent record fetches."""
        return self._scan_group

    def set_scan_group(self, scan_group: int) -> None:
        """Retarget the fidelity of every subsequent fetch (no reconnect).

        Every actual switch is visible in snapshots: the current target is
        a ``serving.client.scan_group`` gauge and each mid-run change bumps
        ``serving.client.scan_group_switches_total`` on the default
        registry — so a controller-driven (or manual) fidelity change shows
        up next to the loader/stall metrics it affects.
        """
        self._validate_group(scan_group)
        changed = scan_group != self._scan_group
        self._scan_group = scan_group
        registry = get_registry()
        registry.gauge("serving.client.scan_group").set(scan_group)
        if changed:
            registry.counter("serving.client.scan_group_switches_total").inc()

    def _validate_group(self, scan_group: int) -> None:
        validate_scan_group(scan_group, self.n_groups)

    # -- reading -------------------------------------------------------------

    def read_record(self, record_name: str, decode: bool | None = None) -> list[PCRSample]:
        """Fetch and reassemble one record at the current scan group."""
        with get_tracer().span("loader.fetch", {"record": record_name}):
            data = self.client.get_record_bytes(record_name, self._scan_group)
        with self._lock:
            self.stats.bytes_read += len(data)
            self.stats.records_read += 1
        return self._assemble(data, decode)

    def read_record_batch(
        self, record_names: list[str], decode: bool | None = None
    ) -> list[list[PCRSample]]:
        """Pipelined fetch of several records in one server round trip.

        Decoding is minibatch-level too: every sample of every fetched
        record goes through one codec batch call, so pixel-stage work
        buffers are shared across the whole multi-record response.
        """
        group = self._scan_group
        with get_tracer().span("loader.fetch", {"records": len(record_names)}):
            blobs = self.client.get_record_batch([(name, group) for name in record_names])
        decode = self.decode_by_default if decode is None else decode
        out = assemble_samples_batch(
            blobs, self._codec, decode, decode_pool=self._decode_pool
        )
        with self._lock:
            self.stats.bytes_read += sum(len(data) for data in blobs)
            self.stats.records_read += len(blobs)
            if decode:
                self.stats.samples_decoded += sum(len(samples) for samples in out)
        return out

    def _assemble(self, data: bytes, decode: bool | None) -> list[PCRSample]:
        decode = self.decode_by_default if decode is None else decode
        samples = assemble_samples(data, self._codec, decode, decode_pool=self._decode_pool)
        if decode:
            with self._lock:
                self.stats.samples_decoded += len(samples)
        return samples

    def __iter__(self):
        for record_name in self._record_names:
            yield from self.read_record(record_name)

    # -- accounting ----------------------------------------------------------

    def bytes_for_group(self, record_name: str, scan_group: int) -> int:
        """Bytes the server ships for one record at ``scan_group``."""
        return self.record_index(record_name).bytes_for_group(scan_group)

    def epoch_bytes(self) -> int:
        """Bytes transferred per epoch at the current scan group."""
        return sum(
            self.bytes_for_group(name, self._scan_group) for name in self._record_names
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._owns_client:
            self.client.close()

    def __enter__(self) -> "RemoteRecordSource":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
