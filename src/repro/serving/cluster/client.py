"""Routing, failover-aware client for a sharded PCR serving cluster.

``ClusterClient`` speaks to every shard of a
:class:`~repro.serving.cluster.shard_map.ShardMap` through per-endpoint
pooled :class:`~repro.serving.client.PCRClient` instances and exposes the
same fetch surface a single ``PCRClient`` does — ``get_record_bytes``,
``get_record_batch``, ``get_index``, ``dataset_meta`` — so
``RemoteRecordSource`` (and therefore ``DataLoader``) can ride on top of a
cluster unchanged.

Routing and failure handling:

* every request is routed to the owning shard via the map's consistent
  hash; batches are partitioned per shard and pipelined as one ``BATCH``
  frame per shard, results re-assembled in request order;
* a connection-level failure (dead replica, restarting server) fails over
  to the next replica in the record's deterministic failover order; an
  endpoint that failed is put in a short cooldown so subsequent requests
  try its healthy siblings first;
* when every replica of a shard is down the client backs off
  (exponentially, ``backoff_seconds * 2**round``) and retries the whole
  replica set for ``failover_rounds`` rounds before surfacing
  ``ConnectionError`` — long enough to ride out a replica restart;
* server-side semantic errors (:class:`~repro.serving.protocol.RemoteError`
  — unknown record, bad scan group) propagate immediately: they would fail
  identically on every replica.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.index import RecordIndex
from repro.serving.client import PCRClient
from repro.serving.cluster.shard_map import ShardMap, ShardReplica

DEFAULT_POOL_SIZE = 2
DEFAULT_FAILOVER_ROUNDS = 3
DEFAULT_BACKOFF_SECONDS = 0.05
DEFAULT_COOLDOWN_SECONDS = 1.0


class ClusterClient:
    """Fetches records from whichever live replica of the owning shard."""

    def __init__(
        self,
        shard_map: ShardMap,
        pool_size: int = DEFAULT_POOL_SIZE,
        timeout: float = 30.0,
        failover_rounds: int = DEFAULT_FAILOVER_ROUNDS,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        cooldown_seconds: float = DEFAULT_COOLDOWN_SECONDS,
    ) -> None:
        if failover_rounds < 1:
            raise ValueError("failover_rounds must be at least 1")
        self.shard_map = shard_map
        self.pool_size = pool_size
        self.timeout = timeout
        self.failover_rounds = failover_rounds
        self.backoff_seconds = backoff_seconds
        self.cooldown_seconds = cooldown_seconds
        self._clients: dict[tuple[str, int], PCRClient] = {}
        self._down_until: dict[tuple[str, int], float] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.failovers = 0
        self.failed_endpoints: dict[str, int] = {}

    # -- endpoint plumbing -----------------------------------------------------

    def _client_for(self, replica: ShardReplica) -> PCRClient:
        if self._closed:
            raise RuntimeError("cluster client is closed")
        with self._lock:
            client = self._clients.get(replica.endpoint)
            if client is None:
                client = PCRClient(
                    host=replica.host,
                    port=replica.port,
                    pool_size=self.pool_size,
                    timeout=self.timeout,
                )
                self._clients[replica.endpoint] = client
        return client

    def _mark_down(self, replica: ShardReplica) -> None:
        key = f"{replica.host}:{replica.port}"
        with self._lock:
            self._down_until[replica.endpoint] = time.monotonic() + self.cooldown_seconds
            self.failovers += 1
            self.failed_endpoints[key] = self.failed_endpoints.get(key, 0) + 1

    def _mark_up(self, replica: ShardReplica) -> None:
        with self._lock:
            self._down_until.pop(replica.endpoint, None)

    def _order_by_health(self, replicas: list[ShardReplica]) -> list[ShardReplica]:
        """Healthy replicas first, preserving the deterministic order within
        each class; cooled-down replicas stay reachable as a last resort."""
        now = time.monotonic()
        with self._lock:
            down = {
                endpoint
                for endpoint, until in self._down_until.items()
                if until > now
            }
        healthy = [r for r in replicas if r.endpoint not in down]
        cooling = [r for r in replicas if r.endpoint in down]
        return healthy + cooling

    def _with_failover(self, replicas: list[ShardReplica], operation):
        """Run ``operation(client)`` against the first replica that answers."""
        last_error: Exception | None = None
        for round_index in range(self.failover_rounds):
            for replica in self._order_by_health(replicas):
                try:
                    client = self._client_for(replica)
                    result = operation(client)
                except (ConnectionError, OSError) as exc:
                    self._mark_down(replica)
                    last_error = exc
                    continue
                self._mark_up(replica)
                return result
            if round_index + 1 < self.failover_rounds:
                time.sleep(self.backoff_seconds * (2**round_index))
        shard = replicas[0].shard_id if replicas else "?"
        raise ConnectionError(
            f"every replica of {shard} failed after {self.failover_rounds} rounds: "
            f"{last_error}"
        ) from last_error

    # -- fetch surface (PCRClient-compatible) ----------------------------------

    def get_record_bytes(self, record_name: str, scan_group: int) -> bytes:
        """Fetch one record prefix from the owning shard, with failover."""
        owners = self.shard_map.owners(record_name)
        return self._with_failover(
            owners, lambda client: client.get_record_bytes(record_name, scan_group)
        )

    def get_record_batch(self, requests: list[tuple[str, int]]) -> list[bytes]:
        """Pipelined fetch across shards: one ``BATCH`` frame per shard.

        Shard sub-batches are issued concurrently (one thread per extra
        shard), so a cross-shard batch costs ~one round trip — the max over
        shards, not the sum — and sharding speeds batched reads up instead
        of serializing them.
        """
        if not requests:
            return []
        by_shard: dict[str, list[int]] = {}
        for position, (name, _) in enumerate(requests):
            by_shard.setdefault(self.shard_map.shard_for(name), []).append(position)
        results: list[bytes | None] = [None] * len(requests)
        errors: list[Exception] = []

        def fetch_shard(positions: list[int]) -> None:
            shard_requests = [requests[position] for position in positions]
            # The first record's failover order stands in for the sub-batch;
            # all records in it live on the same shard by construction.
            owners = self.shard_map.owners(shard_requests[0][0])
            try:
                blobs = self._with_failover(
                    owners,
                    lambda client, reqs=shard_requests: client.get_record_batch(reqs),
                )
            except Exception as exc:
                errors.append(exc)
                return
            for position, blob in zip(positions, blobs):
                results[position] = blob

        position_groups = list(by_shard.values())
        threads = [
            threading.Thread(target=fetch_shard, args=(positions,), daemon=True)
            for positions in position_groups[1:]
        ]
        for thread in threads:
            thread.start()
        fetch_shard(position_groups[0])  # the first shard on the calling thread
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]

    def get_index(self, record_name: str) -> RecordIndex:
        """Fetch one record's offset index from its owning shard."""
        owners = self.shard_map.owners(record_name)
        return self._with_failover(owners, lambda client: client.get_index(record_name))

    def report_telemetry(self, report: dict) -> dict:
        """Ship one loader-telemetry report to the fleet; returns the ack.

        A cluster controller publishes its hints to *every* replica, so any
        live replica can answer; the report goes to the first shard whose
        replica set responds, failing over shard by shard.
        """
        last_error: Exception | None = None
        for shard_id in self.shard_map.shard_ids:
            try:
                return self._with_failover(
                    self.shard_map.replicas(shard_id),
                    lambda client: client.report_telemetry(report),
                )
            except ConnectionError as exc:
                last_error = exc
        raise ConnectionError(
            f"no shard accepted the telemetry report: {last_error}"
        ) from last_error

    def dataset_meta(self) -> dict:
        """The whole-dataset view, re-aggregated from every shard's slice."""
        per_shard: dict[str, dict] = {}
        for shard_id in self.shard_map.shard_ids:
            per_shard[shard_id] = self._with_failover(
                self.shard_map.replicas(shard_id), lambda client: client.dataset_meta()
            )
        record_names: list[str] = []
        n_samples = 0
        n_groups_seen: set[int] = set()
        for meta in per_shard.values():
            record_names.extend(meta["record_names"])
            n_samples += int(meta["n_samples"])
            n_groups_seen.add(int(meta["n_groups"]))
        if len(n_groups_seen) != 1:
            raise ValueError(f"shards disagree on n_groups: {sorted(n_groups_seen)}")
        first = next(iter(per_shard.values()))
        dataset = dict(first["dataset"])
        dataset.pop("shard_id", None)
        return {
            "dataset": dataset,
            "n_groups": n_groups_seen.pop(),
            "n_samples": n_samples,
            "record_names": sorted(record_names),
            "protocol_version": first["protocol_version"],
            "max_payload_bytes": first["max_payload_bytes"],
            "n_shards": self.shard_map.n_shards,
        }

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """Cluster-wide view: per-replica server stats plus client counters.

        Replicas are scraped concurrently, so the sweep costs one slow
        replica's round trip (or timeout), not the fleet's sum; an
        unreachable replica is reported as ``{"reachable": False}``.
        """
        targets = [
            (shard_id, replica)
            for shard_id in self.shard_map.shard_ids
            for replica in self.shard_map.replicas(shard_id)
        ]

        def scrape(replica: ShardReplica) -> dict:
            try:
                stat = self._client_for(replica).stat()
                stat["reachable"] = True
            except (ConnectionError, OSError):
                stat = {"reachable": False}
            return stat

        scraped: list[dict] = []
        if targets:
            with ThreadPoolExecutor(max_workers=min(8, len(targets))) as pool:
                scraped = list(pool.map(lambda t: scrape(t[1]), targets))
        shards: dict[str, dict] = {}
        for (shard_id, replica), stat in zip(targets, scraped):
            shards.setdefault(shard_id, {"replicas": {}})["replicas"][
                str(replica.replica_index)
            ] = stat
        with self._lock:
            failovers = self.failovers
            failed = dict(self.failed_endpoints)
        return {
            "topology": self.shard_map.describe(),
            "shards": shards,
            "client": {"failovers": failovers, "failed_endpoints": failed},
        }

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
