"""Deterministic record-to-shard routing for the PCR serving cluster.

A :class:`ShardMap` describes a cluster topology — *N* shards, each backed
by *R* replica endpoints — and answers two questions any participant
(coordinator, client, benchmark) must agree on without coordination:

* which shard owns a record name, via a
  :class:`~repro.common.hashing.ConsistentHashRing` over the shard ids with
  virtual nodes, so adding or removing a shard moves only ~``1/N`` of the
  records;
* in which order a reader should try a shard's replicas, rotated
  deterministically per record so read load spreads across replicas while
  every client still walks the same failover sequence.

The map is a pure value object: recomputing the topology (scale out,
drop a shard) is just constructing a new ``ShardMap`` and comparing
ownership, which :meth:`moved_records` makes explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

from repro.common.hashing import DEFAULT_VNODE_FACTOR, ConsistentHashRing, stable_hash


@dataclass(frozen=True)
class ShardReplica:
    """One serving endpoint: a replica of one shard."""

    shard_id: str
    replica_index: int
    host: str
    port: int

    @property
    def endpoint(self) -> tuple[str, int]:
        return (self.host, self.port)


class ShardMap:
    """Consistent-hash assignment of record names to replicated shards."""

    def __init__(
        self,
        shards: Mapping[str, Sequence[tuple[str, int]]],
        vnode_factor: int = DEFAULT_VNODE_FACTOR,
    ) -> None:
        if not shards:
            raise ValueError("a shard map needs at least one shard")
        self._replicas: dict[str, list[ShardReplica]] = {}
        for shard_id, endpoints in shards.items():
            if not endpoints:
                raise ValueError(f"shard {shard_id!r} has no replica endpoints")
            self._replicas[shard_id] = [
                ShardReplica(shard_id=shard_id, replica_index=i, host=host, port=port)
                for i, (host, port) in enumerate(endpoints)
            ]
        self.vnode_factor = vnode_factor
        self._ring = ConsistentHashRing(self._replicas.keys(), vnode_factor=vnode_factor)

    # -- topology ------------------------------------------------------------

    @property
    def shard_ids(self) -> list[str]:
        return list(self._replicas)

    @property
    def n_shards(self) -> int:
        return len(self._replicas)

    def replicas(self, shard_id: str) -> list[ShardReplica]:
        """All replicas of one shard, in declaration order."""
        try:
            return list(self._replicas[shard_id])
        except KeyError as exc:
            raise KeyError(f"unknown shard {shard_id!r}") from exc

    def all_replicas(self) -> list[ShardReplica]:
        """Every endpoint in the cluster, shard-major."""
        return [replica for replicas in self._replicas.values() for replica in replicas]

    # -- routing ---------------------------------------------------------------

    def shard_for(self, record_name: str) -> str:
        """The shard owning ``record_name``."""
        return self._ring.node_for(record_name)

    def owners(self, record_name: str) -> list[ShardReplica]:
        """The owning shard's replicas in this record's failover order.

        The preferred (first) replica rotates with the record hash, so a
        cluster of readers spreads load across a shard's replicas instead of
        hammering replica 0 — yet every reader computes the same order.
        """
        replicas = self._replicas[self.shard_for(record_name)]
        offset = stable_hash(record_name) % len(replicas)
        return replicas[offset:] + replicas[:offset]

    def partition(self, record_names: Iterable[str]) -> dict[str, list[str]]:
        """Split record names by owning shard (every shard gets a key)."""
        assignment: dict[str, list[str]] = {shard_id: [] for shard_id in self._replicas}
        for name in record_names:
            assignment[self.shard_for(name)].append(name)
        return assignment

    # -- topology change --------------------------------------------------------

    def moved_records(self, other: "ShardMap", record_names: Iterable[str]) -> list[str]:
        """Records whose owning shard differs between this map and ``other``.

        With consistent hashing the moved fraction after adding one shard to
        ``N`` is ~``1/(N+1)`` — the property the determinism tests pin.
        """
        return [
            name for name in record_names if self.shard_for(name) != other.shard_for(name)
        ]

    def describe(self) -> dict:
        """A JSON-friendly topology summary (docs, stats, benchmarks)."""
        return {
            "n_shards": self.n_shards,
            "vnode_factor": self.vnode_factor,
            "shards": {
                shard_id: [list(replica.endpoint) for replica in replicas]
                for shard_id, replicas in self._replicas.items()
            },
        }


def default_shard_ids(n_shards: int) -> list[str]:
    """The canonical shard naming used by the coordinator: ``shard-0`` …"""
    if n_shards < 1:
        raise ValueError("a cluster needs at least one shard")
    return [f"shard-{index}" for index in range(n_shards)]
