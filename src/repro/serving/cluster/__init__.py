"""Sharded, replicated PCR serving: the multi-node layer over one server.

The single-node stack (:mod:`repro.serving`) serves one dataset directory
from one process.  This package scales it out:

:mod:`repro.serving.cluster.shard_map`
    ``ShardMap`` — deterministic record-to-shard routing by consistent
    hashing with virtual nodes, plus per-record replica failover order.

:mod:`repro.serving.cluster.views`
    ``ShardViewReader`` — a shard-filtered facade over ``PCRReader`` so a
    shard's server can only serve the records the map assigns it.

:mod:`repro.serving.cluster.coordinator`
    ``ClusterCoordinator`` — launches and supervises the ``N × R`` server
    fleet: kill/restart single replicas, drain/restart whole shards,
    aggregate stats.

:mod:`repro.serving.cluster.client`
    ``ClusterClient`` — routes requests to owning shards, fails over to
    replicas with backoff, re-aggregates the dataset view.

:mod:`repro.serving.cluster.remote_source`
    ``ShardedRemoteRecordSource`` — the ``DataLoader``-compatible source
    over the cluster client; a mid-epoch replica kill is absorbed by
    failover.
"""

from repro.serving.cluster.client import ClusterClient
from repro.serving.cluster.coordinator import ClusterCoordinator
from repro.serving.cluster.remote_source import ShardedRemoteRecordSource
from repro.serving.cluster.shard_map import ShardMap, ShardReplica, default_shard_ids
from repro.serving.cluster.views import ShardViewReader

__all__ = [
    "ClusterClient",
    "ClusterCoordinator",
    "ShardMap",
    "ShardReplica",
    "ShardViewReader",
    "ShardedRemoteRecordSource",
    "default_shard_ids",
]
