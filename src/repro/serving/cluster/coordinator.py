"""Launches and supervises a fleet of shard-scoped PCR record servers.

``ClusterCoordinator`` owns the whole serving topology of one dataset
directory: it partitions the record names across *N* shards with a
:class:`~repro.serving.cluster.shard_map.ShardMap`, launches ``N × R``
:class:`~repro.serving.server.PCRRecordServer` instances (one per shard
replica, each wrapping a :class:`ShardViewReader` so it can only serve its
own records), and republishes the map with the actually-bound ports so
clients can route without any further coordination.

Lifecycle verbs mirror what an operator needs mid-flight:

* :meth:`stop_replica` — kill one replica (the failure-injection hook the
  failover tests and benchmark use);
* :meth:`restart_replica` — bring a dead replica back on its original port,
  with a fresh reader and an empty cache;
* :meth:`drain_shard` / :meth:`restart_shard` — take a whole shard out of
  (and back into) service without touching the topology;
* :meth:`stats` — per-shard, per-replica cache/throughput counters plus
  cluster-wide aggregates, collected concurrently and tolerant of replicas
  dying mid-collection;
* :meth:`cluster_stats` — fleet-wide metrics registry snapshots scraped
  over the wire (``GET_METRICS``) from every replica concurrently and
  merged into one cluster-wide view; dead replicas are reported as
  ``down``, never raised.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.core.reader import PCRReader
from repro.obs import merge_snapshots
from repro.serving.client import PCRClient
from repro.serving.cluster.shard_map import ShardMap, ShardReplica, default_shard_ids
from repro.serving.cluster.views import ShardViewReader
from repro.serving.server import DEFAULT_CACHE_BYTES, PCRRecordServer

DEFAULT_N_SHARDS = 2
DEFAULT_N_REPLICAS = 1


class _ManagedReplica:
    """One shard replica: its server, its view, and its published endpoint."""

    def __init__(self, replica: ShardReplica, view: ShardViewReader, server: PCRRecordServer):
        self.replica = replica
        self.view = view
        self.server = server
        self.running = True
        self.restarts = 0


class ClusterCoordinator:
    """Runs a sharded, replicated PCR serving cluster over one dataset."""

    def __init__(
        self,
        dataset_dir: str | Path,
        n_shards: int = DEFAULT_N_SHARDS,
        n_replicas: int = DEFAULT_N_REPLICAS,
        host: str = "127.0.0.1",
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        vnode_factor: int | None = None,
        n_loops: int = 1,
        socket_buffer_bytes: int | None = None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("each shard needs at least one replica")
        self.dataset_dir = Path(dataset_dir)
        self.n_shards = n_shards
        self.n_replicas = n_replicas
        self.host = host
        self.cache_bytes = cache_bytes
        # Forwarded to every replica's event-loop server: extra loops per
        # replica and explicit SO_SNDBUF/SO_RCVBUF sizing for fat pipes.
        self.n_loops = n_loops
        self.socket_buffer_bytes = socket_buffer_bytes
        self._vnode_kwargs = {} if vnode_factor is None else {"vnode_factor": vnode_factor}
        self._replicas: dict[tuple[str, int], _ManagedReplica] = {}
        self._assignment: dict[str, list[str]] = {}
        self._shard_map: ShardMap | None = None
        self._controller = None
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ClusterCoordinator":
        """Partition the dataset and launch every shard replica."""
        if self._started:
            raise RuntimeError("cluster already started")
        shard_ids = default_shard_ids(self.n_shards)
        with PCRReader(self.dataset_dir, decode=False) as probe:
            record_names = probe.record_names
        # Placement depends only on the shard ids, so the routing map can be
        # computed before any port is bound; endpoints are published after.
        placement = ShardMap(
            {shard_id: [(self.host, 0)] for shard_id in shard_ids}, **self._vnode_kwargs
        )
        self._assignment = placement.partition(record_names)
        endpoints: dict[str, list[tuple[str, int]]] = {}
        try:
            for shard_id in shard_ids:
                endpoints[shard_id] = []
                for _ in range(self.n_replicas):
                    server, view = self._launch(shard_id)
                    endpoints[shard_id].append((self.host, server.port))
                    replica = ShardReplica(
                        shard_id=shard_id,
                        replica_index=len(endpoints[shard_id]) - 1,
                        host=self.host,
                        port=server.port,
                    )
                    self._replicas[(shard_id, replica.replica_index)] = _ManagedReplica(
                        replica, view, server
                    )
        except BaseException:
            self._stop_all()
            raise
        self._shard_map = ShardMap(endpoints, **self._vnode_kwargs)
        self._started = True
        return self

    def _launch(self, shard_id: str, port: int = 0) -> tuple[PCRRecordServer, ShardViewReader]:
        view = ShardViewReader(self.dataset_dir, self._assignment[shard_id], shard_id)
        try:
            server = PCRRecordServer(
                view,
                host=self.host,
                port=port,
                cache_bytes=self.cache_bytes,
                n_loops=self.n_loops,
                socket_buffer_bytes=self.socket_buffer_bytes,
            ).start()
        except BaseException:
            view.close()
            raise
        return server, view

    def stop(self) -> None:
        """Stop every replica and close every reader."""
        if self._controller is not None:
            self._controller.stop()
            self._controller = None
        self._stop_all()
        self._started = False

    def _stop_all(self) -> None:
        for managed in self._replicas.values():
            if managed.running:
                managed.server.stop()
                managed.running = False
            managed.view.close()
        self._replicas.clear()

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- topology --------------------------------------------------------------

    @property
    def shard_map(self) -> ShardMap:
        """The published routing map (real bound ports)."""
        if self._shard_map is None:
            raise RuntimeError("cluster not started")
        return self._shard_map

    def assignment(self, shard_id: str) -> list[str]:
        """Record names owned by one shard."""
        return list(self._assignment[shard_id])

    def live_replicas(self) -> list[ShardReplica]:
        return [m.replica for m in self._replicas.values() if m.running]

    # -- supervision -----------------------------------------------------------

    def _managed(self, shard_id: str, replica_index: int) -> _ManagedReplica:
        try:
            return self._replicas[(shard_id, replica_index)]
        except KeyError as exc:
            raise KeyError(f"unknown replica {shard_id}/{replica_index}") from exc

    def stop_replica(self, shard_id: str, replica_index: int) -> None:
        """Kill one replica (its port stays reserved in the shard map)."""
        managed = self._managed(shard_id, replica_index)
        if managed.running:
            managed.server.stop()
            managed.view.close()
            managed.running = False

    def restart_replica(self, shard_id: str, replica_index: int) -> None:
        """Relaunch a stopped replica on its original published port."""
        managed = self._managed(shard_id, replica_index)
        if managed.running:
            return
        server, view = self._launch(shard_id, port=managed.replica.port)
        managed.server = server
        managed.view = view
        managed.running = True
        managed.restarts += 1

    def drain_shard(self, shard_id: str) -> None:
        """Take every replica of one shard out of service."""
        for (owner, replica_index) in list(self._replicas):
            if owner == shard_id:
                self.stop_replica(shard_id, replica_index)

    def restart_shard(self, shard_id: str) -> None:
        """Bring a drained shard back, replica by replica."""
        for (owner, replica_index) in list(self._replicas):
            if owner == shard_id:
                self.restart_replica(shard_id, replica_index)

    # -- control loop ----------------------------------------------------------

    @property
    def controller(self):
        """The attached fleet-wide :class:`FidelityController` (or None)."""
        return self._controller

    def start_controller(
        self, policy=None, interval: float | None = None, auto_start: bool = True
    ):
        """Attach (and by default start) a fleet-wide fidelity controller.

        The controller merges telemetry across every live replica, publishes
        its hints to all of them (a client reports to whichever shard it
        reaches), and scrapes its fleet snapshots through the same
        ``GET_METRICS``/merge path :meth:`cluster_stats` uses.
        """
        if self._controller is not None:
            raise RuntimeError("controller already attached")
        from repro.control.controller import ClusterControlPlane, FidelityController

        kwargs = {} if interval is None else {"interval": interval}
        controller = FidelityController(ClusterControlPlane(self), policy, **kwargs)
        self._controller = controller
        if auto_start:
            controller.start()
        return controller

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """Per-replica serving stats plus cluster-wide aggregates.

        Replica stats are collected concurrently (one fleet-wide sweep
        costs the slowest replica, not the sum), and a replica that dies
        mid-collection is reported as ``{"running": False}`` with the error
        attached instead of failing the whole report.
        """
        items = sorted(self._replicas.items())

        def collect(managed: _ManagedReplica) -> dict:
            if not managed.running:
                return {"running": False}
            try:
                stat = managed.server.stats()
            except Exception as exc:
                return {"running": False, "error": f"{type(exc).__name__}: {exc}"}
            stat["running"] = True
            stat["restarts"] = managed.restarts
            return stat

        collected: list[dict] = []
        if items:
            with ThreadPoolExecutor(max_workers=min(8, len(items))) as pool:
                collected = list(pool.map(lambda kv: collect(kv[1]), items))
        shards: dict[str, dict] = {}
        total_requests = 0
        total_hits = 0
        total_lookups = 0
        for ((shard_id, replica_index), _), stat in zip(items, collected):
            entry = shards.setdefault(
                shard_id,
                {"n_records": len(self._assignment.get(shard_id, [])), "replicas": {}},
            )
            entry["replicas"][str(replica_index)] = stat
            if not stat.get("running"):
                continue
            total_requests += stat["n_requests"]
            cache = stat["cache"]
            total_hits += cache["exact_hits"] + cache["prefix_hits"]
            total_lookups += cache["exact_hits"] + cache["prefix_hits"] + cache["misses"]
        return {
            "topology": self.shard_map.describe() if self._shard_map else {},
            "shards": shards,
            "cluster": {
                "n_requests": total_requests,
                "cache_hit_rate": total_hits / total_lookups if total_lookups else 0.0,
                "live_replicas": len(self.live_replicas()),
                "total_replicas": len(self._replicas),
            },
        }

    def cluster_stats(self, timeout: float = 2.0) -> dict:
        """Fleet-wide metrics scraped over the wire and merged.

        Every replica in the topology is scraped concurrently with the
        ``GET_METRICS`` op — the same network path an external scraper
        would use, so the numbers reflect what the fleet actually serves.
        Per-replica registry snapshots are merged with
        :func:`repro.obs.merge_snapshots` into one cluster-wide snapshot.
        A replica that cannot be reached (stopped, crashed, mid-restart)
        is reported as ``{"status": "down"}`` with the error attached;
        a dead replica never fails the sweep.
        """
        items = sorted(self._replicas.items())

        def scrape(managed: _ManagedReplica) -> dict:
            replica = managed.replica
            try:
                with PCRClient(
                    host=replica.host,
                    port=replica.port,
                    pool_size=1,
                    retries=0,
                    timeout=timeout,
                ) as client:
                    report = client.metrics()
            except Exception as exc:
                return {"status": "down", "error": f"{type(exc).__name__}: {exc}"}
            report["status"] = "up"
            return report

        reports: list[dict] = []
        if items:
            with ThreadPoolExecutor(max_workers=min(8, len(items))) as pool:
                reports = list(pool.map(lambda kv: scrape(kv[1]), items))
        replicas: dict[str, dict] = {}
        live_registries: list[dict] = []
        for ((shard_id, replica_index), _), report in zip(items, reports):
            replicas[f"{shard_id}/{replica_index}"] = report
            if report["status"] == "up":
                live_registries.append(report["registry"])
        return {
            "replicas": replicas,
            "merged": merge_snapshots(live_registries),
            "live_replicas": len(live_registries),
            "total_replicas": len(items),
        }
