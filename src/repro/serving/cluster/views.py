"""A shard-filtered view over a PCR dataset directory.

Each shard's :class:`~repro.serving.server.PCRRecordServer` must serve only
the records its shard owns — a request routed to the wrong shard has to
fail loudly (``not-found`` on the wire) rather than silently serve bytes
the shard map says belong elsewhere.  ``ShardViewReader`` wraps a
:class:`~repro.core.reader.PCRReader` with exactly the reader surface the
record server consumes, restricted to an owned-name set.

The view recomputes ``n_samples`` from the owned records' indexes so a
shard's ``DATASET_META`` answer describes *its slice*; the cluster client
re-aggregates the slices into the whole-dataset view a ``DataLoader``
expects.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.errors import PCRError
from repro.core.index import RecordIndex
from repro.core.reader import PCRReader, ReadStats, validate_scan_group


class ShardViewReader:
    """Drop-in ``PCRReader`` facade restricted to one shard's records."""

    def __init__(
        self,
        dataset: str | Path | PCRReader,
        owned_record_names: list[str],
        shard_id: str,
    ) -> None:
        if isinstance(dataset, PCRReader):
            self._reader = dataset
            self._owns_reader = False
        else:
            self._reader = PCRReader(dataset, decode=False)
            self._owns_reader = True
        self.shard_id = shard_id
        available = set(self._reader.record_names)
        unknown = sorted(set(owned_record_names) - available)
        if unknown:
            raise PCRError(
                f"shard {shard_id!r} assigned records missing from the dataset: {unknown[:3]}"
            )
        self._owned = sorted(set(owned_record_names))
        self._owned_set = frozenset(self._owned)
        self._closed = False
        self._n_samples = sum(
            self._reader.record_index(name).n_samples for name in self._owned
        )

    # -- dataset structure (the server's DATASET_META surface) ----------------

    @property
    def directory(self) -> Path:
        return self._reader.directory

    @property
    def dataset_meta(self) -> dict:
        meta = dict(self._reader.dataset_meta)
        meta["shard_id"] = self.shard_id
        return meta

    @property
    def n_groups(self) -> int:
        return self._reader.n_groups

    @property
    def n_samples(self) -> int:
        return self._n_samples

    @property
    def record_names(self) -> list[str]:
        return list(self._owned)

    @property
    def stats(self) -> ReadStats:
        return self._reader.stats

    # -- reading ---------------------------------------------------------------

    def owns(self, record_name: str) -> bool:
        return record_name in self._owned_set

    def _require_owned(self, record_name: str) -> None:
        if record_name not in self._owned_set:
            raise PCRError(
                f"record {record_name!r} is not owned by shard {self.shard_id!r}"
            )

    def record_index(self, record_name: str) -> RecordIndex:
        self._require_owned(record_name)
        return self._reader.record_index(record_name)

    def bytes_for_group(self, record_name: str, scan_group: int) -> int:
        self._require_owned(record_name)
        return self._reader.bytes_for_group(record_name, scan_group)

    def read_record_bytes(self, record_name: str, scan_group: int) -> bytes:
        self._require_owned(record_name)
        return self._reader.read_record_bytes(record_name, scan_group)

    def _validate_group(self, scan_group: int) -> None:
        validate_scan_group(scan_group, self.n_groups)

    def close(self) -> None:
        """Close the underlying reader (idempotent: supervisors may retire a
        replica individually and again during full-cluster shutdown)."""
        if self._owns_reader and not self._closed:
            self._closed = True
            self._reader.close()
