"""A ``DataLoader`` record source backed by a sharded serving cluster.

``ShardedRemoteRecordSource`` is :class:`~repro.serving.remote_source.
RemoteRecordSource` with a :class:`~repro.serving.cluster.client.
ClusterClient` underneath: the cluster client exposes the same fetch
surface as a single-server ``PCRClient``, so every behaviour of the
single-server source — runtime-switchable scan group, client-side
minibatch decode (every record fetch runs through the codec batch API with
shared pixel-stage buffers), pipelined batch reads, byte accounting —
carries over verbatim, and a replica killed mid-epoch is absorbed by the
client's failover instead of surfacing to the training loop.
"""

from __future__ import annotations

from repro.serving.cluster.client import ClusterClient
from repro.serving.cluster.shard_map import ShardMap
from repro.serving.remote_source import RemoteRecordSource


class ShardedRemoteRecordSource(RemoteRecordSource):
    """Reads PCR records from a replicated shard fleet; ``DataLoader``-ready."""

    def __init__(
        self,
        shard_map: ShardMap | None = None,
        cluster_client: ClusterClient | None = None,
        scan_group: int | None = None,
        decode: bool = True,
        pool_size: int = 2,
        failover_rounds: int | None = None,
        decode_pool=None,
    ) -> None:
        if cluster_client is None:
            if shard_map is None:
                raise ValueError("provide a shard_map or a cluster_client")
            kwargs = {} if failover_rounds is None else {"failover_rounds": failover_rounds}
            cluster_client = ClusterClient(shard_map, pool_size=pool_size, **kwargs)
            owns_client = True
        else:
            owns_client = False
        try:
            super().__init__(
                client=cluster_client,
                scan_group=scan_group,
                decode=decode,
                decode_pool=decode_pool,
            )
        except BaseException:
            # The base __init__ fetches dataset_meta over the wire; if that
            # fails, a client we built must not leak its pooled sockets.
            if owns_client:
                cluster_client.close()
            raise
        # The base class saw a non-None client and assumed the caller owns
        # it; when we built the ClusterClient ourselves, we do.
        self._owns_client = owns_client

    @property
    def cluster_client(self) -> ClusterClient:
        return self.client  # type: ignore[return-value]

    def cluster_stats(self) -> dict:
        """Per-shard server stats plus the client's failover counters."""
        return self.cluster_client.stats()
