"""Connection-pooled client for :class:`~repro.serving.server.PCRRecordServer`.

The client keeps a small pool of TCP connections so concurrent callers
(e.g. ``DataLoader`` worker threads sharing one
:class:`~repro.serving.remote_source.RemoteRecordSource`) never serialize on
a single socket.  Batch fetches are pipelined into one ``BATCH`` frame —
one round trip for a whole minibatch worth of records.

Connections are re-established transparently: a send/receive that fails
with a connection error (stale pooled socket, server restart) is retried
once on a fresh connection before the error is surfaced.
"""

from __future__ import annotations

import queue
import socket
import threading

from repro.core.index import RecordIndex
from repro.serving import protocol
from repro.serving.protocol import (
    DEFAULT_MAX_PAYLOAD_BYTES,
    MSG_BATCH,
    MSG_BATCH_DATA,
    MSG_DATASET_META,
    MSG_ERROR,
    MSG_GET_INDEX,
    MSG_GET_METRICS,
    MSG_GET_RECORD,
    MSG_INDEX_DATA,
    MSG_META_DATA,
    MSG_METRICS_DATA,
    MSG_RECORD_DATA,
    MSG_REPORT_TELEMETRY,
    MSG_STAT,
    MSG_STAT_DATA,
    MSG_TELEMETRY_ACK,
    ProtocolError,
    RecordRequest,
    RemoteError,
)

DEFAULT_POOL_SIZE = 4
DEFAULT_TIMEOUT_SECONDS = 30.0


class PCRClient:
    """A pooled, reconnecting client for the PCR record server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        pool_size: int = DEFAULT_POOL_SIZE,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES,
        retries: int = 1,
        socket_buffer_bytes: int | None = None,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_payload = max_payload
        self.retries = retries
        self.socket_buffer_bytes = socket_buffer_bytes
        self._pool_size = pool_size
        self._pool: queue.LifoQueue[socket.socket] = queue.LifoQueue()
        self._n_open = 0
        self._lock = threading.Lock()
        self._closed = False

    # -- connection pool -----------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        # NODELAY on every client socket: a request frame (and a whole
        # pipelined BATCH) must hit the wire immediately instead of waiting
        # out Nagle against the server's delayed ACK.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.socket_buffer_bytes:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, self.socket_buffer_bytes
            )
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_SNDBUF, self.socket_buffer_bytes
            )
        return sock

    def _acquire(self) -> socket.socket:
        if self._closed:
            raise RuntimeError("client is closed")
        try:
            return self._pool.get_nowait()
        except queue.Empty:
            pass
        with self._lock:
            may_open = self._n_open < self._pool_size
            if may_open:
                self._n_open += 1
        if may_open:
            try:
                return self._connect()
            except BaseException:
                with self._lock:
                    self._n_open -= 1
                raise
        # Pool exhausted: wait for a connection to come back.
        return self._pool.get(timeout=self.timeout)

    def _release(self, sock: socket.socket) -> None:
        if self._closed:
            self._discard(sock)
        else:
            self._pool.put(sock)

    def _discard(self, sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass
        with self._lock:
            self._n_open -= 1

    def _purge_pool(self) -> None:
        """Drop every idle pooled connection.

        Called when a pooled socket turns out to be dead (server restart):
        its idle siblings were established against the same peer and share
        its fate, so discarding them all at once keeps one retry sufficient
        regardless of pool size.
        """
        while True:
            try:
                sock = self._pool.get_nowait()
            except queue.Empty:
                return
            self._discard(sock)

    # -- request plumbing ----------------------------------------------------

    def _request(
        self, msg_type: int, payload: bytes, expected_type: int, copy: bool = True
    ) -> bytes:
        """One round trip with retry-on-reconnect; returns the response payload."""
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                sock = self._acquire()
            except (OSError, queue.Empty) as exc:
                last_error = exc
                continue
            try:
                sock.sendall(protocol.encode_frame(msg_type, payload, self.max_payload))
                frame = protocol.read_frame(sock, self.max_payload, copy=copy)
                if frame is None:
                    raise ProtocolError("server closed the connection before responding")
            except (OSError, ProtocolError) as exc:
                # Stale pooled socket or a restarted server: drop this
                # connection and its idle siblings, then retry on a fresh one.
                self._discard(sock)
                self._purge_pool()
                last_error = exc
                continue
            self._release(sock)
            response_type, response_payload = frame
            if response_type == MSG_ERROR:
                raise protocol.unpack_error(response_payload)
            if response_type != expected_type:
                raise ProtocolError(
                    f"expected response type 0x{expected_type:02x}, "
                    f"got 0x{response_type:02x}"
                )
            return response_payload
        raise ConnectionError(
            f"request to {self.host}:{self.port} failed after "
            f"{self.retries + 1} attempts: {last_error}"
        ) from last_error

    # -- public API ----------------------------------------------------------

    def get_record_bytes(self, record_name: str, scan_group: int) -> bytes:
        """Fetch one record's byte prefix at ``scan_group``."""
        payload = protocol.pack_record_request(RecordRequest(record_name, scan_group))
        return self._request(MSG_GET_RECORD, payload, MSG_RECORD_DATA)

    def get_record_batch(self, requests: list[tuple[str, int]]) -> list[bytes]:
        """Pipelined fetch: many ``(record_name, scan_group)`` in one round trip.

        All sub-requests are packed into one ``BATCH`` frame and written in
        a single buffered send (no per-record round trips, no partial
        writes interleaving with Nagle), and the response body is sliced
        per record without re-copying the whole payload.

        Raises :class:`RemoteError` if any sub-request failed (the error
        message names the failing record).
        """
        if not requests:
            return []
        payload = protocol.pack_batch_request(
            [RecordRequest(name, group) for name, group in requests]
        )
        # copy=False: the multi-megabyte batch body stays in its receive
        # buffer; each record is sliced out of it exactly once below.
        body = self._request(MSG_BATCH, payload, MSG_BATCH_DATA, copy=False)
        frames = protocol.unpack_batch_response(body, self.max_payload)
        results: list[bytes] = []
        for (name, _), (frame_type, frame_payload) in zip(requests, frames):
            if frame_type == MSG_ERROR:
                error = protocol.unpack_error(frame_payload)
                raise RemoteError(error.code, f"{name}: {error.message}")
            if frame_type != MSG_RECORD_DATA:
                raise ProtocolError(f"unexpected sub-frame type 0x{frame_type:02x}")
            results.append(frame_payload)
        return results

    def get_index(self, record_name: str) -> RecordIndex:
        """Fetch the offset index of one record."""
        payload = protocol.pack_record_request(RecordRequest(record_name, 0))
        body = self._request(MSG_GET_INDEX, payload, MSG_INDEX_DATA)
        return RecordIndex.from_json(body.decode("utf-8"))

    def stat(self) -> dict:
        """Fetch the server's live statistics (cache counters included)."""
        return protocol.unpack_json(self._request(MSG_STAT, b"", MSG_STAT_DATA))

    def metrics(self) -> dict:
        """Scrape the server's metrics registry (``GET_METRICS``).

        Returns ``{"address", "pid", "metrics_enabled", "registry"}`` where
        ``registry`` is a :meth:`~repro.obs.MetricsRegistry.snapshot` dict —
        mergeable across replicas with :func:`repro.obs.merge_snapshots`.
        """
        return protocol.unpack_json(
            self._request(MSG_GET_METRICS, b"", MSG_METRICS_DATA)
        )

    def report_telemetry(self, report: dict) -> dict:
        """Ship one loader-telemetry report; returns the server's ack.

        The ack is ``{"controller_active": bool, "hint": {...} | None}`` —
        when a fidelity controller is steering this client, ``hint`` carries
        its current scan-group recommendation and rationale (see
        :mod:`repro.control.telemetry`).
        """
        return protocol.unpack_json(
            self._request(
                MSG_REPORT_TELEMETRY, protocol.pack_json(report), MSG_TELEMETRY_ACK
            )
        )

    def dataset_meta(self) -> dict:
        """Fetch dataset-level metadata: groups, sample count, record names."""
        return protocol.unpack_json(self._request(MSG_DATASET_META, b"", MSG_META_DATA))

    def close(self) -> None:
        """Close every pooled connection."""
        self._closed = True
        while True:
            try:
                sock = self._pool.get_nowait()
            except queue.Empty:
                break
            self._discard(sock)

    def __enter__(self) -> "PCRClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
