"""Cluster-scale time-to-accuracy simulation (Figures 4, 5, 6, 9).

Training ImageNet-scale models is out of reach for a pure-Python offline
reproduction, so the wall-clock side of the end-to-end figures is produced
by a calibrated simulator:

* the *rate* of each configuration comes from the queueing model of
  Appendix A.2 — ``min(compute rate, storage bandwidth / mean bytes per
  image)`` — using the paper's published cluster numbers (10 workers, one
  TitanX each, 405 img/s for ResNet-18 and 760 img/s for ShuffleNetv2,
  400+ MiB/s of aggregate storage bandwidth);
* the *statistical efficiency* of each scan group (accuracy per epoch) comes
  either from a measured accuracy curve (trained with
  :mod:`repro.training` on a synthetic dataset) or from a parametric
  saturating curve whose final accuracy is degraded according to the scan
  group's MSSIM, following the Figure 7 regression.

The simulator therefore reproduces the *shape* of the paper's results — who
wins, by what factor, and where the gains saturate — rather than absolute
ImageNet accuracy.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.simulate.throughput import PipelineModel

MiB = 1024 * 1024

#: Published per-GPU training rates (images/second, mixed precision).
RESNET18_IMAGES_PER_SECOND = 445.0
SHUFFLENETV2_IMAGES_PER_SECOND = 750.0

AccuracyCurve = Callable[[int], float]


@dataclass(frozen=True)
class ClusterSpec:
    """The paper's training cluster (§A.3), parameterized."""

    n_workers: int = 10
    per_worker_images_per_second: float = RESNET18_IMAGES_PER_SECOND
    storage_bandwidth_bytes_per_second: float = 400 * MiB
    images_per_record: int = 1024
    record_setup_seconds: float = 10e-3

    @property
    def compute_images_per_second(self) -> float:
        """Aggregate compute-bound rate across workers."""
        return self.n_workers * self.per_worker_images_per_second

    def pipeline(self) -> PipelineModel:
        """The queueing-model view of this cluster."""
        return PipelineModel(
            storage_bandwidth_bytes_per_second=self.storage_bandwidth_bytes_per_second,
            compute_images_per_second=self.compute_images_per_second,
            images_per_record=self.images_per_record,
            record_setup_seconds=self.record_setup_seconds,
        )

    @classmethod
    def paper_resnet(cls) -> "ClusterSpec":
        """The ResNet-18 configuration of the paper's cluster."""
        return cls(per_worker_images_per_second=RESNET18_IMAGES_PER_SECOND)

    @classmethod
    def paper_shufflenet(cls) -> "ClusterSpec":
        """The ShuffleNetv2 configuration of the paper's cluster."""
        return cls(per_worker_images_per_second=SHUFFLENETV2_IMAGES_PER_SECOND)


@dataclass(frozen=True)
class SimulatedPoint:
    """One evaluated epoch of a simulated run."""

    epoch: int
    wall_seconds: float
    test_accuracy: float


@dataclass
class SimulatedRun:
    """A simulated training run for one scan group."""

    scan_group: int
    mean_image_bytes: float
    images_per_second: float
    epoch_seconds: float
    points: list[SimulatedPoint] = field(default_factory=list)

    def time_to_accuracy(self, target: float) -> float | None:
        """Wall seconds until the run first reaches ``target`` accuracy."""
        for point in self.points:
            if point.test_accuracy >= target:
                return point.wall_seconds
        return None

    @property
    def final_accuracy(self) -> float:
        """Accuracy at the end of the run."""
        return self.points[-1].test_accuracy if self.points else 0.0


def saturating_accuracy_curve(
    final_accuracy: float, time_constant_epochs: float = 12.0, floor: float = 0.0
) -> AccuracyCurve:
    """An exponential-saturation accuracy-vs-epoch curve."""

    def curve(epoch: int) -> float:
        return floor + (final_accuracy - floor) * (1.0 - np.exp(-(epoch + 1) / time_constant_epochs))

    return curve


def mssim_degraded_accuracy(
    baseline_accuracy: float, mssim: float, sensitivity: float = 1.0
) -> float:
    """Final accuracy predicted from MSSIM via the Figure 7 linear relationship.

    A scan group with MSSIM 1.0 keeps the baseline accuracy; lower MSSIM
    loses accuracy proportionally, scaled by ``sensitivity`` (fine-grained
    tasks are more sensitive; coarse/binary tasks less so).
    """
    degradation = sensitivity * (1.0 - mssim)
    return max(0.0, baseline_accuracy * (1.0 - degradation))


class TrainingSimulator:
    """Simulates time-to-accuracy runs across scan groups."""

    def __init__(
        self,
        cluster: ClusterSpec,
        n_train_images: int,
        eval_every_epochs: int = 1,
    ) -> None:
        self.cluster = cluster
        self.n_train_images = n_train_images
        self.eval_every_epochs = max(1, eval_every_epochs)
        self._pipeline = cluster.pipeline()

    def epoch_seconds(self, mean_image_bytes: float) -> float:
        """Wall time of one epoch at the given mean encoded image size."""
        return self._pipeline.epoch_seconds(mean_image_bytes, self.n_train_images)

    def images_per_second(self, mean_image_bytes: float) -> float:
        """End-to-end image rate at the given mean encoded image size."""
        return self._pipeline.end_to_end_rate(mean_image_bytes)

    def simulate(
        self,
        scan_group: int,
        mean_image_bytes: float,
        accuracy_curve: AccuracyCurve,
        n_epochs: int,
    ) -> SimulatedRun:
        """Simulate one run of ``n_epochs`` epochs for a scan group."""
        epoch_seconds = self.epoch_seconds(mean_image_bytes)
        run = SimulatedRun(
            scan_group=scan_group,
            mean_image_bytes=mean_image_bytes,
            images_per_second=self.images_per_second(mean_image_bytes),
            epoch_seconds=epoch_seconds,
        )
        for epoch in range(n_epochs):
            if (epoch + 1) % self.eval_every_epochs == 0 or epoch == n_epochs - 1:
                run.points.append(
                    SimulatedPoint(
                        epoch=epoch,
                        wall_seconds=(epoch + 1) * epoch_seconds,
                        test_accuracy=float(accuracy_curve(epoch)),
                    )
                )
        return run

    def compare_scan_groups(
        self,
        group_mean_bytes: dict[int, float],
        group_final_accuracy: dict[int, float],
        n_epochs: int,
        time_constant_epochs: float = 12.0,
    ) -> dict[int, SimulatedRun]:
        """Simulate every scan group with saturating accuracy curves.

        Returns a mapping scan group -> simulated run; the baseline is the
        highest scan group present (full quality).
        """
        runs: dict[int, SimulatedRun] = {}
        for group, mean_bytes in sorted(group_mean_bytes.items()):
            curve = saturating_accuracy_curve(
                group_final_accuracy[group], time_constant_epochs=time_constant_epochs
            )
            runs[group] = self.simulate(group, mean_bytes, curve, n_epochs)
        return runs

    def speedup_table(
        self, group_mean_bytes: dict[int, float]
    ) -> dict[int, float]:
        """End-to-end speedup of every scan group relative to the baseline group."""
        baseline_group = max(group_mean_bytes)
        baseline_bytes = group_mean_bytes[baseline_group]
        return {
            group: self._pipeline.speedup_over(baseline_bytes, mean_bytes)
            for group, mean_bytes in sorted(group_mean_bytes.items())
        }
