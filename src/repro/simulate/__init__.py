"""Analytical throughput and time-to-accuracy models (Appendix A.2).

* :mod:`repro.simulate.throughput` — the queueing-theory lemmas: expected
  read time, loader throughput, speedup ratios, and the min(compute, I/O)
  pipeline bound.
* :mod:`repro.simulate.roofline` — the data-intensity roofline of Figure 14.
* :mod:`repro.simulate.trainer_sim` — the cluster-scale time-to-accuracy
  simulator used to regenerate Figures 4–6 at the paper's hardware rates.
"""

from repro.simulate.roofline import RooflineModel
from repro.simulate.throughput import (
    PipelineModel,
    expected_read_seconds,
    loader_throughput,
    pipeline_throughput,
    speedup,
)
from repro.simulate.trainer_sim import ClusterSpec, TrainingSimulator

__all__ = [
    "ClusterSpec",
    "PipelineModel",
    "RooflineModel",
    "TrainingSimulator",
    "expected_read_seconds",
    "loader_throughput",
    "pipeline_throughput",
    "speedup",
]
