"""The data-intensity roofline of Figure 14.

The paper adapts the Roofline model: instead of plotting compute intensity,
the x-axis is *bytes per image* (the data intensity a scan group induces) and
the attainable image rate is the minimum of the compute roof and the
bandwidth-limited slope ``W / bytes-per-image``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RooflineModel:
    """A compute roof plus a storage-bandwidth slope."""

    compute_images_per_second: float
    storage_bandwidth_bytes_per_second: float

    def attainable_rate(self, bytes_per_image: float | np.ndarray) -> np.ndarray:
        """Attainable images/second at a given data intensity."""
        bytes_per_image = np.asarray(bytes_per_image, dtype=np.float64)
        bandwidth_rate = self.storage_bandwidth_bytes_per_second / bytes_per_image
        return np.minimum(self.compute_images_per_second, bandwidth_rate)

    def ridge_point_bytes(self) -> float:
        """Bytes/image at which the pipeline transitions from I/O to compute bound."""
        return self.storage_bandwidth_bytes_per_second / self.compute_images_per_second

    def sweep(
        self, min_bytes: float, max_bytes: float, n_points: int = 64
    ) -> tuple[np.ndarray, np.ndarray]:
        """A log-spaced sweep of data intensity and the attainable rate."""
        intensities = np.logspace(np.log10(min_bytes), np.log10(max_bytes), n_points)
        return intensities, self.attainable_rate(intensities)

    def annotate_scan_groups(
        self, scan_mean_bytes: dict[int, float]
    ) -> dict[int, tuple[float, float, str]]:
        """Place scan groups on the roofline.

        Returns ``{scan: (bytes_per_image, attainable_rate, regime)}`` where
        regime is ``"io-bound"`` or ``"compute-bound"``.
        """
        ridge = self.ridge_point_bytes()
        placements: dict[int, tuple[float, float, str]] = {}
        for scan, mean_bytes in scan_mean_bytes.items():
            rate = float(self.attainable_rate(mean_bytes))
            regime = "io-bound" if mean_bytes > ridge else "compute-bound"
            placements[scan] = (mean_bytes, rate, regime)
        return placements
