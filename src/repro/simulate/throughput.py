"""Queueing-theory throughput model (Lemmas A.1–A.5, Theorem A.5).

The data loader is a closed system continuously fetching records; the
compute unit is an open system fed by the loader.  The results used
throughout the paper:

* **Lemma A.1** — the expected time to read a record is proportional to the
  mean record size over the device bandwidth (plus a constant setup cost).
* **Lemma A.2** — by Little's law, loader image throughput is
  ``W / E[s(x)]`` for bandwidth ``W`` and mean image size ``E[s(x)]``.
* **Lemma A.3** — the loader speedup of scan group *g* is the ratio of mean
  image sizes ``E[s(x)] / E[s(x, g)]``.
* **Lemma A.4** — end-to-end throughput is ``min(X_compute, X_loader)``.
* **Theorem A.5** — for I/O-bound pipelines the achievable speedup equals
  the data-reduction ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def expected_read_seconds(
    mean_image_bytes: float,
    bandwidth_bytes_per_second: float,
    images_per_record: int = 1,
    setup_seconds: float = 0.0,
) -> float:
    """Lemma A.1: expected time to read one record of ``images_per_record`` images."""
    if bandwidth_bytes_per_second <= 0:
        raise ValueError("bandwidth must be positive")
    return images_per_record * mean_image_bytes / bandwidth_bytes_per_second + setup_seconds


def loader_throughput(
    mean_image_bytes: float, bandwidth_bytes_per_second: float
) -> float:
    """Lemma A.2: loader throughput in images/second at a given mean image size."""
    if mean_image_bytes <= 0:
        raise ValueError("mean_image_bytes must be positive")
    return bandwidth_bytes_per_second / mean_image_bytes


def speedup(mean_baseline_bytes: float, mean_group_bytes: float) -> float:
    """Lemma A.3 / Theorem A.5: loader speedup of a scan group over the baseline."""
    if mean_group_bytes <= 0:
        raise ValueError("mean_group_bytes must be positive")
    return mean_baseline_bytes / mean_group_bytes


def pipeline_throughput(compute_images_per_second: float, loader_images_per_second: float) -> float:
    """Lemma A.4: the end-to-end rate is bounded by the slower stage."""
    return min(compute_images_per_second, loader_images_per_second)


@dataclass(frozen=True)
class PipelineModel:
    """A configured training pipeline: storage bandwidth + compute rate."""

    storage_bandwidth_bytes_per_second: float
    compute_images_per_second: float
    images_per_record: int = 64
    record_setup_seconds: float = 0.0

    def loader_rate(self, mean_image_bytes: float) -> float:
        """Loader throughput at a mean image size (images/second)."""
        record_seconds = expected_read_seconds(
            mean_image_bytes,
            self.storage_bandwidth_bytes_per_second,
            images_per_record=self.images_per_record,
            setup_seconds=self.record_setup_seconds,
        )
        return self.images_per_record / record_seconds

    def end_to_end_rate(self, mean_image_bytes: float) -> float:
        """Pipeline throughput (images/second) at a mean image size."""
        return pipeline_throughput(self.compute_images_per_second, self.loader_rate(mean_image_bytes))

    def is_io_bound(self, mean_image_bytes: float) -> bool:
        """True if the loader, not the compute unit, limits throughput."""
        return self.loader_rate(mean_image_bytes) < self.compute_images_per_second

    def epoch_seconds(self, mean_image_bytes: float, n_images: int) -> float:
        """Wall time of one epoch over ``n_images`` images."""
        return n_images / self.end_to_end_rate(mean_image_bytes)

    def speedup_over(self, baseline_image_bytes: float, group_image_bytes: float) -> float:
        """End-to-end speedup of a scan group over the baseline (capped by compute)."""
        baseline_rate = self.end_to_end_rate(baseline_image_bytes)
        group_rate = self.end_to_end_rate(group_image_bytes)
        return group_rate / baseline_rate

    def crossover_image_bytes(self) -> float:
        """Mean image size below which the pipeline becomes compute bound."""
        return self.storage_bandwidth_bytes_per_second / self.compute_images_per_second


def predicted_throughput_by_scan(
    scan_mean_bytes: dict[int, float],
    full_quality_rate_images_per_second: float,
) -> dict[int, float]:
    """Figure 18 (middle): extrapolate per-scan throughput from size ratios.

    The predicted rate at scan *g* equals the measured full-quality rate
    scaled by ``size(full) / size(g)``.
    """
    if not scan_mean_bytes:
        return {}
    full_scan = max(scan_mean_bytes)
    full_bytes = scan_mean_bytes[full_scan]
    return {
        scan: full_quality_rate_images_per_second * (full_bytes / size)
        for scan, size in scan_mean_bytes.items()
    }


def empirical_image_size_distribution(sizes: list[int]) -> dict[str, float]:
    """Summary statistics of an encoded-size distribution (Figure 12)."""
    array = np.asarray(sizes, dtype=np.float64)
    if array.size == 0:
        raise ValueError("sizes must be non-empty")
    return {
        "mean": float(array.mean()),
        "median": float(np.median(array)),
        "p05": float(np.percentile(array, 5)),
        "p95": float(np.percentile(array, 95)),
        "min": float(array.min()),
        "max": float(array.max()),
    }
