"""Static scan-group schedules (passive dynamic tuning, §A.6.2).

A schedule maps the epoch number to a scan group without any feedback from
the model.  The paper mentions cyclic and decreasing schedules as simple
alternatives to active controllers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConstantSchedule:
    """Always the same scan group."""

    group: int

    def group_for_epoch(self, epoch: int) -> int:
        """Scan group to use during ``epoch``."""
        del epoch
        return self.group


@dataclass(frozen=True)
class StepSchedule:
    """Switch groups at fixed epoch milestones.

    ``milestones=[(0, 10), (5, 2), (20, 5)]`` trains at group 10 from epoch 0,
    group 2 from epoch 5, and group 5 from epoch 20 — the "warm up at full
    quality, drop down, come back up" pattern used by the CelebA dynamic runs.
    """

    milestones: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.milestones:
            raise ValueError("milestones must be non-empty")
        epochs = [epoch for epoch, _ in self.milestones]
        if epochs != sorted(epochs):
            raise ValueError("milestone epochs must be non-decreasing")

    def group_for_epoch(self, epoch: int) -> int:
        """Scan group to use during ``epoch``."""
        current = self.milestones[0][1]
        for milestone_epoch, group in self.milestones:
            if epoch >= milestone_epoch:
                current = group
        return current


@dataclass(frozen=True)
class CyclicSchedule:
    """Cycle through a list of scan groups with a fixed period."""

    groups: tuple[int, ...]
    epochs_per_group: int = 1

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("groups must be non-empty")
        if self.epochs_per_group < 1:
            raise ValueError("epochs_per_group must be >= 1")

    def group_for_epoch(self, epoch: int) -> int:
        """Scan group to use during ``epoch``."""
        index = (epoch // self.epochs_per_group) % len(self.groups)
        return self.groups[index]
