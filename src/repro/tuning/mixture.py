"""Mixture training over scan groups (§A.6.3).

Rather than a hard choice of one scan group, a mixture policy assigns a
probability to every group and each record read draws its group from that
distribution.  The paper's policies put weight 10 or 100 on the selected
group and weight 1 on the rest (~50% and ~85% selection probability); a
weight of 1 everywhere recovers uniform mixing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MixturePolicy:
    """A probability simplex over scan groups ``1..n_groups``."""

    probabilities: tuple[float, ...]

    def __post_init__(self) -> None:
        total = sum(self.probabilities)
        if not self.probabilities or abs(total - 1.0) > 1e-9:
            raise ValueError("probabilities must be non-empty and sum to 1")
        if any(p < 0 for p in self.probabilities):
            raise ValueError("probabilities must be non-negative")

    @property
    def n_groups(self) -> int:
        """Number of scan groups covered."""
        return len(self.probabilities)

    @classmethod
    def point_mass(cls, selected_group: int, n_groups: int) -> "MixturePolicy":
        """Standard non-mixed selection of one group."""
        probabilities = [0.0] * n_groups
        probabilities[selected_group - 1] = 1.0
        return cls(tuple(probabilities))

    @classmethod
    def weighted(
        cls, selected_group: int, n_groups: int, selected_weight: float = 10.0
    ) -> "MixturePolicy":
        """The paper's mixture: weight ``selected_weight`` on the chosen group, 1 elsewhere.

        ``selected_weight=10`` selects the chosen group ~50% of the time for
        10 groups; ``selected_weight=100`` selects it ~85–92% of the time.
        """
        if not 1 <= selected_group <= n_groups:
            raise ValueError("selected_group out of range")
        weights = np.ones(n_groups)
        weights[selected_group - 1] = selected_weight
        probabilities = weights / weights.sum()
        return cls(tuple(float(p) for p in probabilities))

    @classmethod
    def uniform(cls, n_groups: int) -> "MixturePolicy":
        """Uniform mixing across all groups."""
        return cls(tuple([1.0 / n_groups] * n_groups))

    def sample_group(self, rng: np.random.Generator) -> int:
        """Draw a scan group (1-based)."""
        return int(rng.choice(self.n_groups, p=self.probabilities)) + 1

    def expected_bytes(self, mean_bytes_by_group: dict[int, float]) -> float:
        """Expected bytes read per record under this mixture.

        This is the "fine-grained control over bandwidth" property: the
        expected bandwidth is a continuous function of the mixture weights.
        """
        return sum(
            probability * mean_bytes_by_group[group + 1]
            for group, probability in enumerate(self.probabilities)
        )

    def selection_probability(self, group: int) -> float:
        """Probability assigned to a scan group."""
        return self.probabilities[group - 1]
