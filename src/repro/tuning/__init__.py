"""Scan-group selection: static diagnostics and dynamic (runtime) autotuning.

* :mod:`repro.tuning.static` — pick a scan group before training from MSSIM
  measurements and the bandwidth model (§A.6.1).
* :mod:`repro.tuning.dynamic` — runtime controllers: the loss-plateau
  checkpoint/rollback heuristic of Section 4.5 and the gradient-cosine
  controller of §A.6.2.
* :mod:`repro.tuning.mixture` — probability simplexes over scan groups
  ("mixture training", §A.6.3).
* :mod:`repro.tuning.schedule` — static scan schedules (cyclic, step).
"""

from repro.tuning.dynamic import GradientCosineController, LossPlateauController
from repro.tuning.mixture import MixturePolicy
from repro.tuning.schedule import ConstantSchedule, CyclicSchedule, StepSchedule
from repro.tuning.static import StaticTuner, StaticTuningReport

__all__ = [
    "ConstantSchedule",
    "CyclicSchedule",
    "GradientCosineController",
    "LossPlateauController",
    "MixturePolicy",
    "StaticTuner",
    "StaticTuningReport",
    "StepSchedule",
]
