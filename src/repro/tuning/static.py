"""Static scan-group tuning (§A.6.1).

Before training starts, the tuner measures each scan group's MSSIM against
the full-quality reconstruction on a sample of images, predicts the accuracy
cost with the Figure 7 linear relationship, computes the bandwidth/throughput
gain of each group from its mean byte size, and recommends the smallest group
whose predicted quality satisfies the user's threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codecs.progressive import ProgressiveCodec
from repro.core.dataset import PCRDataset
from repro.metrics.msssim import ms_ssim
from repro.metrics.regression import cluster_by_mssim

#: MSSIM at or above which the paper observes consistently good accuracy.
DEFAULT_MSSIM_THRESHOLD = 0.95


@dataclass
class StaticTuningReport:
    """Per-scan-group diagnostics produced by the static tuner."""

    mssim_by_group: dict[int, float] = field(default_factory=dict)
    mean_bytes_by_group: dict[int, float] = field(default_factory=dict)
    speedup_by_group: dict[int, float] = field(default_factory=dict)
    recommended_group: int | None = None
    clusters: list[list[int]] = field(default_factory=list)

    def summary_rows(self) -> list[tuple[int, float, float, float]]:
        """(group, mssim, mean bytes, speedup) rows sorted by group."""
        rows = []
        for group in sorted(self.mssim_by_group):
            rows.append(
                (
                    group,
                    self.mssim_by_group[group],
                    self.mean_bytes_by_group.get(group, float("nan")),
                    self.speedup_by_group.get(group, float("nan")),
                )
            )
        return rows


class StaticTuner:
    """Chooses a scan group before training from MSSIM and size statistics."""

    def __init__(
        self,
        dataset: PCRDataset,
        mssim_threshold: float = DEFAULT_MSSIM_THRESHOLD,
        sample_limit: int = 16,
    ) -> None:
        self.dataset = dataset
        self.mssim_threshold = mssim_threshold
        self.sample_limit = sample_limit
        self._codec = ProgressiveCodec()

    def analyze(self) -> StaticTuningReport:
        """Measure every scan group and produce a recommendation."""
        report = StaticTuningReport()
        n_groups = self.dataset.n_groups
        references = self._sample_streams()

        for group in range(1, n_groups + 1):
            values = []
            for stream in references:
                full = self._codec.decode(stream)
                partial = self._codec.decode(stream, max_scans=self._scans_for_group(group))
                values.append(ms_ssim(full, partial))
            report.mssim_by_group[group] = float(np.mean(values))

        bytes_by_group = self.dataset.epoch_bytes_by_group()
        n_samples = max(1, len(self.dataset))
        baseline_bytes = bytes_by_group[n_groups] / n_samples
        for group, total in bytes_by_group.items():
            mean_bytes = total / n_samples
            report.mean_bytes_by_group[group] = mean_bytes
            report.speedup_by_group[group] = baseline_bytes / mean_bytes

        report.clusters = cluster_by_mssim(report.mssim_by_group, tolerance=0.01)
        report.recommended_group = self.recommend(report)
        return report

    def recommend(self, report: StaticTuningReport) -> int:
        """Smallest group whose MSSIM meets the threshold (else the baseline)."""
        for group in sorted(report.mssim_by_group):
            if report.mssim_by_group[group] >= self.mssim_threshold:
                return group
        return self.dataset.n_groups

    # -- internals -------------------------------------------------------------

    def _sample_streams(self) -> list[bytes]:
        streams: list[bytes] = []
        previous_group = self.dataset.scan_group
        self.dataset.set_scan_group(self.dataset.n_groups)
        try:
            for sample in self.dataset:
                streams.append(sample.stream)
                if len(streams) >= self.sample_limit:
                    break
        finally:
            self.dataset.set_scan_group(previous_group)
        return streams

    def _scans_for_group(self, group: int) -> int:
        # Scan groups are stored in quality order; group g corresponds to the
        # first g scans of the default identity policy (or the boundary scan
        # of a clustered policy, recorded in the dataset metadata).
        boundaries = self.dataset.reader.dataset_meta.get("group_boundaries")
        if boundaries:
            return int(boundaries[group - 1])
        return group
