"""Dynamic (runtime) scan-group autotuning (Section 4.5, §A.6.2).

Two controllers are provided:

* :class:`LossPlateauController` — the simple heuristic of Section 4.5:
  train at full quality until the loss plateaus, then checkpoint and probe
  each candidate scan group for a few iterations, adopting the smallest
  group whose probe loss stays close to the full-quality probe; roll the
  model back after probing.
* :class:`GradientCosineController` — the §A.6.2 refinement: compare the
  gradient computed on each scan group's data against the full-quality
  gradient and adopt the smallest group whose cosine similarity exceeds a
  threshold (default 90%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataset import PCRDataset
from repro.pipeline.loader import DataLoader
from repro.training.gradients import scan_group_gradient_similarities
from repro.training.loop import Trainer


@dataclass
class TuningDecision:
    """The outcome of one tuning phase."""

    chosen_group: int
    probe_metrics: dict[int, float]
    epoch: int


@dataclass
class LossPlateauController:
    """Checkpoint/probe/rollback controller driven by training loss."""

    candidate_groups: list[int]
    plateau_patience: int = 3
    plateau_tolerance: float = 1e-3
    probe_batches: int = 2
    loss_slack: float = 0.05
    decisions: list[TuningDecision] = field(default_factory=list)
    _recent_losses: list[float] = field(default_factory=list)

    def observe_loss(self, loss: float) -> bool:
        """Record an epoch loss; returns True when a plateau is detected."""
        self._recent_losses.append(loss)
        if len(self._recent_losses) <= self.plateau_patience:
            return False
        window = self._recent_losses[-(self.plateau_patience + 1) :]
        improvement = window[0] - min(window[1:])
        return improvement < self.plateau_tolerance

    def tune(
        self,
        trainer: Trainer,
        dataset: PCRDataset,
        loader: DataLoader,
        epoch: int,
    ) -> TuningDecision:
        """Probe candidate groups and switch the dataset to the best one.

        The model is checkpointed before probing and rolled back afterwards,
        so probing never contaminates the training trajectory.
        """
        checkpoint = trainer.checkpoint()
        original_group = dataset.scan_group
        probe_losses: dict[int, float] = {}
        try:
            reference_loss = self._probe(trainer, dataset, loader, dataset.n_groups)
            probe_losses[dataset.n_groups] = reference_loss
            for group in self.candidate_groups:
                if group == dataset.n_groups:
                    continue
                trainer.rollback(checkpoint)
                probe_losses[group] = self._probe(trainer, dataset, loader, group)
        finally:
            trainer.rollback(checkpoint)
            dataset.set_scan_group(original_group)

        chosen = dataset.n_groups
        for group in sorted(probe_losses):
            if probe_losses[group] <= probe_losses[dataset.n_groups] * (1.0 + self.loss_slack):
                chosen = group
                break
        dataset.set_scan_group(chosen)
        decision = TuningDecision(chosen_group=chosen, probe_metrics=probe_losses, epoch=epoch)
        self.decisions.append(decision)
        self._recent_losses.clear()
        return decision

    def _probe(
        self, trainer: Trainer, dataset: PCRDataset, loader: DataLoader, group: int
    ) -> float:
        dataset.set_scan_group(group)
        losses = []
        for batch_index, batch in enumerate(loader.epoch()):
            loss, _ = trainer.train_step(batch)
            losses.append(loss)
            if batch_index + 1 >= self.probe_batches:
                break
        return sum(losses) / len(losses) if losses else float("inf")


@dataclass
class GradientCosineController:
    """Gradient-similarity controller (§A.6.2)."""

    candidate_groups: list[int]
    similarity_threshold: float = 0.90
    max_samples: int = 64
    decisions: list[TuningDecision] = field(default_factory=list)

    def tune(
        self,
        trainer: Trainer,
        dataset: PCRDataset,
        epoch: int,
    ) -> TuningDecision:
        """Measure gradient similarity per group and adopt the smallest passing one."""
        similarities = scan_group_gradient_similarities(
            trainer,
            dataset,
            scan_groups=self.candidate_groups,
            max_samples=self.max_samples,
        )
        chosen = dataset.n_groups
        for group in sorted(similarities):
            if similarities[group] >= self.similarity_threshold:
                chosen = group
                break
        dataset.set_scan_group(chosen)
        decision = TuningDecision(chosen_group=chosen, probe_metrics=similarities, epoch=epoch)
        self.decisions.append(decision)
        return decision
