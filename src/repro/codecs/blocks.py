"""Splitting channels into 8x8 blocks and merging them back.

JPEG operates on 8x8 pixel blocks.  Channels whose dimensions are not
multiples of 8 are padded by edge replication (matching libjpeg behaviour);
the original dimensions are carried in the frame header so the decoder can
crop the padding away.
"""

from __future__ import annotations

import numpy as np

BLOCK_SIZE = 8


def pad_to_block_multiple(channel: np.ndarray) -> np.ndarray:
    """Pad a 2-D channel with edge replication to a multiple of 8.

    Dtype-preserving: an already block-aligned channel is returned as-is
    (no cast, no copy).
    """
    channel = np.asarray(channel)
    h, w = channel.shape
    pad_h = (-h) % BLOCK_SIZE
    pad_w = (-w) % BLOCK_SIZE
    if pad_h == 0 and pad_w == 0:
        return channel
    return np.pad(channel, ((0, pad_h), (0, pad_w)), mode="edge")


def split_into_blocks_view(channel: np.ndarray) -> np.ndarray:
    """Stride-tricks split of a 2-D channel into ``(nv, nh, 8, 8)`` blocks.

    Returns a *view* whenever the (padded) channel is C-contiguous — no
    pixel bytes are copied.  Callers that need contiguous blocks (the scalar
    DCT path) should use :func:`split_into_blocks` instead.
    """
    padded = pad_to_block_multiple(channel)
    h, w = padded.shape
    nv, nh = h // BLOCK_SIZE, w // BLOCK_SIZE
    return padded.reshape(nv, BLOCK_SIZE, nh, BLOCK_SIZE).swapaxes(1, 2)


def split_into_blocks(channel: np.ndarray) -> np.ndarray:
    """Split a 2-D channel into an array of 8x8 blocks.

    Returns a contiguous array of shape ``(n_blocks_v, n_blocks_h, 8, 8)``.
    The input is padded to a block multiple first.
    """
    return np.ascontiguousarray(split_into_blocks_view(channel))


def merge_blocks(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """Merge an ``(nv, nh, 8, 8)`` block array into an ``(height, width)`` channel."""
    blocks = np.asarray(blocks)
    nv, nh = blocks.shape[:2]
    merged = blocks.swapaxes(1, 2).reshape(nv * BLOCK_SIZE, nh * BLOCK_SIZE)
    return merged[:height, :width]


def merge_blocks_into(blocks: np.ndarray, out: np.ndarray) -> None:
    """Merge ``(nv, nh, 8, 8)`` blocks into a preallocated padded channel.

    ``out`` must be a C-contiguous ``(nv * 8, nh * 8)`` array; the merge is
    a single strided assignment into it (no intermediate allocation), which
    is what the batched pixel path uses to reuse one channel buffer across
    every image of a minibatch.
    """
    nv, nh = blocks.shape[:2]
    out.reshape(nv, BLOCK_SIZE, nh, BLOCK_SIZE)[:] = blocks.transpose(0, 2, 1, 3)


def block_grid_shape(height: int, width: int) -> tuple[int, int]:
    """Return ``(n_blocks_v, n_blocks_h)`` for a channel of the given size."""
    nv = (height + BLOCK_SIZE - 1) // BLOCK_SIZE
    nh = (width + BLOCK_SIZE - 1) // BLOCK_SIZE
    return nv, nh
