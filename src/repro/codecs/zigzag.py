"""Zigzag ordering of 8x8 DCT coefficient blocks.

The zigzag order places low-frequency coefficients first, which is what makes
spectral-selection progressive scans meaningful: scan band ``[ss, se]`` covers
a contiguous range of zigzag indices.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.blocks import BLOCK_SIZE


def _build_zigzag_order(n: int = BLOCK_SIZE) -> np.ndarray:
    """Return flat indices of an ``n x n`` block in zigzag order."""
    order = sorted(
        ((i, j) for i in range(n) for j in range(n)),
        key=lambda ij: (ij[0] + ij[1], ij[1] if (ij[0] + ij[1]) % 2 else ij[0]),
    )
    return np.array([i * n + j for i, j in order], dtype=np.int64)


ZIGZAG_ORDER = _build_zigzag_order()
INVERSE_ZIGZAG_ORDER = np.argsort(ZIGZAG_ORDER)
N_COEFFICIENTS = BLOCK_SIZE * BLOCK_SIZE


def blocks_to_zigzag(blocks: np.ndarray) -> np.ndarray:
    """Convert ``(..., 8, 8)`` blocks to ``(..., 64)`` zigzag vectors."""
    blocks = np.asarray(blocks)
    if blocks.shape[-2:] != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(f"expected trailing (8, 8), got {blocks.shape}")
    flat = np.ascontiguousarray(blocks).reshape(*blocks.shape[:-2], N_COEFFICIENTS)
    return np.take(flat, ZIGZAG_ORDER, axis=-1)


def zigzag_to_blocks(zigzag: np.ndarray) -> np.ndarray:
    """Convert ``(..., 64)`` zigzag vectors back to ``(..., 8, 8)`` blocks."""
    zigzag = np.asarray(zigzag)
    if zigzag.shape[-1] != N_COEFFICIENTS:
        raise ValueError(f"expected trailing dimension 64, got {zigzag.shape}")
    flat = np.take(zigzag, INVERSE_ZIGZAG_ORDER, axis=-1)
    return flat.reshape(*zigzag.shape[:-1], BLOCK_SIZE, BLOCK_SIZE)
