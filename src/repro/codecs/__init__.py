"""JPEG-style image codec substrate.

The paper relies on libjpeg/jpegtran to produce progressive JPEG files whose
scans can be regrouped into PCR scan groups.  This package provides an
equivalent, self-contained codec:

* :mod:`repro.codecs.color` — RGB/YCbCr conversion and chroma subsampling.
* :mod:`repro.codecs.dct` — orthonormal 8x8 DCT and inverse.
* :mod:`repro.codecs.quantization` — IJG-style quality-scaled quantization.
* :mod:`repro.codecs.zigzag` — zigzag coefficient ordering.
* :mod:`repro.codecs.bitio` / :mod:`repro.codecs.huffman` /
  :mod:`repro.codecs.rle` — entropy coding (run-length symbols + canonical
  Huffman codes).
* :mod:`repro.codecs.baseline` — sequential, single-scan encoding.
* :mod:`repro.codecs.progressive` — spectral-selection progressive encoding
  (default 10 scans), partially decodable.
* :mod:`repro.codecs.transcode` — lossless baseline-to-progressive transcode
  (the ``jpegtran`` role in the paper).
"""

from repro.codecs.baseline import BaselineCodec
from repro.codecs.image import ImageBuffer
from repro.codecs.progressive import ProgressiveCodec, ScanScript
from repro.codecs.quantization import QuantizationTables
from repro.codecs.transcode import transcode_to_progressive

__all__ = [
    "BaselineCodec",
    "ImageBuffer",
    "ProgressiveCodec",
    "QuantizationTables",
    "ScanScript",
    "transcode_to_progressive",
]
