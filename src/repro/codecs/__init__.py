"""JPEG-style image codec substrate.

The paper relies on libjpeg/jpegtran to produce progressive JPEG files whose
scans can be regrouped into PCR scan groups.  This package provides an
equivalent, self-contained codec:

* :mod:`repro.codecs.color` — RGB/YCbCr conversion and chroma subsampling.
* :mod:`repro.codecs.dct` — orthonormal 8x8 DCT and inverse.
* :mod:`repro.codecs.quantization` — IJG-style quality-scaled quantization.
* :mod:`repro.codecs.zigzag` — zigzag coefficient ordering.
* :mod:`repro.codecs.bitio` / :mod:`repro.codecs.huffman` /
  :mod:`repro.codecs.rle` — entropy coding (run-length symbols + canonical
  Huffman codes).
* :mod:`repro.codecs.fastpath` — the vectorized entropy fast path
  (superscalar 16-bit-window pair-LUT Huffman decode with a two-level
  single-symbol fallback tier, word-buffered bit I/O, batched scan
  assembly), gated by :mod:`repro.codecs.config`.  Read
  ``repro.codecs.FASTPATH`` / ``repro.codecs.SUPERSCALAR`` for the current
  settings; flip them with :func:`set_fastpath` / :func:`set_superscalar`
  or the :func:`use_fastpath` / :func:`use_superscalar` context managers.
  See ``docs/performance.md``.
* :mod:`repro.codecs.pixelpath` — the batched float32 pixel-domain fast path
  (fused dequantize+IDCT scaled bases, strided block merge, single-matmul
  colour conversion, scratch-buffer reuse for minibatch decodes), gated by
  the same toggle.  ``decode_progressive_batch`` /
  ``ProgressiveCodec.decode_batch`` are the minibatch-level decode API.
* :mod:`repro.codecs.encodepath` — the forward twin of ``pixelpath``: fused
  RGB→YCbCr+level-shift matmul, strided 4:2:0 downsample, zero-copy block
  layout, and fused quantize+forward-DCT scaled bases.  Carries a documented
  ±1-quant-step parity budget against the scalar reference (see
  ``docs/performance.md``).  ``encode_progressive_batch`` /
  ``ProgressiveCodec.encode_batch`` / ``BaselineCodec.encode_batch`` are the
  minibatch-level encode API.
* :mod:`repro.codecs.parallel` — the process-parallel codec engine:
  persistent pre-warmed worker processes, a chunked work-stealing task
  queue, and shared-memory pixel slabs.  :class:`DecodePool` returns decoded
  batches zero-copy (wired through the reader, ``DataLoader``
  (``decode_workers``), and both remote record sources);
  :class:`EncodePool` runs the ingest direction (pixels in via slabs,
  encoded streams out), wired through ``repro.core.convert``
  (``encode_workers``).
* :mod:`repro.codecs.baseline` — sequential, single-scan encoding.
* :mod:`repro.codecs.progressive` — spectral-selection progressive encoding
  (default 10 scans), partially decodable.
* :mod:`repro.codecs.transcode` — lossless baseline-to-progressive transcode
  (the ``jpegtran`` role in the paper).
"""

from repro.codecs import config as _config
from repro.codecs.baseline import BaselineCodec
from repro.codecs.config import (
    fastpath_enabled,
    set_fastpath,
    set_superscalar,
    superscalar_enabled,
    use_fastpath,
    use_superscalar,
)
from repro.codecs.image import ImageBuffer
from repro.codecs.parallel import (
    DecodePool,
    DecodePoolStats,
    EncodePool,
    EncodePoolStats,
)
from repro.codecs.progressive import (
    ProgressiveCodec,
    ScanScript,
    decode_progressive_batch,
    encode_progressive_batch,
)
from repro.codecs.quantization import QuantizationTables
from repro.codecs.transcode import transcode_to_progressive

# NOTE: FASTPATH / SUPERSCALAR are deliberately not in __all__ — `from
# repro.codecs import FASTPATH` would snapshot the bool at import time and
# go stale after set_fastpath()/use_fastpath().  Read `repro.codecs.FASTPATH`
# (attribute access, served live by __getattr__) or call the *_enabled()
# helpers instead.
__all__ = [
    "BaselineCodec",
    "DecodePool",
    "DecodePoolStats",
    "EncodePool",
    "EncodePoolStats",
    "ImageBuffer",
    "ProgressiveCodec",
    "QuantizationTables",
    "ScanScript",
    "decode_progressive_batch",
    "encode_progressive_batch",
    "fastpath_enabled",
    "set_fastpath",
    "set_superscalar",
    "superscalar_enabled",
    "transcode_to_progressive",
    "use_fastpath",
    "use_superscalar",
]


def __getattr__(name: str):
    # ``repro.codecs.FASTPATH`` / ``.SUPERSCALAR`` always reflect the live
    # toggles in ``repro.codecs.config`` (assign via the setters, not these
    # aliases).
    if name == "FASTPATH":
        return _config.FASTPATH
    if name == "SUPERSCALAR":
        return _config.SUPERSCALAR
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
