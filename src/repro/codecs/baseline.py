"""Baseline (sequential) encoding.

A baseline stream serializes each component's blocks in a single full-band
scan, left-to-right and top-to-bottom.  Partially reading such a stream
yields "holes" — complete blocks of early components and nothing for the
rest — which is the behaviour the paper contrasts against progressive
compression (Section 2, Figure 1).

Entropy coding runs through the vectorized fast path (see
:mod:`repro.codecs.fastpath`) via the scan dispatch in
:mod:`repro.codecs.progressive`; toggle with :mod:`repro.codecs.config`.
"""

from __future__ import annotations

from repro.codecs.image import ImageBuffer
from repro.codecs.markers import SUBSAMPLING_420, find_scan_segments
from repro.codecs.progressive import (
    DEFAULT_QUALITY,
    ScanScript,
    coefficients_to_image,
    decode_coefficients,
    decode_progressive_batch,
    encode_coefficients,
    encode_progressive_batch,
    image_to_coefficients,
)


class BaselineCodec:
    """Encode and decode sequential (single pass per component) streams."""

    def __init__(self, quality: int = DEFAULT_QUALITY, subsampling: int = SUBSAMPLING_420) -> None:
        self.quality = quality
        self.subsampling = subsampling

    def encode(self, image: ImageBuffer) -> bytes:
        """Encode an image as a sequential stream."""
        coefficients = image_to_coefficients(image, self.quality, self.subsampling)
        script = ScanScript.sequential(coefficients.header.n_components)
        return encode_coefficients(coefficients, script)

    def encode_batch(self, images: list[ImageBuffer]) -> list[bytes]:
        """Encode a minibatch of images, amortizing setup and work buffers.

        See :func:`repro.codecs.progressive.encode_progressive_batch`;
        results are bitwise identical to per-image :meth:`encode` calls.
        """
        return encode_progressive_batch(
            images, self.quality, self.subsampling, layout="sequential"
        )

    def decode(self, data: bytes, max_scans: int | None = None) -> ImageBuffer:
        """Decode a sequential stream (optionally only the first scans)."""
        coefficients, _ = decode_coefficients(data, max_scans=max_scans)
        return coefficients_to_image(coefficients)

    def decode_batch(
        self, payloads: list[bytes], max_scans: int | None = None
    ) -> list[ImageBuffer]:
        """Decode a batch of sequential streams with shared work buffers.

        The scan layout is irrelevant to the batch machinery, so this is the
        same amortized path progressive streams use.
        """
        return decode_progressive_batch(payloads, max_scans=max_scans)

    def n_scans(self, data: bytes) -> int:
        """Number of scans in the stream (== number of components)."""
        return len(find_scan_segments(data))


__all__ = ["BaselineCodec", "DEFAULT_QUALITY"]
