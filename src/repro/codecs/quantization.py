"""Quantization tables and quality scaling.

Uses the Annex-K example luminance/chrominance tables from the JPEG standard
and the IJG (libjpeg) quality-to-scale mapping, so a "quality 75" encode here
discards roughly the same frequency content as a quality-75 libjpeg encode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# JPEG Annex K example tables.
BASE_LUMA_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

BASE_CHROMA_TABLE = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float64,
)


def quality_scale_factor(quality: int) -> float:
    """Return the IJG scale factor for a JPEG quality setting in ``[1, 100]``."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        return 5000.0 / quality
    return 200.0 - 2.0 * quality


def scaled_table(base: np.ndarray, quality: int) -> np.ndarray:
    """Scale a base quantization table for the given quality setting."""
    scale = quality_scale_factor(quality)
    table = np.floor((base * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)


@dataclass(frozen=True)
class QuantizationTables:
    """A pair of (luma, chroma) quantization tables for a quality setting."""

    luma: np.ndarray
    chroma: np.ndarray
    quality: int

    @classmethod
    def for_quality(cls, quality: int) -> "QuantizationTables":
        """Build the standard tables scaled to the requested quality."""
        return cls(
            luma=scaled_table(BASE_LUMA_TABLE, quality),
            chroma=scaled_table(BASE_CHROMA_TABLE, quality),
            quality=quality,
        )

    def table_for_component(self, component_index: int) -> np.ndarray:
        """Return the table for component 0 (luma) or 1/2 (chroma)."""
        return self.luma if component_index == 0 else self.chroma

    def to_bytes(self) -> bytes:
        """Serialize both tables (row-major uint8) plus the quality byte."""
        return (
            bytes([self.quality])
            + self.luma.astype(np.uint8).tobytes()
            + self.chroma.astype(np.uint8).tobytes()
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "QuantizationTables":
        """Deserialize tables written by :meth:`to_bytes`."""
        if len(payload) != 1 + 64 + 64:
            raise ValueError(f"quantization payload must be 129 bytes, got {len(payload)}")
        quality = payload[0]
        luma = np.frombuffer(payload[1:65], dtype=np.uint8).astype(np.float64).reshape(8, 8)
        chroma = np.frombuffer(payload[65:129], dtype=np.uint8).astype(np.float64).reshape(8, 8)
        return cls(luma=luma, chroma=chroma, quality=quality)


def quantize(coeff_blocks: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantize DCT coefficient blocks to integers using ``table``."""
    coeff_blocks = np.asarray(coeff_blocks, dtype=np.float64)
    return np.round(coeff_blocks / table).astype(np.int32)


def dequantize(quantized_blocks: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Invert :func:`quantize` (up to rounding loss).

    The explicit float64 cast is unnecessary — integer coefficients times the
    float64 table promote exactly — so the input is not copied first.  (The
    batched decode path skips this function entirely: the table is folded
    into the scaled IDCT basis, see :mod:`repro.codecs.pixelpath`.)
    """
    return np.asarray(quantized_blocks) * table
