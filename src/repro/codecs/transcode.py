"""Lossless baseline-to-progressive transcoding (the ``jpegtran`` role).

The paper converts existing JPEG files to progressive form losslessly:
the quantized DCT coefficients are untouched, only the scan structure and
entropy coding change.  This module does the same for PCR-codec streams —
coefficients are decoded from the source stream and re-emitted with a
progressive scan script, without a second quantization pass.

Both directions run through the vectorized entropy fast path (see
:mod:`repro.codecs.fastpath`) via the scan dispatch in
:mod:`repro.codecs.progressive`, which makes dataset-wide conversion
(the Fig. 15 conversion-cost scenario) entropy-bound rather than
Python-loop-bound; toggle with :mod:`repro.codecs.config`.
"""

from __future__ import annotations

from repro.codecs.markers import find_scan_segments
from repro.codecs.progressive import (
    CoefficientPlanes,
    ScanScript,
    decode_coefficients,
    encode_coefficients,
)


def transcode_to_progressive(data: bytes, script: ScanScript | None = None) -> bytes:
    """Losslessly convert any encoded stream to progressive form.

    Parameters
    ----------
    data:
        A complete baseline or progressive stream.
    script:
        The progressive scan script to use; defaults to the 10-scan default
        script for the stream's component count.
    """
    coefficients, _ = decode_coefficients(data)
    if script is None:
        script = ScanScript.default_for(coefficients.header.n_components)
    return encode_coefficients(coefficients, script)


def transcode_to_sequential(data: bytes) -> bytes:
    """Losslessly convert any encoded stream to the sequential layout."""
    coefficients, _ = decode_coefficients(data)
    script = ScanScript.sequential(coefficients.header.n_components)
    return encode_coefficients(coefficients, script)


def is_lossless_roundtrip(original: bytes, transcoded: bytes) -> bool:
    """Check that two streams hold identical quantized coefficients."""
    original_coefficients, _ = decode_coefficients(original)
    transcoded_coefficients, _ = decode_coefficients(transcoded)
    return _coefficients_equal(original_coefficients, transcoded_coefficients)


def scan_count(data: bytes) -> int:
    """Number of complete scans in a stream."""
    return len(find_scan_segments(data))


def _coefficients_equal(a: CoefficientPlanes, b: CoefficientPlanes) -> bool:
    if a.header.height != b.header.height or a.header.width != b.header.width:
        return False
    if len(a.planes) != len(b.planes):
        return False
    return all((pa == pb).all() for pa, pb in zip(a.planes, b.planes))
