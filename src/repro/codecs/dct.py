"""Two-dimensional DCT-II / DCT-III for 8x8 blocks.

Uses the orthonormal variant so that forward followed by inverse is the
identity (up to floating point error), and coefficient magnitudes match the
conventional JPEG quantization tables.

The scalar reference path routes through ``scipy.fft``; the batched pixel
fast path (:mod:`repro.codecs.pixelpath`) expresses the same transform as
matrix products against :func:`dct_basis_matrix`, which is the single
source of truth for the basis both use.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

from repro.codecs.blocks import BLOCK_SIZE


def dct_basis_matrix(n: int = BLOCK_SIZE) -> np.ndarray:
    """The orthonormal DCT-II basis ``D`` with ``dct(x) == D @ x``.

    ``D[k, i] = c_k * cos((2i + 1) * k * pi / (2n))`` with ``c_0 = sqrt(1/n)``
    and ``c_k = sqrt(2/n)`` otherwise, so the 2-D transforms factor as
    ``dctn(X) == D @ X @ D.T`` and ``idctn(C) == D.T @ C @ D``.
    """
    i = np.arange(n, dtype=np.float64)
    basis = np.cos((2.0 * i[None, :] + 1.0) * i[:, None] * np.pi / (2.0 * n))
    basis *= np.sqrt(2.0 / n)
    basis[0, :] = np.sqrt(1.0 / n)
    return basis


def forward_dct_blocks(blocks: np.ndarray) -> np.ndarray:
    """Apply the 2-D DCT-II to every 8x8 block of an ``(..., 8, 8)`` array.

    The pixel values are level-shifted by 128 first, as in JPEG.
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    _check_block_shape(blocks)
    return dctn(blocks - 128.0, type=2, norm="ortho", axes=(-2, -1))


def inverse_dct_blocks(coeffs: np.ndarray) -> np.ndarray:
    """Apply the 2-D inverse DCT (DCT-III) and undo the level shift."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    _check_block_shape(coeffs)
    return idctn(coeffs, type=2, norm="ortho", axes=(-2, -1)) + 128.0


def _check_block_shape(array: np.ndarray) -> None:
    if array.shape[-2:] != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(
            f"expected trailing dimensions ({BLOCK_SIZE}, {BLOCK_SIZE}), "
            f"got shape {array.shape}"
        )
