"""Colour-space conversion and chroma subsampling.

JPEG converts RGB input to YCbCr and typically stores chroma at half
resolution (4:2:0).  The PCR codec does the same so that chroma scans carry
fewer bytes than luma scans, which is what produces the "scan sizes cluster"
behaviour described in the paper (Section 4.4, Figure 16).
"""

from __future__ import annotations

import numpy as np

# ITU-R BT.601 coefficients, as used by JFIF.
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert an ``(H, W, 3)`` RGB array (any float/int) to YCbCr floats.

    Output channels are Y in ``[0, 255]`` and Cb/Cr centred at 128.
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) array, got shape {rgb.shape}")
    ycc = rgb @ _RGB_TO_YCBCR.T
    ycc[..., 1] += 128.0
    ycc[..., 2] += 128.0
    return ycc


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Convert a YCbCr float array back to RGB floats (not clipped)."""
    ycc = np.asarray(ycc, dtype=np.float64).copy()
    if ycc.ndim != 3 or ycc.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) array, got shape {ycc.shape}")
    ycc[..., 1] -= 128.0
    ycc[..., 2] -= 128.0
    return ycc @ _YCBCR_TO_RGB.T


def subsample_420(channel: np.ndarray) -> np.ndarray:
    """Downsample a chroma channel by 2x in each dimension (box filter).

    Odd dimensions are handled by edge replication before averaging, which is
    how libjpeg treats partial sampling blocks.
    """
    channel = np.asarray(channel, dtype=np.float64)
    h, w = channel.shape
    padded = np.pad(channel, ((0, h % 2), (0, w % 2)), mode="edge")
    ph, pw = padded.shape
    blocks = padded.reshape(ph // 2, 2, pw // 2, 2)
    return blocks.mean(axis=(1, 3))


def upsample_420(channel: np.ndarray, out_height: int, out_width: int) -> np.ndarray:
    """Nearest-neighbour upsample of a subsampled chroma channel."""
    channel = np.asarray(channel, dtype=np.float64)
    up = np.repeat(np.repeat(channel, 2, axis=0), 2, axis=1)
    return up[:out_height, :out_width]
