"""Colour-space conversion and chroma subsampling.

JPEG converts RGB input to YCbCr and typically stores chroma at half
resolution (4:2:0).  The PCR codec does the same so that chroma scans carry
fewer bytes than luma scans, which is what produces the "scan sizes cluster"
behaviour described in the paper (Section 4.4, Figure 16).
"""

from __future__ import annotations

import numpy as np

# ITU-R BT.601 luma weights, as used by JFIF.  The Cb/Cr rows are derived
# from them exactly (``Cb = 0.5 (B - Y) / (1 - Kb)``, ``Cr = 0.5 (R - Y) /
# (1 - Kr)``) rather than spelled as the truncated 6-decimal constants the
# JFIF note prints (-0.168736, -0.331264, -0.418688, -0.081312), so the
# analytic inverse below is exact rather than approximate.
_KR, _KG, _KB = 0.299, 0.587, 0.114

_RGB_TO_YCBCR = np.array(
    [
        [_KR, _KG, _KB],
        [-0.5 * _KR / (1.0 - _KB), -0.5 * _KG / (1.0 - _KB), 0.5],
        [0.5, -0.5 * _KG / (1.0 - _KR), -0.5 * _KB / (1.0 - _KR)],
    ]
)

# The exact analytic inverse of the BT.601 forward matrix (Cb/Cr rows scaled
# so the chroma extrema map to +/-0.5): R = Y + 2(1-Kr)Cr, B = Y + 2(1-Kb)Cb,
# and G balances the luma equation.  Writing the constants out (instead of a
# numeric ``np.linalg.inv`` round-trip) keeps the matrix reproducible to the
# last bit across BLAS/LAPACK builds.
_CR_TO_R = 2.0 * (1.0 - _KR)  # 1.402
_CB_TO_B = 2.0 * (1.0 - _KB)  # 1.772
_CB_TO_G = -(_KB * _CB_TO_B) / _KG  # -0.344136...
_CR_TO_G = -(_KR * _CR_TO_R) / _KG  # -0.714136...
_YCBCR_TO_RGB = np.array(
    [
        [1.0, 0.0, _CR_TO_R],
        [1.0, _CB_TO_G, _CR_TO_G],
        [1.0, _CB_TO_B, 0.0],
    ]
)

#: Per-channel constant that folds the Cb/Cr -128 centering into the inverse
#: matmul: ``(ycc - [0, 128, 128]) @ M.T == ycc @ M.T + _YCBCR_TO_RGB_BIAS``.
_YCBCR_TO_RGB_BIAS = -128.0 * (_YCBCR_TO_RGB[:, 1] + _YCBCR_TO_RGB[:, 2])


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert an ``(H, W, 3)`` RGB array (any float/int) to YCbCr floats.

    Output channels are Y in ``[0, 255]`` and Cb/Cr centred at 128.
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) array, got shape {rgb.shape}")
    ycc = rgb @ _RGB_TO_YCBCR.T
    ycc[..., 1] += 128.0
    ycc[..., 2] += 128.0
    return ycc


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Convert a YCbCr float array back to RGB floats (not clipped).

    The -128 chroma centering is folded into a per-channel bias added after
    the matmul, so the input is neither copied nor mutated and the whole
    conversion is one matmul plus an in-place offset on the result.
    """
    ycc = np.asarray(ycc, dtype=np.float64)
    if ycc.ndim != 3 or ycc.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) array, got shape {ycc.shape}")
    rgb = ycc @ _YCBCR_TO_RGB.T
    rgb += _YCBCR_TO_RGB_BIAS
    return rgb


def subsample_420(channel: np.ndarray) -> np.ndarray:
    """Downsample a chroma channel by 2x in each dimension (box filter).

    Odd dimensions are handled by edge replication before averaging, which is
    how libjpeg treats partial sampling blocks.
    """
    channel = np.asarray(channel, dtype=np.float64)
    h, w = channel.shape
    padded = np.pad(channel, ((0, h % 2), (0, w % 2)), mode="edge")
    ph, pw = padded.shape
    blocks = padded.reshape(ph // 2, 2, pw // 2, 2)
    return blocks.mean(axis=(1, 3))


def upsample_420(channel: np.ndarray, out_height: int, out_width: int) -> np.ndarray:
    """Nearest-neighbour upsample of a subsampled chroma channel."""
    channel = np.asarray(channel, dtype=np.float64)
    up = np.repeat(np.repeat(channel, 2, axis=0), 2, axis=1)
    return up[:out_height, :out_width]
