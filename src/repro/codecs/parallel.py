"""Process-parallel minibatch codecs through shared-memory pixel slabs.

The fast decode path is >90% entropy-bound (see ``BENCH_codec.json``), and
the sequential per-symbol Huffman loop cannot be vectorized inside one
Python interpreter.  :class:`DecodePool` beats that wall with *software*
parallelism instead: a persistent fleet of worker processes decodes the
streams of a minibatch concurrently, one core per worker, and hands the
pixels back through preallocated ``multiprocessing.shared_memory`` frame
slabs so no pixel data is ever pickled.

:class:`EncodePool` is the same engine with the data flow inverted for
ingest (dataset conversion): the parent lays a chunk of images out in a
shared slab (pixels *in* via shared memory, one memcpy each), workers run
the batched float32 forward path + entropy encoder
(:func:`~repro.codecs.progressive.encode_progressive_batch`), and the
encoded streams — orders of magnitude smaller than the pixels — return
through the ordinary result queue.  Both pools share the worker fleet,
work-stealing chunk queue, slab pooling, and crash-fallback machinery
below (:class:`_PoolState`).

Architecture
------------

* **Long-lived workers.**  ``n_workers`` processes are started once (fork
  where available, spawn otherwise), pre-warm the Huffman-LUT / scaled-basis
  caches by decoding a tiny self-encoded image, and then loop on a shared
  task queue until the pool closes.  Worker startup cost is paid once per
  pool, not per batch.
* **Chunked task queue (work stealing).**  A batch is split into several
  chunks per worker, balanced by compressed-stream bytes, and all chunks go
  onto one shared queue.  Workers pull the next chunk whenever they finish
  one, so uneven stream sizes self-balance instead of serializing on the
  slowest pre-assigned partition.
* **Shared-memory frame slabs.**  The parent parses each stream's frame
  header, lays every decoded frame out at a fixed offset inside one slab,
  and sends workers only ``(stream bytes, offset, shape)`` metadata.
  Workers decode with the ordinary in-process fast path
  (:func:`~repro.codecs.progressive.decode_progressive_batch`) and write
  the uint8 pixels straight into the slab.  The parent wraps the filled
  regions as zero-copy numpy views; slabs are pooled and reused across
  batches, and a slab returns to the pool only when every view onto it has
  been garbage collected (a :class:`_SlabLease` finalizer tracks that), so
  a consumer can hold decoded frames as long as it likes.
* **Transparent fallback.**  ``n_workers <= 1``, a closed pool, a worker
  crash, or a worker-side decode error all degrade to the in-process batch
  decoder.  After a crash the whole fleet is restarted with fresh queues
  (a killed process can die holding a queue lock, so the old plumbing is
  never trusted again), and the unfinished part of the batch is decoded
  in-process — the caller sees identical results either way.

Decoded output is *byte-identical* to in-process fast-path decoding:
workers run exactly the same code on exactly the same bytes, and the batch
layout never mixes pixels across images.  ``tests/test_codecs_parallel.py``
pins this across scan groups, worker counts, and mid-batch worker kills.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from queue import Empty

import numpy as np

from repro.codecs import config as codec_config
from repro.codecs.markers import SUBSAMPLING_420, parse_frame_header
from repro.codecs.image import ImageBuffer
from repro.obs import metrics as obs_metrics

__all__ = ["DecodePool", "DecodePoolStats", "EncodePool", "EncodePoolStats"]

#: Chunks created per worker and batch: enough granularity that a worker
#: finishing early steals meaningful work, few enough that queue overhead
#: stays negligible.
CHUNKS_PER_WORKER = 4

#: Smallest slab allocated (new slabs round up to this), so a stream of tiny
#: batches reuses one slab instead of allocating per-batch.
MIN_SLAB_BYTES = 1 << 20

#: How often the parent re-checks worker liveness while waiting on results.
_POLL_SECONDS = 0.05

_SENTINEL = None


def _default_start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _frame_geometry(payload: bytes) -> tuple[tuple[int, ...], int]:
    """Decoded shape and byte size of a stream, from its frame header only."""
    header, _ = parse_frame_header(payload)
    if header.n_components == 1:
        shape: tuple[int, ...] = (header.height, header.width)
    else:
        shape = (header.height, header.width, 3)
    nbytes = int(np.prod(shape))
    return shape, nbytes


def _chunk_by_bytes(sizes: list[int], n_chunks: int) -> list[list[int]]:
    """Split stream indices into <= ``n_chunks`` contiguous, byte-balanced runs."""
    n_chunks = max(1, min(n_chunks, len(sizes)))
    total = sum(sizes)
    target = total / n_chunks
    chunks: list[list[int]] = []
    current: list[int] = []
    accumulated = 0
    for index, size in enumerate(sizes):
        current.append(index)
        accumulated += size
        remaining_items = len(sizes) - index - 1
        remaining_chunks = n_chunks - len(chunks) - 1
        if (accumulated >= target * (len(chunks) + 1) and remaining_chunks > 0) or (
            remaining_items == remaining_chunks and remaining_chunks > 0 and current
        ):
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)
    return chunks


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------


def _prewarm(quality: int) -> None:
    """Heat the fastpath caches (Huffman LUT build path, scaled bases).

    Beyond the round-trip decode, the superscalar pair/walk tables of every
    Huffman table in the warmup stream are built explicitly: the standard
    quality tables recur across real streams via the payload-keyed cache
    (``HuffmanTable.cached_from_bytes``), so a forked worker's first real
    chunk probes warm LUTs instead of paying the ``SUPER_BITS``-wide table
    build (milliseconds per table flavour) mid-batch.
    """
    from repro.codecs.huffman import HuffmanTable
    from repro.codecs.markers import find_scan_segments
    from repro.codecs.progressive import ProgressiveCodec, decode_progressive_batch

    ramp = (np.arange(16 * 16 * 3, dtype=np.int64) * 7 % 256).astype(np.uint8)
    image = ImageBuffer(ramp.reshape(16, 16, 3))
    codec = ProgressiveCodec(quality=quality)
    payload = codec.encode(image)
    for segment in find_scan_segments(payload):
        table, _ = HuffmanTable.cached_from_bytes(
            payload[segment.payload_start : segment.end]
        )
        tables = table.scan_tables()
        tables.superscalar_tables()
        tables.walk_tables()
    decode_progressive_batch([payload])


def _decode_worker_main(task_queue, result_queue, warmup_quality) -> None:
    """Long-lived worker loop: pull a chunk, decode it, write into the slab.

    Workers always decode with the fast path enabled — the pool's contract
    is byte-identity with in-process *fast-path* decode — and ignore SIGINT
    so a Ctrl-C in the parent tears the fleet down through the pool's
    shutdown protocol (sentinels, then terminate) rather than corrupting a
    queue mid-put.
    """
    from repro.codecs.progressive import decode_progressive_batch
    from repro.obs import diff_snapshots, get_registry

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    codec_config.set_fastpath(True)
    # The registry's fork hook already zeroed inherited totals (and a
    # spawned worker starts fresh); reset again defensively so the first
    # chunk's delta is exactly this worker's own work.
    registry = get_registry()
    registry.reset()
    if warmup_quality is not None:
        try:
            _prewarm(warmup_quality)
        except Exception:  # warmup is best-effort; first real batch warms too
            pass
    registry.reset()  # drop warmup decode counts from the first chunk delta
    last_snapshot = registry.snapshot()
    # Slab attachments are cached (slabs are pooled and recur), but bounded:
    # the parent retires slabs over a long run and an unlinked segment's
    # memory stays resident while any mapping exists, so an unbounded cache
    # would grow worker RSS without limit.  Evicting a slab the parent still
    # pools is safe — the next task naming it simply re-attaches.
    max_attached = 8
    attached: dict[str, shared_memory.SharedMemory] = {}
    try:
        while True:
            task = task_queue.get()
            if task is _SENTINEL:
                break
            batch_id, chunk_id, slab_name, max_scans, jobs = task
            try:
                chunk_started = time.perf_counter()
                shm = attached.pop(slab_name, None)
                if shm is None:
                    shm = shared_memory.SharedMemory(name=slab_name)
                attached[slab_name] = shm  # (re)insert as most recently used
                while len(attached) > max_attached:
                    oldest = next(iter(attached))
                    try:
                        attached.pop(oldest).close()
                    except Exception:
                        pass
                images = decode_progressive_batch(
                    [payload for payload, _, _, _ in jobs], max_scans=max_scans
                )
                for image, (_, offset, nbytes, shape) in zip(images, jobs):
                    pixels = image.pixels
                    if pixels.shape != tuple(shape) or pixels.nbytes != nbytes:
                        raise ValueError(
                            f"decoded frame is {pixels.shape}, slab region expects {shape}"
                        )
                    region = np.frombuffer(
                        shm.buf, dtype=np.uint8, count=nbytes, offset=offset
                    )
                    region[:] = pixels.reshape(-1)
                    del region
                # Per-worker decode timing plus the registry delta since the
                # previous chunk ride back in the result tuple; the parent
                # merges the delta so fleet-wide metrics aggregate exactly
                # as if the chunk had decoded in-process (fork-aware
                # aggregation — see tests/test_obs.py parity test).
                registry.histogram("decode.pool.chunk_seconds").observe(
                    time.perf_counter() - chunk_started
                )
                registry.counter("decode.pool.chunks_total").inc()
                snapshot = registry.snapshot()
                delta = diff_snapshots(snapshot, last_snapshot)
                last_snapshot = snapshot
                result_queue.put((batch_id, chunk_id, None, delta))
            except Exception:
                last_snapshot = registry.snapshot()
                result_queue.put((batch_id, chunk_id, traceback.format_exc(), None))
    except (KeyboardInterrupt, EOFError, OSError):
        pass  # parent is gone or tearing down; exit quietly
    finally:
        for shm in attached.values():
            try:
                shm.close()
            except Exception:
                pass


def _encode_prewarm(quality: int) -> None:
    """Heat the forward fast-path caches (scaled forward bases, DHT builds).

    One tiny color encode touches the RGB→YCbCr matmul, the forward
    scaled-basis cache for the warmup quality's quant tables, and the
    Huffman table-build path, so a worker's first real chunk runs at steady
    state.
    """
    from repro.codecs.progressive import encode_progressive_batch

    ramp = (np.arange(16 * 16 * 3, dtype=np.int64) * 7 % 256).astype(np.uint8)
    image = ImageBuffer(ramp.reshape(16, 16, 3))
    encode_progressive_batch([image], quality=quality)


def _slab_image(shm, offset: int, nbytes: int, shape) -> ImageBuffer:
    """Wrap a slab region as a zero-copy read-only ImageBuffer.

    Scoped in a helper so no local name keeps a view alive after the
    caller drops its image list (a lingering view blocks ``shm.close``).
    """
    region = np.frombuffer(
        shm.buf, dtype=np.uint8, count=nbytes, offset=offset
    ).reshape(shape)
    # Read-only view: ImageBuffer.from_array wraps read-only arrays without
    # copying, so the encoder reads straight out of the slab.
    region.flags.writeable = False
    return ImageBuffer.from_array(region)


def _encode_worker_main(task_queue, result_queue, warmup_quality) -> None:
    """Long-lived ingest worker: pull a chunk, read pixels from the slab,
    encode, and send the streams back through the result queue.

    The data flow is the mirror image of :func:`_decode_worker_main`: pixels
    arrive through shared memory (zero pickling of the heavy direction) and
    the compressed streams — typically 10-50x smaller — return through the
    ordinary queue.  Workers pin the fast path on; the pool's contract is
    identity with in-process *fast-path* encoding.
    """
    from repro.codecs.progressive import encode_progressive_batch
    from repro.obs import diff_snapshots, get_registry

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    codec_config.set_fastpath(True)
    registry = get_registry()
    registry.reset()
    if warmup_quality is not None:
        try:
            _encode_prewarm(warmup_quality)
        except Exception:  # warmup is best-effort; first real batch warms too
            pass
    registry.reset()  # drop warmup encode counts from the first chunk delta
    last_snapshot = registry.snapshot()
    # Bounded slab attach cache — same rationale as the decode worker.
    max_attached = 8
    attached: dict[str, shared_memory.SharedMemory] = {}
    try:
        while True:
            task = task_queue.get()
            if task is _SENTINEL:
                break
            batch_id, chunk_id, slab_name, params, jobs = task
            try:
                quality, subsampling, layout = params
                shm = attached.pop(slab_name, None)
                if shm is None:
                    shm = shared_memory.SharedMemory(name=slab_name)
                attached[slab_name] = shm  # (re)insert as most recently used
                while len(attached) > max_attached:
                    oldest = next(iter(attached))
                    try:
                        attached.pop(oldest).close()
                    except Exception:
                        pass
                images = [
                    _slab_image(shm, offset, nbytes, shape)
                    for offset, nbytes, shape in jobs
                ]
                try:
                    streams = encode_progressive_batch(
                        images,
                        quality=quality,
                        subsampling=subsampling,
                        layout=layout,
                    )
                finally:
                    # Drop the slab views before the result ships so slab
                    # eviction / worker exit can unmap the segment cleanly.
                    del images
                snapshot = registry.snapshot()
                delta = diff_snapshots(snapshot, last_snapshot)
                last_snapshot = snapshot
                result_queue.put((batch_id, chunk_id, None, streams, delta))
            except Exception:
                last_snapshot = registry.snapshot()
                result_queue.put(
                    (batch_id, chunk_id, traceback.format_exc(), None, None)
                )
    except (KeyboardInterrupt, EOFError, OSError):
        pass  # parent is gone or tearing down; exit quietly
    finally:
        for shm in attached.values():
            try:
                shm.close()
            except Exception:
                pass


# --------------------------------------------------------------------------
# Slab lifecycle
# --------------------------------------------------------------------------


@dataclass
class _Slab:
    """One shared-memory segment frames are decoded into."""

    shm: shared_memory.SharedMemory
    capacity: int


class _SlabLease:
    """Keeps a slab checked out while any frame view onto it is alive.

    Every :class:`_SlabView` returned from a batch holds a strong reference
    to its lease; a ``weakref.finalize`` on the lease returns the slab to
    the pool's free list (or unlinks it, once the pool is closed) exactly
    when the last view dies.
    """

    __slots__ = ("__weakref__",)


class _SlabView(np.ndarray):
    """A decoded uint8 frame viewing shared slab memory (zero-copy).

    Slices inherit the lease through their ``base`` chain, so arbitrary
    downstream numpy code keeps the slab alive for as long as it can see
    the pixels.
    """


def _slab_view(slab: _Slab, offset: int, shape: tuple[int, ...], lease) -> np.ndarray:
    view = np.ndarray.__new__(
        _SlabView, shape, dtype=np.uint8, buffer=slab.shm.buf, offset=offset
    )
    view._slab_lease = lease
    view.flags.writeable = False
    return view


def _destroy_slab(slab: _Slab) -> None:
    try:
        slab.shm.close()
    except BufferError:
        # A view still references the mapping; its lease finalizer will come
        # back through here once the view dies.
        return
    except OSError:
        pass
    try:
        slab.shm.unlink()
    except FileNotFoundError:
        pass
    except OSError:
        pass


def _release_slab(state: "_PoolState", slab: _Slab) -> None:
    """Return a slab to the free list, or retire it if the pool is done."""
    with state.lock:
        if not state.closed and len(state.free_slabs) < state.max_free_slabs:
            state.free_slabs.append(slab)
            return
    _destroy_slab(slab)


# --------------------------------------------------------------------------
# Pool state (detached from the user-facing object so a GC'd pool can still
# be shut down by its finalizer)
# --------------------------------------------------------------------------


class _PoolState:
    def __init__(
        self,
        ctx,
        n_workers: int,
        warmup_quality: int | None,
        max_free_slabs: int,
        *,
        worker_main=None,
        worker_name: str = "pcr-decode",
        stats=None,
    ):
        self.ctx = ctx
        self.n_workers = n_workers
        self.warmup_quality = warmup_quality
        self.max_free_slabs = max_free_slabs
        # The worker entry point and stats object are injected so DecodePool
        # and EncodePool share one fleet/slab/fallback engine; any stats
        # object with workers_started / fleet_restarts / slabs_created
        # counters works.
        self.worker_main = worker_main if worker_main is not None else _decode_worker_main
        self.worker_name = worker_name
        self.lock = threading.RLock()
        self.closed = False
        self.respawn = True  # tests flip this to pin the fallback path
        self.workers: list = []
        self.tasks = None
        self.results = None
        self.free_slabs: list[_Slab] = []
        self.batch_counter = 0
        self.slab_counter = 0
        self.stats = stats if stats is not None else DecodePoolStats()

    # -- workers ----------------------------------------------------------

    def ensure_workers(self) -> None:
        # A worker that died *between* batches (OOM killer, external SIGKILL)
        # may have been blocked in task_queue.get() holding the queue's
        # shared read lock — forking replacements onto the same queues would
        # deadlock the whole fleet with every process "alive".  Any death
        # therefore discards the old plumbing wholesale, same as a mid-batch
        # crash.
        if any(not worker.is_alive() for worker in self.workers):
            self.restart_fleet()
        if self.tasks is None:
            self.tasks = self.ctx.Queue()
            self.results = self.ctx.Queue()
        if not self.respawn and self.workers:
            return
        while self.respawn and len(self.workers) < self.n_workers:
            worker = self.ctx.Process(
                target=self.worker_main,
                args=(self.tasks, self.results, self.warmup_quality),
                daemon=True,
                name=f"{self.worker_name}-{len(self.workers)}",
            )
            worker.start()
            self.workers.append(worker)
            self.stats.workers_started += 1

    def restart_fleet(self) -> None:
        """Kill every worker and discard the queues (crash recovery).

        A process that died mid-``put``/``get`` can leave a queue lock held
        forever, so after any failure the old queues are abandoned wholesale
        and the next batch starts from fresh plumbing.
        """
        workers, self.workers = self.workers, []
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        for worker in workers:
            worker.join(timeout=2.0)
            if worker.is_alive():
                worker.kill()
                worker.join(timeout=1.0)
        self._discard_queues()
        self.stats.fleet_restarts += 1

    def _discard_queues(self) -> None:
        for q in (self.tasks, self.results):
            if q is None:
                continue
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass
        self.tasks = None
        self.results = None

    # -- slabs ------------------------------------------------------------

    def acquire_slab(self, nbytes: int) -> _Slab:
        with self.lock:
            best_index = -1
            for index, slab in enumerate(self.free_slabs):
                if slab.capacity >= nbytes and (
                    best_index < 0 or slab.capacity < self.free_slabs[best_index].capacity
                ):
                    best_index = index
            if best_index >= 0:
                return self.free_slabs.pop(best_index)
            self.slab_counter += 1
            counter = self.slab_counter
        capacity = max(nbytes, MIN_SLAB_BYTES)
        while True:
            name = f"pcrslab_{os.getpid()}_{counter}_{os.urandom(3).hex()}"
            try:
                shm = shared_memory.SharedMemory(name=name, create=True, size=capacity)
                break
            except FileExistsError:
                continue
        self.stats.slabs_created += 1
        return _Slab(shm=shm, capacity=capacity)

    # -- shutdown ---------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        with self.lock:
            if self.closed:
                return
            self.closed = True
            workers, self.workers = self.workers, []
            tasks = self.tasks
            slabs, self.free_slabs = list(self.free_slabs), []
        if tasks is not None:
            for _ in workers:
                try:
                    tasks.put(_SENTINEL)
                except Exception:
                    break
        for worker in workers:
            worker.join(timeout=timeout)
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
            if worker.is_alive():
                worker.kill()
                worker.join(timeout=1.0)
        self._discard_queues()
        for slab in slabs:
            _destroy_slab(slab)


# --------------------------------------------------------------------------
# Public API
# --------------------------------------------------------------------------


@dataclass
class DecodePoolStats:
    """Counters a pool accumulates over its lifetime."""

    batches: int = 0
    parallel_batches: int = 0
    fallback_batches: int = 0
    streams_decoded: int = 0
    bytes_decoded: int = 0
    fleet_restarts: int = 0
    workers_started: int = 0
    slabs_created: int = 0
    last_worker_error: str = field(default="", repr=False)


class DecodePool:
    """A persistent process pool that decodes minibatches of PCR streams.

    ``decode_batch`` is a drop-in replacement for
    :meth:`repro.codecs.progressive.ProgressiveCodec.decode_batch`: it takes
    the same list of stream bytes and returns the same list of
    :class:`~repro.codecs.image.ImageBuffer`, byte-identical to in-process
    fast-path decoding — except the entropy loops of the batch run on
    ``n_workers`` cores concurrently and the pixels come back through
    shared memory.

    With ``n_workers <= 1`` the pool is a thin wrapper over the in-process
    batch decoder (no processes, no shared memory), so callers can wire a
    pool unconditionally and control parallelism with one integer.

    One batch is in flight at a time (concurrent callers serialize on an
    internal lock): the pool parallelizes *within* a batch, which is where
    the minibatch-shaped work lives.  Use it as a context manager or call
    :meth:`close`; an abandoned pool is also shut down by a GC finalizer so
    no worker processes or shared-memory segments outlive the interpreter.

    The initial fleet forks at construction time (create the pool before
    starting reader threads, as ``DataLoader`` does).  Respawning after a
    crash may fork from an already-threaded parent; a replacement child
    that wedges on a lock inherited at fork time is caught by the
    ``stall_timeout`` watchdog and the batch finishes in-process.  Pass
    ``start_method="spawn"`` for fully fork-free workers in heavily
    threaded embedders (slower startup, same results).
    """

    def __init__(
        self,
        n_workers: int,
        *,
        start_method: str | None = None,
        warmup_quality: int | None = 90,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        max_free_slabs: int = 4,
        stall_timeout: float = 30.0,
    ) -> None:
        self.n_workers = int(n_workers)
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        #: Seconds without any chunk completing (workers alive) before a
        #: batch is declared stalled and finished in-process.  At fast-path
        #: decode rates the default corresponds to tens of MB of compressed
        #: data per chunk — far beyond any realistic record.
        self.stall_timeout = float(stall_timeout)
        self._closed_inprocess = False
        self._inprocess_lock = threading.Lock()
        if self.n_workers <= 1:
            self._state: _PoolState | None = None
            self._stats = DecodePoolStats()
            self._finalizer = None
            return
        ctx = multiprocessing.get_context(start_method or _default_start_method())
        # Start the shared-memory resource tracker *before* forking workers:
        # children then inherit the parent's tracker instead of each lazily
        # spawning their own (a per-worker tracker would try to "clean up"
        # the parent's live slabs when its worker exits).  Registrations are
        # set-deduplicated in the tracker, so worker-side attach registers
        # collapse into the parent's single register/unlink pair.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        state = _PoolState(ctx, self.n_workers, warmup_quality, max_free_slabs)
        self._state = state
        self._stats = state.stats
        with state.lock:
            state.ensure_workers()
        self._finalizer = weakref.finalize(self, _PoolState.shutdown, state)

    # -- introspection ----------------------------------------------------

    @property
    def stats(self) -> DecodePoolStats:
        return self._stats

    @property
    def closed(self) -> bool:
        if self._state is not None:
            return self._state.closed
        return self._closed_inprocess

    # -- decoding ---------------------------------------------------------

    def decode_batch(self, payloads, max_scans: int | None = None) -> list[ImageBuffer]:
        """Decode a minibatch of streams; byte-identical to in-process decode."""
        payloads = list(payloads)
        if not payloads:
            return []
        state = self._state
        if state is None:
            return self._decode_inprocess(payloads, max_scans)
        with state.lock:
            if state.closed:
                return self._decode_inprocess(payloads, max_scans)
            return self._decode_parallel(state, payloads, max_scans)

    def _decode_inprocess(self, payloads: list[bytes], max_scans) -> list[ImageBuffer]:
        from repro.codecs.progressive import decode_progressive_batch

        # The pool's contract is byte-identity with *fast-path* decode
        # (workers pin it on); the in-process degradations must match even
        # when the caller has toggled the scalar reference path globally.
        with codec_config.use_fastpath(True):
            images = decode_progressive_batch(payloads, max_scans=max_scans)
        with self._inprocess_lock:
            self._stats.batches += 1
            self._stats.streams_decoded += len(payloads)
            self._stats.bytes_decoded += sum(image.pixels.nbytes for image in images)
        return images

    def _decode_parallel(
        self, state: _PoolState, payloads: list[bytes], max_scans
    ) -> list[ImageBuffer]:
        from repro.codecs.progressive import decode_progressive_batch

        state.ensure_workers()
        if not state.workers:
            # Respawning is disabled and the fleet is gone: decode in-process
            # without touching the (fresh, empty) queues.
            state.stats.fallback_batches += 1
            return self._decode_inprocess(payloads, max_scans)
        shapes: list[tuple[int, ...]] = []
        sizes: list[int] = []
        offsets: list[int] = []
        total = 0
        for payload in payloads:
            shape, nbytes = _frame_geometry(payload)
            shapes.append(shape)
            sizes.append(nbytes)
            offsets.append(total)
            total += nbytes
        slab = state.acquire_slab(total)
        views_created = False
        try:
            chunks = _chunk_by_bytes(
                [len(p) for p in payloads], state.n_workers * self.chunks_per_worker
            )
            state.batch_counter += 1
            batch_id = state.batch_counter
            for chunk_id, indices in enumerate(chunks):
                jobs = [
                    (payloads[i], offsets[i], sizes[i], shapes[i]) for i in indices
                ]
                state.tasks.put((batch_id, chunk_id, slab.shm.name, max_scans, jobs))
            pending = set(range(len(chunks)))
            failed = not state.workers
            last_progress = time.monotonic()
            while pending and not failed:
                try:
                    done_batch, done_chunk, error, delta = state.results.get(
                        timeout=_POLL_SECONDS
                    )
                except Empty:
                    # Dead workers are detected directly; a worker that is
                    # alive but wedged (e.g. a respawned fork that inherited
                    # a lock held at fork time) trips the stall timeout, so
                    # a batch can degrade but never hang.
                    if any(not worker.is_alive() for worker in state.workers):
                        failed = True
                    elif time.monotonic() - last_progress > self.stall_timeout:
                        state.stats.last_worker_error = "batch stalled"
                        failed = True
                    continue
                if done_batch != batch_id:
                    continue  # stale result from an aborted batch
                if error is not None:
                    state.stats.last_worker_error = error
                    failed = True
                    break
                pending.discard(done_chunk)
                last_progress = time.monotonic()
                if delta:
                    # Fold the worker's per-chunk registry delta into the
                    # parent: fleet metrics equal in-process metrics.
                    obs_metrics.get_registry().merge(delta)

            images: list = [None] * len(payloads)
            if failed:
                # Tear the fleet down to a clean slate (a killed worker can
                # die holding a queue lock), then finish the batch with the
                # ordinary in-process decoder.  A worker that reported a
                # decode *error* re-raises here with the real exception.
                state.stats.fallback_batches += 1
                state.restart_fleet()
                fallback = sorted(
                    index for chunk_id in pending for index in chunks[chunk_id]
                )
                # Pin the fast path: workers decode with it on, and a mixed
                # batch must not differ chunk-by-chunk when the caller has
                # the scalar reference toggled globally.
                with codec_config.use_fastpath(True):
                    decoded = decode_progressive_batch(
                        [payloads[i] for i in fallback], max_scans=max_scans
                    )
                for index, image in zip(fallback, decoded):
                    images[index] = image
            done_indices = [
                index
                for chunk_id, indices in enumerate(chunks)
                if chunk_id not in pending
                for index in indices
            ]
            if done_indices:
                lease = _SlabLease()
                weakref.finalize(lease, _release_slab, state, slab)
                for index in done_indices:
                    images[index] = ImageBuffer(
                        _slab_view(slab, offsets[index], shapes[index], lease)
                    )
                views_created = True
            state.stats.batches += 1
            if done_indices:
                # Only count batches where workers actually decoded chunks;
                # an all-fallback batch must not masquerade as parallel.
                state.stats.parallel_batches += 1
            state.stats.streams_decoded += len(payloads)
            state.stats.bytes_decoded += total
            return images
        finally:
            if not views_created:
                _release_slab(state, slab)

    # -- lifecycle --------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers and release every pooled shared-memory slab.

        Slabs still referenced by outstanding frame views are unlinked as
        soon as their last view is garbage collected.  Decoding through a
        closed pool transparently runs in-process.
        """
        self._closed_inprocess = True
        if self._state is not None:
            self._state.shutdown(timeout=timeout)
        if self._finalizer is not None:
            self._finalizer.detach()

    def __enter__(self) -> "DecodePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class EncodePoolStats:
    """Counters an :class:`EncodePool` accumulates over its lifetime."""

    batches: int = 0
    parallel_batches: int = 0
    fallback_batches: int = 0
    images_encoded: int = 0
    pixel_bytes_in: int = 0
    encoded_bytes_out: int = 0
    fleet_restarts: int = 0
    workers_started: int = 0
    slabs_created: int = 0
    last_worker_error: str = field(default="", repr=False)


class EncodePool:
    """A persistent process pool that encodes minibatches of images.

    ``encode_batch`` is a drop-in replacement for
    :func:`repro.codecs.progressive.encode_progressive_batch`: it takes the
    same list of :class:`~repro.codecs.image.ImageBuffer` and returns the
    same list of encoded streams, identical to in-process fast-path
    encoding — except the forward DCT + entropy loops of the batch run on
    ``n_workers`` cores concurrently, and the pixels travel to the workers
    through shared-memory slabs (one parent-side memcpy per image, zero
    pickling of pixel data).  Encoded streams are orders of magnitude
    smaller than pixels, so they return through the ordinary result queue.

    With ``n_workers <= 1`` the pool is a thin wrapper over the in-process
    batch encoder (no processes, no shared memory), so conversion code can
    wire a pool unconditionally and control parallelism with one integer.

    Fleet lifecycle, chunked work stealing, slab pooling, crash fallback,
    and the stall watchdog are shared with :class:`DecodePool` (see the
    module docstring); after any worker failure the unfinished remainder of
    the batch is encoded in-process and the caller sees identical streams
    either way.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        start_method: str | None = None,
        warmup_quality: int | None = 90,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        max_free_slabs: int = 4,
        stall_timeout: float = 30.0,
    ) -> None:
        self.n_workers = int(n_workers)
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        #: Seconds without any chunk completing (workers alive) before a
        #: batch is declared stalled and finished in-process.
        self.stall_timeout = float(stall_timeout)
        self._closed_inprocess = False
        self._inprocess_lock = threading.Lock()
        if self.n_workers <= 1:
            self._state: _PoolState | None = None
            self._stats = EncodePoolStats()
            self._finalizer = None
            return
        ctx = multiprocessing.get_context(start_method or _default_start_method())
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        state = _PoolState(
            ctx,
            self.n_workers,
            warmup_quality,
            max_free_slabs,
            worker_main=_encode_worker_main,
            worker_name="pcr-encode",
            stats=EncodePoolStats(),
        )
        self._state = state
        self._stats = state.stats
        with state.lock:
            state.ensure_workers()
        self._finalizer = weakref.finalize(self, _PoolState.shutdown, state)

    # -- introspection ----------------------------------------------------

    @property
    def stats(self) -> EncodePoolStats:
        return self._stats

    @property
    def closed(self) -> bool:
        if self._state is not None:
            return self._state.closed
        return self._closed_inprocess

    # -- encoding ---------------------------------------------------------

    def encode_batch(
        self,
        images,
        *,
        quality: int = 90,
        subsampling: int = SUBSAMPLING_420,
        layout: str = "progressive",
    ) -> list[bytes]:
        """Encode a minibatch of images; identical to in-process encoding."""
        images = list(images)
        if not images:
            return []
        state = self._state
        if state is None:
            return self._encode_inprocess(images, quality, subsampling, layout)
        with state.lock:
            if state.closed:
                return self._encode_inprocess(images, quality, subsampling, layout)
            return self._encode_parallel(state, images, quality, subsampling, layout)

    def _encode_inprocess(self, images, quality, subsampling, layout) -> list[bytes]:
        from repro.codecs.progressive import encode_progressive_batch

        # The pool's contract is identity with *fast-path* encoding (workers
        # pin it on); the in-process degradations must match even when the
        # caller has toggled the scalar reference path globally.
        with codec_config.use_fastpath(True):
            streams = encode_progressive_batch(
                images, quality=quality, subsampling=subsampling, layout=layout
            )
        with self._inprocess_lock:
            self._stats.batches += 1
            self._stats.images_encoded += len(images)
            self._stats.pixel_bytes_in += sum(im.pixels.nbytes for im in images)
            self._stats.encoded_bytes_out += sum(len(s) for s in streams)
        return streams

    def _encode_parallel(
        self, state: _PoolState, images, quality, subsampling, layout
    ) -> list[bytes]:
        from repro.codecs.progressive import encode_progressive_batch

        state.ensure_workers()
        if not state.workers:
            # Respawning is disabled and the fleet is gone: encode in-process
            # without touching the (fresh, empty) queues.
            state.stats.fallback_batches += 1
            return self._encode_inprocess(images, quality, subsampling, layout)
        shapes: list[tuple[int, ...]] = []
        sizes: list[int] = []
        offsets: list[int] = []
        total = 0
        for image in images:
            pixels = image.pixels
            shapes.append(pixels.shape)
            sizes.append(pixels.nbytes)
            offsets.append(total)
            total += pixels.nbytes
        slab = state.acquire_slab(total)
        try:
            # Lay the chunk's pixels out back-to-back in the slab: one
            # memcpy per image is the only parent-side pixel movement.
            for image, offset, nbytes in zip(images, offsets, sizes):
                region = np.frombuffer(
                    slab.shm.buf, dtype=np.uint8, count=nbytes, offset=offset
                )
                region[:] = image.pixels.reshape(-1)
                del region
            # Balance chunks by *pixel* bytes: encode cost scales with the
            # uncompressed size, unlike decode (compressed bytes).
            chunks = _chunk_by_bytes(sizes, state.n_workers * self.chunks_per_worker)
            state.batch_counter += 1
            batch_id = state.batch_counter
            params = (quality, subsampling, layout)
            for chunk_id, indices in enumerate(chunks):
                jobs = [(offsets[i], sizes[i], shapes[i]) for i in indices]
                state.tasks.put((batch_id, chunk_id, slab.shm.name, params, jobs))
            pending = set(range(len(chunks)))
            chunk_streams: dict[int, list[bytes]] = {}
            failed = not state.workers
            last_progress = time.monotonic()
            while pending and not failed:
                try:
                    done_batch, done_chunk, error, streams, delta = state.results.get(
                        timeout=_POLL_SECONDS
                    )
                except Empty:
                    if any(not worker.is_alive() for worker in state.workers):
                        failed = True
                    elif time.monotonic() - last_progress > self.stall_timeout:
                        state.stats.last_worker_error = "batch stalled"
                        failed = True
                    continue
                if done_batch != batch_id:
                    continue  # stale result from an aborted batch
                if error is not None:
                    state.stats.last_worker_error = error
                    failed = True
                    break
                chunk_streams[done_chunk] = streams
                pending.discard(done_chunk)
                last_progress = time.monotonic()
                if delta:
                    # Fold the worker's per-chunk registry delta into the
                    # parent: fleet ingest metrics equal in-process metrics.
                    obs_metrics.get_registry().merge(delta)

            results: list = [None] * len(images)
            for chunk_id, streams in chunk_streams.items():
                for index, stream in zip(chunks[chunk_id], streams):
                    results[index] = stream
            if failed:
                # Completed chunks keep their streams (identical either
                # way); tear the fleet down to a clean slate and encode the
                # unfinished remainder in-process.
                state.stats.fallback_batches += 1
                state.restart_fleet()
                fallback = sorted(
                    index for chunk_id in pending for index in chunks[chunk_id]
                )
                with codec_config.use_fastpath(True):
                    encoded = encode_progressive_batch(
                        [images[i] for i in fallback],
                        quality=quality,
                        subsampling=subsampling,
                        layout=layout,
                    )
                for index, stream in zip(fallback, encoded):
                    results[index] = stream
            state.stats.batches += 1
            if chunk_streams:
                # Only count batches where workers actually encoded chunks.
                state.stats.parallel_batches += 1
            state.stats.images_encoded += len(images)
            state.stats.pixel_bytes_in += total
            state.stats.encoded_bytes_out += sum(len(s) for s in results)
            return results
        finally:
            # Outputs are plain bytes — nothing views the slab after the
            # batch, so it returns to the pool immediately (no leases).
            _release_slab(state, slab)

    # -- lifecycle --------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers and release every pooled shared-memory slab.

        Encoding through a closed pool transparently runs in-process.
        """
        self._closed_inprocess = True
        if self._state is not None:
            self._state.shutdown(timeout=timeout)
        if self._finalizer is not None:
            self._finalizer.detach()

    def __enter__(self) -> "EncodePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
