"""Image container used throughout the codec and the PCR pipeline.

The library does not depend on PIL, so images are plain ``uint8`` numpy
arrays wrapped in a tiny container that carries shape metadata and provides
the couple of raw-format serialization helpers the examples use.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

_RAW_MAGIC = b"RIMG"


@dataclass(frozen=True)
class ImageBuffer:
    """An 8-bit image held as an ``(H, W, C)`` or ``(H, W)`` numpy array.

    Attributes
    ----------
    pixels:
        ``uint8`` array.  Grayscale images are 2-D; colour images are 3-D
        with ``C == 3`` (RGB channel order).
    """

    pixels: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.pixels)
        if arr.dtype != np.uint8:
            raise TypeError(f"ImageBuffer requires uint8 pixels, got {arr.dtype}")
        if arr.ndim == 2:
            pass
        elif arr.ndim == 3:
            if arr.shape[2] != 3:
                raise ValueError(
                    f"colour images must have 3 channels, got {arr.shape[2]}"
                )
        else:
            raise ValueError(f"expected 2-D or 3-D pixel array, got shape {arr.shape}")

    @property
    def height(self) -> int:
        """Image height in pixels."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Image width in pixels."""
        return int(self.pixels.shape[1])

    @property
    def channels(self) -> int:
        """Number of channels (1 for grayscale, 3 for RGB)."""
        return 1 if self.pixels.ndim == 2 else int(self.pixels.shape[2])

    @property
    def is_color(self) -> bool:
        """Whether the image has three colour channels."""
        return self.channels == 3

    def as_float(self) -> np.ndarray:
        """Return the pixels as ``float64`` in ``[0, 255]``."""
        return self.pixels.astype(np.float64)

    def to_grayscale(self) -> "ImageBuffer":
        """Return a grayscale (luma) version of this image."""
        if not self.is_color:
            return self
        rgb = self.as_float()
        luma = 0.299 * rgb[..., 0] + 0.587 * rgb[..., 1] + 0.114 * rgb[..., 2]
        return ImageBuffer(np.clip(np.round(luma), 0, 255).astype(np.uint8))

    def to_raw_bytes(self) -> bytes:
        """Serialize to a simple uncompressed raw format (header + pixels)."""
        header = _RAW_MAGIC + struct.pack(
            "<HHB", self.height, self.width, self.channels
        )
        return header + self.pixels.tobytes()

    @classmethod
    def from_raw_bytes(cls, data: bytes) -> "ImageBuffer":
        """Deserialize an image produced by :meth:`to_raw_bytes`."""
        if data[:4] != _RAW_MAGIC:
            raise ValueError("not a raw image buffer (bad magic)")
        height, width, channels = struct.unpack("<HHB", data[4:9])
        body = np.frombuffer(data[9:], dtype=np.uint8)
        expected = height * width * channels
        if body.size != expected:
            raise ValueError(
                f"raw image payload has {body.size} bytes, expected {expected}"
            )
        shape = (height, width) if channels == 1 else (height, width, channels)
        return cls(body.reshape(shape).copy())

    @classmethod
    def from_array(cls, array: np.ndarray) -> "ImageBuffer":
        """Build an image from any numeric array by clipping to ``[0, 255]``.

        Dtype-preserving fast paths: ``uint8`` input skips the float64
        round-trip entirely (a read-only array is wrapped without copying;
        a writeable one is copied so later caller mutations cannot corrupt
        the frozen buffer or its cached hash), and float input is
        rounded/clipped in its own precision — ``np.round`` over float32
        matches the float64 result exactly, since the cast up is
        value-preserving.
        """
        array = np.asarray(array)
        if array.dtype == np.uint8:
            return cls(array.copy() if array.flags.writeable else array)
        if array.dtype.kind in "iu":
            return cls(np.clip(array, 0, 255).astype(np.uint8))
        return cls(np.clip(np.round(array), 0, 255).astype(np.uint8))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ImageBuffer):
            return NotImplemented
        return (
            self.pixels.shape == other.pixels.shape
            and bool(np.array_equal(self.pixels, other.pixels))
        )

    def __hash__(self) -> int:  # frozen dataclass requires explicit hash with __eq__
        # ``pixels.tobytes()`` copies the whole image; hashing a frozen
        # value twice should not.  Cached via object.__setattr__ because the
        # dataclass is frozen (the pixel array is treated as immutable).
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.pixels.shape, self.pixels.tobytes()))
            object.__setattr__(self, "_hash", cached)
        return cached
