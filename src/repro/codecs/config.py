"""Runtime toggle for the vectorized codec fast paths.

``FASTPATH`` gates both the table-driven entropy coder in
:mod:`repro.codecs.fastpath` and the batched float32 pixel pipeline in
:mod:`repro.codecs.pixelpath`.  It defaults to on; set the environment
variable ``REPRO_CODEC_FASTPATH=0`` (before import) or call
:func:`set_fastpath` / :func:`use_fastpath` to fall back to the scalar
reference implementations (per-symbol entropy loops, float64 per-stage
pixel reconstruction), which are kept for differential testing.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

FASTPATH: bool = os.environ.get("REPRO_CODEC_FASTPATH", "1").lower() not in (
    "0",
    "false",
    "no",
    "off",
)


def fastpath_enabled() -> bool:
    """Return whether the fast path is currently enabled."""
    return FASTPATH


def set_fastpath(enabled: bool) -> None:
    """Enable or disable the fast path globally."""
    global FASTPATH
    FASTPATH = bool(enabled)


@contextmanager
def use_fastpath(enabled: bool):
    """Temporarily force the fast path on or off within a ``with`` block."""
    global FASTPATH
    previous = FASTPATH
    FASTPATH = bool(enabled)
    try:
        yield
    finally:
        FASTPATH = previous
