"""Runtime toggles for the vectorized codec fast paths.

``FASTPATH`` gates both the table-driven entropy coder in
:mod:`repro.codecs.fastpath` and the batched float32 pixel pipeline in
:mod:`repro.codecs.pixelpath`.  It defaults to on; set the environment
variable ``REPRO_CODEC_FASTPATH=0`` (before import) or call
:func:`set_fastpath` / :func:`use_fastpath` to fall back to the scalar
reference implementations (per-symbol entropy loops, float64 per-stage
pixel reconstruction), which are kept for differential testing.

``SUPERSCALAR`` selects, *within* the entropy fast path, the multi-symbol
decode loops driven by the wide-window pair LUT (one probe resolves up
to two complete ``(code, magnitude)`` symbols — see
``docs/performance.md``).  It defaults to on and only matters while
``FASTPATH`` is on; disabling it (``REPRO_CODEC_SUPERSCALAR=0`` or
:func:`set_superscalar` / :func:`use_superscalar`) falls back to the
single-symbol two-level LUT loops, which remain the mid-tier differential
reference between the scalar coder and the superscalar loops.
"""

from __future__ import annotations

import os
from contextlib import contextmanager


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "1").lower() not in ("0", "false", "no", "off")


FASTPATH: bool = _env_flag("REPRO_CODEC_FASTPATH")

SUPERSCALAR: bool = _env_flag("REPRO_CODEC_SUPERSCALAR")


def fastpath_enabled() -> bool:
    """Return whether the fast path is currently enabled."""
    return FASTPATH


def set_fastpath(enabled: bool) -> None:
    """Enable or disable the fast path globally."""
    global FASTPATH
    FASTPATH = bool(enabled)


@contextmanager
def use_fastpath(enabled: bool):
    """Temporarily force the fast path on or off within a ``with`` block."""
    global FASTPATH
    previous = FASTPATH
    FASTPATH = bool(enabled)
    try:
        yield
    finally:
        FASTPATH = previous


def superscalar_enabled() -> bool:
    """Return whether the superscalar entropy decode loops are enabled."""
    return SUPERSCALAR


def set_superscalar(enabled: bool) -> None:
    """Enable or disable the superscalar entropy decode loops globally."""
    global SUPERSCALAR
    SUPERSCALAR = bool(enabled)


@contextmanager
def use_superscalar(enabled: bool):
    """Temporarily force the superscalar loops on or off within a block."""
    global SUPERSCALAR
    previous = SUPERSCALAR
    SUPERSCALAR = bool(enabled)
    try:
        yield
    finally:
        SUPERSCALAR = previous
