"""Batched float32 fast path for the pixel half of the *encoder*.

This is the forward twin of :mod:`repro.codecs.pixelpath`.  The scalar
encoder builds coefficient planes in five float64 stages — colour
conversion, chroma subsample, block split, ``scipy`` forward DCT,
quantize + zigzag — allocating fresh arrays at every step.  Here the
whole forward transform collapses into a handful of float32 primitives
over whole channels:

* **Fused colour conversion + level shift.**  RGB→YCbCr is one
  ``(H*W, 3) @ (3, 3)`` float32 matmul.  The scalar path adds +128 to
  centre the chroma channels and later subtracts 128 from *every*
  channel before the DCT; those two shifts cancel on chroma, so the fast
  path folds the net effect into a bias vector: Y comes out of the
  matmul already level-shifted (``Y - 128``) and Cb/Cr come out centred
  at 0 with no shift at all.
* **Strided 4:2:0 downsample.**  The 2x2 box filter is four strided
  adds and one scale into a reused buffer (plus exact edge-replication
  handling for odd dimensions), no ``reshape``/``mean`` temporaries.
* **Zero-copy block layout.**  :func:`~repro.codecs.blocks.split_into_blocks_view`
  exposes the padded channel as ``(nv, nh, 8, 8)`` blocks without
  copying pixels; one strided assignment lays them out as the
  ``(n_blocks, 64)`` gemm operand (the mirror of the decode side's
  ``merge_blocks_into``).
* **Fused quantize + forward DCT.**  The orthonormal 2-D DCT of a block
  is ``D @ X @ D.T``, which flattens to ``coeff_flat = kron(D, D) @
  x_flat``; selecting zigzag index ``z`` picks row ``ZIGZAG_ORDER[z]``,
  which is exactly the *transpose* of the decode side's ``_IDCT_ZZ``
  operator.  Dividing column ``z`` by that coefficient's quantization
  step folds quantization into the same operator, so one
  ``(n_blocks, 64) @ (64, 64)`` sgemm per component takes level-shifted
  spatial samples straight to *quantized* zigzag coefficients; a single
  in-place ``np.rint`` and one int32 cast finish the plane.  Bases are
  cached per quantization table, exactly like
  :func:`~repro.codecs.pixelpath.scaled_inverse_basis`.

Work buffers live in a :class:`~repro.codecs.pixelpath.PixelScratch`
(``fwd_*`` roles, disjoint from the decode roles), so batch encoding
(:func:`repro.codecs.progressive.encode_progressive_batch`) reuses every
intermediate across the images of a chunk.

Parity / error budget
---------------------

Unlike the entropy stage — where the fast and scalar coders emit
byte-identical streams — the fused forward transform *relaxes
byte-identity*.  Quantization rounds ``coefficient / step`` to the
nearest integer, and that rounding cannot be folded into the matmul: the
fast path rounds a float32 quotient whose arithmetic (fused operator,
different summation order) differs from the scalar float64 quotient by a
relative ~1e-6.  Where a quotient lands within that distance of a
half-integer rounding tie, the two paths round to *adjacent* integers.
The documented budget, enforced by ``tests/test_codecs_encodepath.py``
across scan groups, colour layouts and odd sizes, is:

* every quantized coefficient differs by **at most 1 quant step** from
  the scalar float64 reference;
* the off-by-one *rate* is at most ``MAX_MISMATCH_RATE`` (1e-3) of all
  coefficients on a corpus — measured rates are orders of magnitude
  below;
* images decoded from the two encodes agree to a PSNR of at least
  ``MIN_PARITY_PSNR_DB`` (45 dB) — visually indistinguishable, and far
  above the quality loss of even the finest quantization step.

The scalar float64 path survives behind ``use_fastpath(False)`` as the
differential reference, and benchmarks assert this budget on their
workload *before* timing anything (``bench_codec_throughput.py
--ingest-only``).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.codecs.blocks import BLOCK_SIZE, pad_to_block_multiple, split_into_blocks_view
from repro.codecs.color import _RGB_TO_YCBCR
from repro.codecs.markers import SUBSAMPLING_420
from repro.codecs.pixelpath import _IDCT_ZZ, PixelScratch, _thread_scratch
from repro.codecs.zigzag import N_COEFFICIENTS, ZIGZAG_ORDER

__all__ = [
    "MAX_MISMATCH_RATE",
    "MIN_PARITY_PSNR_DB",
    "encode_to_planes",
    "scaled_forward_basis",
]

#: Documented error budget: fraction of quantized coefficients allowed to
#: differ (by exactly ±1) from the scalar float64 reference on a corpus.
MAX_MISMATCH_RATE = 1e-3

#: Documented error budget: minimum PSNR between images decoded from a
#: fast-path encode and from the scalar-reference encode of the same input.
MIN_PARITY_PSNR_DB = 45.0

#: Transposed float32 RGB→YCbCr matrix (``rgb_rows @ _YCC_MATRIX_T``) and
#: the bias folding the DCT level shift into the conversion: the scalar
#: path computes ``ycc + (0, 128, 128)`` then subtracts 128 from every
#: channel before the DCT, so the net shift is ``(-128, 0, 0)``.
_YCC_MATRIX_T = np.ascontiguousarray(_RGB_TO_YCBCR.T, dtype=np.float32)
_YCC_LEVEL_BIAS = np.array([-128.0, 0.0, 0.0], dtype=np.float32)

#: Quantization-table bytes -> float32 scaled forward basis.  Same bounded
#: FIFO idiom as the decode-side basis / Huffman LUT caches.
_FWD_BASIS_CACHE: dict[bytes, np.ndarray] = {}
_FWD_BASIS_CACHE_MAX = 256
_FWD_BASIS_LOCK = threading.Lock()


def scaled_forward_basis(table: np.ndarray) -> np.ndarray:
    """The per-table fused forward-DCT + quantize operator, cached.

    ``quantized_zigzag_float = spatial_flat @ basis`` where ``basis[p, z]``
    carries the DCT weight of pixel ``p`` on zigzag coefficient ``z``,
    pre-divided by that coefficient's quantization step — quantization
    (bar the final rounding) disappears into the matmul.  Numerically
    ``basis == (_IDCT_ZZ / steps[:, None]).T``: the orthonormal forward
    operator is the transpose of the decode side's inverse operator.
    """
    table = np.asarray(table, dtype=np.float64)
    key = table.tobytes()
    basis = _FWD_BASIS_CACHE.get(key)
    if basis is None:
        steps = table.reshape(N_COEFFICIENTS)[ZIGZAG_ORDER]
        basis = np.ascontiguousarray(
            (_IDCT_ZZ / steps[:, None]).T.astype(np.float32)
        )
        with _FWD_BASIS_LOCK:
            if len(_FWD_BASIS_CACHE) >= _FWD_BASIS_CACHE_MAX:
                _FWD_BASIS_CACHE.pop(next(iter(_FWD_BASIS_CACHE)))
            _FWD_BASIS_CACHE[key] = basis
    return basis


def _subsample_420_into(channel: np.ndarray, out: np.ndarray) -> None:
    """2x2 box-filter downsample of ``channel`` into ``out`` (both float32).

    Strided equivalent of :func:`repro.codecs.color.subsample_420`:
    four strided adds over the even core, with odd trailing rows/columns
    handled by explicit edge replication (a duplicated edge sample means
    the 2x2 mean degenerates to a 2x1 mean, and the odd corner passes
    through unchanged).  ``channel`` may be any strided 2-D view.
    """
    h, w = channel.shape
    eh, ew = h - (h % 2), w - (w % 2)
    core = out[: eh // 2, : ew // 2]
    np.add(channel[0:eh:2, 0:ew:2], channel[0:eh:2, 1:ew:2], out=core)
    core += channel[1:eh:2, 0:ew:2]
    core += channel[1:eh:2, 1:ew:2]
    core *= 0.25
    if w % 2:
        edge = channel[:, w - 1]
        np.add(edge[0:eh:2], edge[1:eh:2], out=out[: eh // 2, -1])
        out[: eh // 2, -1] *= 0.5
    if h % 2:
        edge = channel[h - 1, :]
        np.add(edge[0:ew:2], edge[1:ew:2], out=out[-1, : ew // 2])
        out[-1, : ew // 2] *= 0.5
        if w % 2:
            out[-1, -1] = channel[h - 1, w - 1]


def _channel_to_plane(
    channel: np.ndarray, table: np.ndarray, index: int, scratch: PixelScratch
) -> np.ndarray:
    """One level-shifted float32 channel -> quantized int32 zigzag plane.

    Pads to a block multiple (edge replication — replicating an already
    level-shifted sample is identical to shifting a replicated one),
    lays the 8x8 blocks out as the gemm operand with one strided
    assignment, multiplies by the cached scaled forward basis, and
    rounds in place.  The returned int32 plane is freshly allocated (it
    outlives the scratch); everything else is reused.
    """
    padded = pad_to_block_multiple(channel)
    nv, nh = padded.shape[0] // BLOCK_SIZE, padded.shape[1] // BLOCK_SIZE
    blocks = scratch.get(("fwd_blocks", index), (nv * nh, N_COEFFICIENTS))
    blocks.reshape(nv, nh, BLOCK_SIZE, BLOCK_SIZE)[:] = split_into_blocks_view(padded)
    coeff = scratch.get(("fwd_coeff", index), (nv * nh, N_COEFFICIENTS))
    np.matmul(blocks, scaled_forward_basis(table), out=coeff)
    np.rint(coeff, out=coeff)
    return coeff.astype(np.int32)


def encode_to_planes(
    image, tables, subsampling: int, scratch: PixelScratch | None = None
) -> list[np.ndarray]:
    """Forward-transform an image into quantized int32 zigzag planes.

    ``image`` is an :class:`~repro.codecs.image.ImageBuffer`; ``tables`` a
    :class:`~repro.codecs.quantization.QuantizationTables`.  Returns one
    ``(n_blocks, 64)`` int32 plane per component (1 for grayscale, 3 for
    colour), matching the scalar
    :func:`repro.codecs.progressive.image_to_coefficients` within the
    module-level error budget.  With a ``scratch``, the only allocations
    are the returned planes (and ``np.pad`` copies for odd sizes).
    """
    if scratch is None:
        scratch = _thread_scratch()
    height, width = image.height, image.width
    if not image.is_color:
        chan = scratch.get(("fwd_gray",), (height, width))
        np.copyto(chan, image.pixels, casting="unsafe")
        chan -= 128.0
        return [_channel_to_plane(chan, tables.table_for_component(0), 0, scratch)]

    n_pixels = height * width
    rgb = scratch.get(("fwd_rgb",), (n_pixels, 3))
    np.copyto(rgb, image.pixels.reshape(n_pixels, 3), casting="unsafe")
    ycc = scratch.get(("fwd_ycc",), (n_pixels, 3))
    np.matmul(rgb, _YCC_MATRIX_T, out=ycc)
    ycc += _YCC_LEVEL_BIAS
    ycc = ycc.reshape(height, width, 3)

    luma = scratch.get(("fwd_luma",), (height, width))
    luma[:] = ycc[..., 0]
    planes = [_channel_to_plane(luma, tables.table_for_component(0), 0, scratch)]
    if subsampling == SUBSAMPLING_420:
        ch, cw = (height + 1) // 2, (width + 1) // 2
        for index in (1, 2):
            sub = scratch.get(("fwd_sub", index), (ch, cw))
            _subsample_420_into(ycc[..., index], sub)
            planes.append(
                _channel_to_plane(sub, tables.table_for_component(index), index, scratch)
            )
    else:
        for index in (1, 2):
            chroma = scratch.get(("fwd_chroma", index), (height, width))
            chroma[:] = ycc[..., index]
            planes.append(
                _channel_to_plane(chroma, tables.table_for_component(index), index, scratch)
            )
    return planes
