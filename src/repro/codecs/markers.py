"""Stream markers, frame headers, and scan headers for the PCR codec.

The on-disk structure mirrors JPEG:

* ``SOI`` (start of image) and ``EOI`` (end of image) two-byte markers.
* One ``SOF`` (start of frame) segment carrying image dimensions, the number
  of components, the chroma subsampling mode, and the quantization tables.
* One ``SOS`` (start of scan) segment per scan.  Each scan header names the
  components it covers, the spectral-selection band ``[ss, se]``, and carries
  the scan's optimized Huffman table followed by the entropy-coded data.

Because each ``SOS`` segment records its own length, scan boundaries can be
located with a single linear pass (`find_scan_segments`), which is how the
PCR encoder carves a progressive stream into scan groups — the role that
"searching for the markers that designate the end of a scan" plays in the
paper (Section 3.2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.codecs.quantization import QuantizationTables

SOI = b"\xff\xd8"
EOI = b"\xff\xd9"
SOF_MARKER = b"\xff\xc0"
SOS_MARKER = b"\xff\xda"

SUBSAMPLING_NONE = 0
SUBSAMPLING_420 = 1


class CodecFormatError(ValueError):
    """Raised when a byte stream is not a valid PCR-codec stream."""


@dataclass(frozen=True)
class FrameHeader:
    """Image-level parameters shared by every scan."""

    height: int
    width: int
    n_components: int
    subsampling: int
    quant_tables: QuantizationTables

    def component_shape(self, component_index: int) -> tuple[int, int]:
        """Pixel dimensions of a component (chroma may be subsampled)."""
        if component_index == 0 or self.subsampling == SUBSAMPLING_NONE:
            return self.height, self.width
        return (self.height + 1) // 2, (self.width + 1) // 2

    def to_bytes(self) -> bytes:
        payload = (
            struct.pack("<HHBB", self.height, self.width, self.n_components, self.subsampling)
            + self.quant_tables.to_bytes()
        )
        return SOF_MARKER + struct.pack("<H", len(payload)) + payload

    @classmethod
    def parse(cls, data: bytes, offset: int) -> tuple["FrameHeader", int]:
        """Parse a frame header at ``offset``; returns (header, next_offset)."""
        if data[offset : offset + 2] != SOF_MARKER:
            raise CodecFormatError("expected SOF marker")
        (length,) = struct.unpack_from("<H", data, offset + 2)
        payload_start = offset + 4
        payload = data[payload_start : payload_start + length]
        if len(payload) != length:
            raise CodecFormatError("truncated SOF segment")
        height, width, n_components, subsampling = struct.unpack_from("<HHBB", payload, 0)
        quant = QuantizationTables.from_bytes(payload[6:])
        header = cls(
            height=height,
            width=width,
            n_components=n_components,
            subsampling=subsampling,
            quant_tables=quant,
        )
        return header, payload_start + length


@dataclass(frozen=True)
class ScanHeader:
    """Per-scan parameters: components covered and spectral band."""

    component_ids: tuple[int, ...]
    spectral_start: int
    spectral_end: int

    @property
    def is_dc_scan(self) -> bool:
        """True when this scan carries DC (zigzag index 0) coefficients."""
        return self.spectral_start == 0

    @property
    def band_length(self) -> int:
        """Number of zigzag coefficients covered by the scan."""
        return self.spectral_end - self.spectral_start + 1

    def to_bytes(self) -> bytes:
        return struct.pack(
            "<B" + "B" * len(self.component_ids) + "BB",
            len(self.component_ids),
            *self.component_ids,
            self.spectral_start,
            self.spectral_end,
        )

    @classmethod
    def parse(cls, payload: bytes, offset: int) -> tuple["ScanHeader", int]:
        n_components = payload[offset]
        ids = tuple(payload[offset + 1 : offset + 1 + n_components])
        ss = payload[offset + 1 + n_components]
        se = payload[offset + 2 + n_components]
        return cls(component_ids=ids, spectral_start=ss, spectral_end=se), offset + 3 + n_components


@dataclass(frozen=True)
class ScanSegment:
    """A located scan within an encoded stream."""

    header: ScanHeader
    start: int
    end: int
    payload_start: int

    @property
    def length(self) -> int:
        """Total bytes occupied by the scan segment (marker included)."""
        return self.end - self.start


def write_scan_segment(header: ScanHeader, body: bytes) -> bytes:
    """Frame a scan header + entropy body as an SOS segment."""
    payload = header.to_bytes() + body
    return SOS_MARKER + struct.pack("<I", len(payload)) + payload


def find_scan_segments(data: bytes) -> list[ScanSegment]:
    """Locate every SOS segment in an encoded stream.

    The stream must begin with SOI followed by an SOF segment.  Scanning
    stops at EOI or at the end of the available bytes, so this also works on
    truncated (partially read) streams.
    """
    if data[:2] != SOI:
        raise CodecFormatError("stream does not start with SOI")
    _, offset = FrameHeader.parse(data, 2)
    segments: list[ScanSegment] = []
    while offset + 2 <= len(data):
        marker = data[offset : offset + 2]
        if marker == EOI:
            break
        if marker != SOS_MARKER:
            raise CodecFormatError(f"unexpected marker {marker!r} at offset {offset}")
        if offset + 6 > len(data):
            break  # truncated length field
        (length,) = struct.unpack_from("<I", data, offset + 2)
        payload_start = offset + 6
        end = payload_start + length
        if end > len(data):
            break  # truncated scan; ignore the partial tail
        header, body_start = ScanHeader.parse(data, payload_start)
        segments.append(
            ScanSegment(header=header, start=offset, end=end, payload_start=body_start)
        )
        offset = end
    return segments


def parse_frame_header(data: bytes) -> tuple[FrameHeader, int]:
    """Parse SOI + SOF at the start of a stream; returns (header, offset)."""
    if data[:2] != SOI:
        raise CodecFormatError("stream does not start with SOI")
    return FrameHeader.parse(data, 2)


def header_prefix_length(data: bytes) -> int:
    """Number of bytes before the first scan (SOI + SOF)."""
    _, offset = parse_frame_header(data)
    return offset
