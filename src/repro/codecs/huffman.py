"""Canonical Huffman coding with serializable tables.

Each scan in the PCR codec carries an optimized Huffman table for its symbol
alphabet (mirroring ``jpegtran -optimize``).  Tables are serialized in
canonical form: a list of code lengths followed by the symbols ordered by
(length, symbol value), which is the same structure as a JPEG DHT segment.

Decoding has two implementations over the same tables:

* ``decode_symbol`` — the scalar reference: one bit at a time, probing the
  ``(code, length)`` dict at each length.  Kept for differential testing.
* ``decode_symbol_fast`` — a two-level lookup table.  The primary table is
  indexed by the next ``LUT_BITS`` (8) stream bits and resolves every code of
  length <= 8 in one probe; longer codes land in a per-prefix secondary
  table indexed by the following 8 bits (``MAX_CODE_LENGTH`` is 16, so two
  levels always suffice).  Entries pack ``(code_length << 8) | symbol``; 0
  marks an invalid prefix, negative values point at a secondary table.

A third decode flavour sits on top of the two-level tables: the
*superscalar* pair LUT, a table indexed by the next 16 stream bits whose
entries fully decode up to **two** complete ``(code, magnitude)`` symbols —
including the signed coefficient value, since the magnitude bits are part of
the window the table is indexed by.  See :func:`_build_super_tables` for the
entry packing and ``docs/performance.md`` for the decode loops built on it.

LUTs and encode arrays are cached per canonical table content
(module-level), and deserialized tables per serialized payload.  Both caches
are LRU with an approximate byte budget — superscalar pair tables are an
order of magnitude larger than the two-level set (1 MiB vs ~100 KiB), so
the bound is expressed in bytes, not entries — and export
``codec.table_cache.*`` hit/miss/evict/byte metrics on the default
:mod:`repro.obs` registry.
"""

from __future__ import annotations

import heapq
import itertools
import os
import struct
import threading
from array import array
from collections import Counter, OrderedDict
from dataclasses import dataclass, field

from repro.codecs.bitio import BitReader, BitWriter
from repro.obs import get_registry

MAX_CODE_LENGTH = 16

#: Width of the primary decode LUT index.
LUT_BITS = 8

#: Width of the superscalar decode window: one probe of a ``1 << SUPER_BITS``
#: entry table resolves up to two complete (code + magnitude) symbols.
#: Tuned empirically: 13 keeps the whole working set (pair tables + walk
#: byte table) cache-resident while still pairing ~85% of real probes;
#: wider windows raise the pair rate a little but lose more to cache
#: misses and table-build cost.  Any value up to ``MAX_CODE_LENGTH`` works.
SUPER_BITS = 13

#: Offset added to the signed value field of a superscalar entry so it packs
#: as a non-negative bit field.  AC categories are a nibble (<= 15), so
#: ``|value| <= 32767`` and the offset field is always in ``[1, 65535]``
#: (0 is reserved for "no coefficient").  Fixed at ``1 << 15`` — it bounds
#: magnitudes, not windows, so it must not shrink with ``SUPER_BITS``.
SUPER_VALUE_OFFSET = 1 << 15

#: Nominal resident cost of one two-level-LUT slot (8-byte list slot plus an
#: amortized share of the int objects it references).  The byte budgets below
#: are enforced against this estimate, not ``sys.getsizeof`` walks.
_BYTES_PER_SLOT = 44

#: Exact bytes of one full superscalar table build: the two interleaved
#: pair tables (AC and DC flavours, ``2 << SUPER_BITS`` int32 slots each)
#: plus the AC walk products (two ``1 << SUPER_BITS`` int32 slot arrays and
#: one ``1 << SUPER_BITS`` byte table): ``(8 + 8 + 4 + 4 + 1) << SUPER_BITS``.
SUPER_TABLE_NBYTES = 25 << SUPER_BITS


class _LRUByteCache:
    """A thread-safe LRU mapping bounded by an approximate byte budget.

    Used for both module-level Huffman caches.  Every operation updates the
    ``codec.table_cache.<name>.*`` metrics on the default obs registry:
    ``hits_total`` / ``misses_total`` / ``evictions_total`` counters plus
    ``bytes`` and ``entries`` gauges.  Entries whose resident cost grows
    after insertion (lazily built superscalar tables) are re-accounted via
    :meth:`recharge`.

    Eviction removes an entry from the *cache* only; tables still referenced
    by live :class:`HuffmanTable` objects (or by the payload cache) keep
    their LUTs alive until those references die.
    """

    def __init__(self, name: str, max_bytes: int) -> None:
        self.name = name
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self._bytes = 0

    # Metrics are resolved per call rather than cached: registry lookups are
    # idempotent and this path runs once per scan, not per symbol.
    def _count(self, event: str, amount: int = 1) -> None:
        get_registry().counter(
            f"codec.table_cache.{self.name}.{event}_total"
        ).inc(amount)

    def _sync_gauges(self) -> None:
        registry = get_registry()
        registry.gauge(f"codec.table_cache.{self.name}.bytes").set(self._bytes)
        registry.gauge(f"codec.table_cache.{self.name}.entries").set(
            len(self._entries)
        )

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._count("misses")
                return None
            self._entries.move_to_end(key)
        self._count("hits")
        return entry[0]

    def put(self, key, value, nbytes: int) -> None:
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous[1]
            self._entries[key] = (value, int(nbytes))
            self._bytes += int(nbytes)
            evicted = self._evict_over_budget()
            self._sync_gauges()
        if evicted:
            self._count("evictions", evicted)

    def recharge(self, key, delta: int) -> None:
        """Grow an entry's accounted size in place (lazy superscalar build).

        A key evicted between the build and this call is simply ignored —
        the built tables stay alive on the table object that triggered the
        build, they are just no longer pinned by the cache.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return
            self._entries[key] = (entry[0], entry[1] + int(delta))
            self._entries.move_to_end(key)
            self._bytes += int(delta)
            evicted = self._evict_over_budget()
            self._sync_gauges()
        if evicted:
            self._count("evictions", evicted)

    def _evict_over_budget(self) -> int:
        # Always keep the most recent entry, even when it alone exceeds the
        # budget: the caller is about to use it.
        evicted = 0
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, (_, freed) = self._entries.popitem(last=False)
            self._bytes -= freed
            evicted += 1
        return evicted

    @property
    def resident_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._sync_gauges()


#: Canonical-content key -> built decode tables (see ``_TableSet``).  The
#: budget covers the two-level LUTs at insert time plus the superscalar pair
#: tables as they are lazily built (re-accounted via ``recharge``).
#: Source of :attr:`_TableSet.uid` values (never reused within a process).
_TABLE_SET_UIDS = itertools.count()

_TABLE_CACHE = _LRUByteCache(
    "luts", int(os.environ.get("REPRO_HUFFMAN_TABLE_CACHE_BYTES", 96 << 20))
)

#: Serialized-payload key -> ``(HuffmanTable, bytes_consumed)``; lets scan
#: decoders skip deserialization *and* LUT construction when the same table
#: bytes recur across scans, records, or repeated decodes of one stream.
#: Charged with key + table-object overhead only — the LUTs a cached table
#: references are accounted by the ``luts`` cache above.
_PAYLOAD_CACHE = _LRUByteCache(
    "payload", int(os.environ.get("REPRO_HUFFMAN_PAYLOAD_CACHE_BYTES", 4 << 20))
)


@dataclass
class HuffmanTable:
    """A canonical Huffman code over integer symbols in ``[0, 255]``."""

    code_lengths: dict[int, int]
    _encode_map: dict[int, tuple[int, int]] = field(default_factory=dict, repr=False)
    _decode_map: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)
    _tables: "_TableSet | None" = field(default=None, repr=False, compare=False)
    _encode_arrays: "tuple[list[int], list[int]] | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._build_codes()

    def _build_codes(self) -> None:
        ordered = sorted(self.code_lengths.items(), key=lambda kv: (kv[1], kv[0]))
        code = 0
        previous_length = 0
        self._encode_map.clear()
        self._decode_map.clear()
        self._tables = None
        self._encode_arrays = None
        for symbol, length in ordered:
            code <<= length - previous_length
            previous_length = length
            self._encode_map[symbol] = (code, length)
            self._decode_map[(code, length)] = symbol
            code += 1

    @classmethod
    def from_symbols(cls, symbols: list[int]) -> "HuffmanTable":
        """Build an optimal (length-limited) code from observed symbols."""
        return cls.from_counts(Counter(symbols))

    @classmethod
    def from_counts(cls, counts: Counter | dict[int, int]) -> "HuffmanTable":
        """Build an optimal code from a symbol-frequency mapping.

        Zero-count entries are ignored; produces the identical table to
        ``from_symbols`` on the underlying symbol sequence.
        """
        counts = Counter({s: c for s, c in counts.items() if c > 0})
        if not counts:
            # A table still needs at least one symbol to be serializable.
            return cls(code_lengths={0: 1})
        if len(counts) == 1:
            only = next(iter(counts))
            return cls(code_lengths={only: 1})
        lengths = _package_merge_lengths(counts, MAX_CODE_LENGTH)
        return cls(code_lengths=lengths)

    # -- scalar reference paths ------------------------------------------------

    def encode_symbol(self, symbol: int, writer: BitWriter) -> None:
        """Write the code for ``symbol`` to ``writer``."""
        try:
            code, length = self._encode_map[symbol]
        except KeyError as exc:
            raise KeyError(f"symbol {symbol} not present in Huffman table") from exc
        writer.write_bits(code, length)

    def decode_symbol(self, reader: BitReader) -> int:
        """Read one symbol from ``reader`` (scalar reference path)."""
        code = 0
        for length in range(1, MAX_CODE_LENGTH + 1):
            code = (code << 1) | reader.read_bit()
            symbol = self._decode_map.get((code, length))
            if symbol is not None:
                return symbol
        raise ValueError("invalid Huffman code in bit stream")

    # -- table-driven fast paths -----------------------------------------------

    def decode_tables(self) -> tuple[list[int], list[list[int]]]:
        """Return the ``(symbol, length)``-packed (primary, secondary) LUTs."""
        tables = self._table_set()
        return tables.sym_primary, tables.sym_secondary

    def scan_tables(self) -> "_TableSet":
        """Return the full table set, including the fused AC/DC scan LUTs."""
        return self._table_set()

    def encode_arrays(self) -> tuple[list[int], list[int]]:
        """Return per-symbol ``(codes, lengths)`` arrays indexed by symbol.

        Absent symbols have length 0; callers encode only symbols that were
        counted into the table, so a 0 length is never hit on valid input.
        Built directly from the code map (not via the decode-LUT cache):
        encoding uses a fresh optimized table per scan, where paying the LUT
        fill cost would be pure waste.
        """
        if self._encode_arrays is None:
            codes = [0] * 256
            lengths = [0] * 256
            for symbol, (code, length) in self._encode_map.items():
                codes[symbol] = code
                lengths[symbol] = length
            self._encode_arrays = (codes, lengths)
        return self._encode_arrays

    def _table_set(self) -> "_TableSet":
        if self._tables is None:
            key = tuple(sorted(self.code_lengths.items()))
            cached = _TABLE_CACHE.get(key)
            if cached is None:
                cached = _build_table_set(self._encode_map)
                # The pair tables are built lazily on first superscalar
                # decode; re-account their cost against this entry then.
                cached._on_super_built = lambda: _TABLE_CACHE.recharge(
                    key, SUPER_TABLE_NBYTES
                )
                _TABLE_CACHE.put(key, cached, cached.nbytes())
            self._tables = cached
        return self._tables

    def decode_symbol_fast(self, reader: BitReader) -> int:
        """Read one symbol via the two-level LUT."""
        lut, lut2 = self.decode_tables()
        word = reader.peek_bits(16)
        entry = lut[word >> 8]
        if entry < 0:
            entry = lut2[-entry - 1][word & 0xFF]
        if entry == 0:
            raise ValueError("invalid Huffman code in bit stream")
        reader.skip_bits(entry >> 8)
        return entry & 0xFF

    def encode_symbols(
        self,
        symbols,
        extras,
        writer: BitWriter,
    ) -> None:
        """Huffman-encode ``symbols`` with their ``(bits, n_bits)`` extras.

        Batched equivalent of ``encode_symbol`` + ``write_bits`` per item:
        each symbol's code and its magnitude bits are fused into a single
        ``(value, width)`` append on the writer.
        """
        codes, lengths = self.encode_arrays()
        values = []
        widths = []
        for symbol, (bits, n_bits) in zip(symbols, extras):
            length = lengths[symbol]
            if length == 0:
                raise KeyError(f"symbol {symbol} not present in Huffman table")
            values.append((codes[symbol] << n_bits) | bits)
            widths.append(length + n_bits)
        writer.write_many(values, widths)

    # -- serialization ---------------------------------------------------------

    def code_length(self, symbol: int) -> int:
        """Return the code length of ``symbol`` in bits."""
        return self.code_lengths[symbol]

    def to_bytes(self) -> bytes:
        """Serialize as a DHT-style segment: 16 length counts + symbols."""
        ordered = sorted(self.code_lengths.items(), key=lambda kv: (kv[1], kv[0]))
        counts = [0] * MAX_CODE_LENGTH
        symbols = bytearray(len(ordered))
        for index, (symbol, length) in enumerate(ordered):
            counts[length - 1] += 1
            symbols[index] = symbol
        return struct.pack("<H", len(ordered)) + bytes(counts) + bytes(symbols)

    @classmethod
    def from_bytes(cls, payload: bytes) -> tuple["HuffmanTable", int]:
        """Deserialize a table; returns ``(table, bytes_consumed)``."""
        if len(payload) < 2 + MAX_CODE_LENGTH:
            raise ValueError("Huffman table payload too short")
        (n_symbols,) = struct.unpack("<H", payload[:2])
        counts = payload[2 : 2 + MAX_CODE_LENGTH]
        symbols_start = 2 + MAX_CODE_LENGTH
        symbols_end = symbols_start + n_symbols
        if len(payload) < symbols_end:
            raise ValueError("Huffman table payload truncated")
        symbols = payload[symbols_start:symbols_end]
        if sum(counts) != n_symbols:
            raise ValueError("Huffman table length counts disagree with symbol count")
        code_lengths: dict[int, int] = {}
        cursor = 0
        for length_minus_one, count in enumerate(counts):
            for _ in range(count):
                code_lengths[symbols[cursor]] = length_minus_one + 1
                cursor += 1
        if len(code_lengths) != n_symbols:
            raise ValueError("duplicate symbol in Huffman table payload")
        return cls(code_lengths=code_lengths), symbols_end

    @classmethod
    def cached_from_bytes(cls, payload: bytes) -> tuple["HuffmanTable", int]:
        """Like :meth:`from_bytes`, but cached on the serialized table bytes.

        Repeated decodes of scans that carry the same table (across records,
        or re-decoding one stream) reuse the deserialized table *with its
        LUTs already built*.  The returned table must be treated as
        read-only.
        """
        if len(payload) < 2 + MAX_CODE_LENGTH:
            raise ValueError("Huffman table payload too short")
        (n_symbols,) = struct.unpack("<H", payload[:2])
        key = bytes(payload[: 2 + MAX_CODE_LENGTH + n_symbols])
        cached = _PAYLOAD_CACHE.get(key)
        if cached is None:
            table, consumed = cls.from_bytes(payload)
            table._table_set()
            cached = (table, consumed)
            # Charge the key plus nominal object overhead only: the LUTs the
            # table references are accounted by the "luts" cache.
            _PAYLOAD_CACHE.put(key, cached, len(key) + 512)
        return cached


class _TableSet:
    """All derived decode tables for one canonical Huffman code.

    Three packings of the same two-level (8-bit primary, 8-bit secondary)
    LUT coexist, each tuned to one decode loop.  In every flavour, entry 0
    marks an invalid prefix and a negative primary entry ``-(i + 1)`` points
    at secondary table ``i``:

    * ``sym_*`` — ``(code_length << 8) | symbol``: the generic form used by
      :meth:`HuffmanTable.decode_symbol_fast`.
    * ``ac_*`` — ``(run << 12) | (category << 6) | (code_length + category)``
      with EOB mapped to ``run = 64`` (jumps past any band and ends the
      block loop without a branch) and ZRL to ``run = 16``.  The low field
      is the *fused* bit consumption of the code plus its magnitude bits.
    * ``dc_*`` — ``(category << 12) | (code_length + category)`` where the
      category is the full symbol value (DC deltas have no run nibble).

    On top of these sit the lazily built *superscalar* pair tables
    (:meth:`superscalar_tables`, one AC and one DC flavour):
    ``SUPER_BITS``-bit-window LUTs whose entries fully decode up to two
    (code + magnitude) symbols — see :func:`_build_super_tables` for the
    packing — plus the de-interleaved AC *walk* products
    (:meth:`walk_tables`) that drive the vectorized batch walk in
    ``fastpath``.  They are built on the first superscalar decode of a
    given table, not at construction, so encode-only and
    scalar/single-symbol users never pay for them.
    """

    __slots__ = (
        "sym_primary",
        "sym_secondary",
        "ac_primary",
        "ac_secondary",
        "dc_primary",
        "dc_secondary",
        "uid",
        "_encode_map",
        "_super",
        "_super_lock",
        "_on_super_built",
    )

    def __init__(
        self,
        sym_primary: list[int],
        sym_secondary: list[list[int]],
        ac_primary: list[int],
        ac_secondary: list[list[int]],
        dc_primary: list[int],
        dc_secondary: list[list[int]],
        encode_map: dict[int, tuple[int, int]],
    ) -> None:
        self.sym_primary = sym_primary
        self.sym_secondary = sym_secondary
        self.ac_primary = ac_primary
        self.ac_secondary = ac_secondary
        self.dc_primary = dc_primary
        self.dc_secondary = dc_secondary
        self._encode_map = encode_map
        #: Process-unique id, stable for the life of this set.  Decode-side
        #: caches keyed on table identity (e.g. the stacked walk tables in
        #: :mod:`repro.codecs.fastpath`) use this instead of ``id()``, which
        #: the allocator may reuse after a cache eviction.
        self.uid = next(_TABLE_SET_UIDS)
        self._super = None
        self._super_lock = threading.Lock()
        self._on_super_built = None

    def nbytes(self) -> int:
        """Approximate resident bytes of the two-level LUTs (cache charge)."""
        n_tables = 1 + len(self.sym_secondary)
        return 3 * n_tables * (1 << LUT_BITS) * _BYTES_PER_SLOT

    def superscalar_tables(self):
        """Return ``(ac_pair, dc_pair)``, built lazily.

        Each is an interleaved ``array('i')`` of ``2 << SUPER_BITS`` packed
        entries: for a window ``w``, slot ``2 * w`` holds the first symbol
        and slot ``2 * w + 1`` the second — see :func:`_build_super_tables`.
        """
        return self._super_products()[:2]

    def walk_tables(self):
        """Return ``(slots1, slots2, pairbits)`` for the batched AC walk.

        ``slots1`` / ``slots2`` are ``numpy.int32`` arrays of ``1 << SUPER_BITS``
        entries holding the first and second packed symbol per window (the
        de-interleaved AC pair table; ``slots1`` keeps the 0 = invalid /
        ``-1`` = fallback sentinels).  ``pairbits`` is a ``numpy.uint8``
        array whose entry is the *total* bit consumption of every symbol
        that fully fits in the window — the stride of one walk step — and
        0 where the walk must escape to the two-level path (invalid prefix
        or oversized first code).  Built with and cached alongside the
        pair tables.
        """
        return self._super_products()[2:]

    def _super_products(self):
        tables = self._super
        if tables is None:
            with self._super_lock:
                tables = self._super
                if tables is None:
                    tables = _build_super_tables(self._encode_map)
                    self._super = tables
                    callback = self._on_super_built
                    if callback is not None:
                        callback()
        return tables


def _build_super_tables(encode_map: dict[int, tuple[int, int]]):
    """Build the wide-window superscalar pair LUTs (AC and DC flavours).

    Returns ``(ac_pair, dc_pair, slots1, slots2, pairbits)``.  The first two
    are *interleaved* tables of ``2 << SUPER_BITS`` entries, one per
    flavour.  For a window ``w`` of the next ``SUPER_BITS`` stream bits
    (MSB-first), slot ``2 * w`` fully decodes the first symbol in the
    window and slot ``2 * w + 1`` the symbol that follows it — nonzero only
    when that second symbol's code + magnitude also fit in the window.  One
    index computation (the decode loops probe ``pair[w2]`` then
    ``pair[w2 | 1]`` with ``w2 = 2 * w``) resolves up to two complete
    symbols, and interleaving keeps both slots on one cache line.

    ``slots1`` / ``slots2`` / ``pairbits`` are the de-interleaved AC-flavour
    walk products documented on :meth:`_TableSet.walk_tables`.

    First-slot entries: ``0`` — invalid prefix (``ValueError``); ``-1`` —
    the first symbol's code + magnitude exceed 16 bits and the decode loop
    must fall back to the two-level path; otherwise a packed symbol.
    Second-slot entries: ``0`` — no second symbol fit; otherwise a packed
    symbol.  A packed symbol is ``consume | (posdelta << 5) | (voff << 12)``:

    * ``consume`` (bits 0–4): fused code + magnitude bit consumption,
      *per symbol* — the second symbol's bits are only consumed if the
      decode loop commits it (it may belong to the next block, which the
      table cannot know).
    * ``posdelta`` (bits 5–11): how far the symbol advances the in-band
      position — the zero-run *plus one* when the symbol carries a
      coefficient.  EOB is mapped to 64 (jumps past any band) and ZRL to
      16; a zero-category symbol with a nonzero run (the documented
      invalid-stream divergence treatment) advances by its bare run.
      Storing the fused advance instead of the raw run makes position
      tracking a single unconditional add and — crucially — makes
      ``cumsum(posdelta)`` over a whole scan's entry stream reconstruct
      every coefficient position *after the fact*, which is what the
      batched scan decode in :mod:`repro.codecs.fastpath` exploits.
      Always 0 in the DC flavour.
    * ``voff`` (bits 12–28): the decoded *signed* coefficient (AC) or DC
      diff plus ``SUPER_VALUE_OFFSET``.  In the AC flavour 0 means "no
      coefficient to write" (pure run: EOB / ZRL / the zero-category
      treatment above); real values are in ``[1, 65535]`` because an
      in-window magnitude has category <= 15.  The DC flavour always
      stores ``diff + SUPER_VALUE_OFFSET``.

    Packed symbols stay under 2**29, so every unpacking operation in the
    decode loops runs on CPython compact (single-digit) ints — packing
    both symbols into one wide entry was measurably *slower* because all
    field extractions became multi-digit big-int arithmetic.  Storage is
    ``array('i')`` (4 bytes/slot): denser than a list of int objects
    (~512 KiB instead of ~4.6 MiB per pair table, which also keeps the
    probe's working set cache-resident) and faster to build (one memcpy
    from the NumPy int32 buffer instead of 131072 ``PyLong`` boxes).

    Pairing is resolved in-table: the window shifted left by the first
    symbol's consumption (zero-filled) is probed against the same table,
    and the hit is kept only when the second symbol's consumption fits in
    the remaining real bits — in that case the prefix property guarantees
    the zero-filled probe resolved the true next symbol.

    Built with NumPy slice fills per code (a few hundred range assignments
    instead of ~200k Python loop iterations per flavour).
    """
    import numpy as np

    size = 1 << SUPER_BITS
    window = np.arange(size, dtype=np.int64)
    tables: list[array] = []
    for flavour in ("ac", "dc"):
        consume = np.zeros(size, dtype=np.int64)
        posdelta = np.zeros(size, dtype=np.int64)
        value = np.zeros(size, dtype=np.int64)
        valid = np.zeros(size, dtype=bool)
        fallback = np.zeros(size, dtype=bool)
        for symbol, (code, length) in encode_map.items():
            if flavour == "ac":
                if symbol == 0x00:  # EOB: jump past any band
                    sym_run, category = 64, 0
                elif symbol == 0xF0:  # ZRL: skip 16 zeros
                    sym_run, category = 16, 0
                else:
                    sym_run, category = symbol >> 4, symbol & 0x0F
            else:
                sym_run, category = 0, symbol
            if length > SUPER_BITS:
                # The code itself overflows the window: every window whose
                # bits are a prefix of this code (exactly one, since the
                # code is longer) must escape to the two-level path.
                fallback[code >> (length - SUPER_BITS)] = True
                continue
            span = 1 << (SUPER_BITS - length)
            base = code << (SUPER_BITS - length)
            window_slice = slice(base, base + span)
            # Guard before any `1 << category` shift: DC categories are raw
            # symbol values (up to 255) and would overflow int64.
            if length + category > SUPER_BITS:
                fallback[window_slice] = True
                continue
            consume[window_slice] = length + category
            if flavour == "ac":
                posdelta[window_slice] = sym_run + (1 if category else 0)
            valid[window_slice] = True
            if category:
                shift = SUPER_BITS - length - category
                magnitude = (np.arange(span, dtype=np.int64) >> shift) & (
                    (1 << category) - 1
                )
                signed = np.where(
                    magnitude >= (1 << (category - 1)),
                    magnitude,
                    magnitude - ((1 << category) - 1),
                )
                value[window_slice] = signed + SUPER_VALUE_OFFSET
            elif flavour == "dc":
                value[window_slice] = SUPER_VALUE_OFFSET
        first = np.where(valid, consume | (posdelta << 5) | (value << 12), 0)
        shifted = (window << consume) & (size - 1)
        second = first[shifted]
        second_consume = second & 31
        pair = (
            valid
            & (second_consume > 0)
            & (consume + second_consume <= SUPER_BITS)
        )
        first_entries = np.where(
            valid, first, np.where(fallback, np.int64(-1), np.int64(0))
        )
        second_entries = np.where(pair, second, 0)
        interleaved = np.empty(2 * size, dtype=np.int32)
        interleaved[0::2] = first_entries.astype(np.int32)
        interleaved[1::2] = second_entries.astype(np.int32)
        tables.append(array("i", interleaved.tobytes()))
        if flavour == "ac":
            # Walk products: the stride of a walk step is the total bits of
            # every symbol that fit (0 = escape), and the de-interleaved
            # slots let the batched decode gather both symbols per probe.
            slots1 = first_entries.astype(np.int32)
            slots2 = second_entries.astype(np.int32)
            pairbits = np.where(
                pair,
                consume + second_consume,
                np.where(valid, consume, 0),
            ).astype(np.uint8)
    return tables[0], tables[1], slots1, slots2, pairbits


def _build_table_set(encode_map: dict[int, tuple[int, int]]) -> _TableSet:
    """Build all decode LUT flavours from a code map.

    The prefix property of Huffman codes guarantees a primary slot is either
    filled by exactly one short code or is the 8-bit prefix of only long
    codes, so the fill ranges never collide.
    """
    secondary_width = 1 << (MAX_CODE_LENGTH - LUT_BITS)
    sym_primary = [0] * (1 << LUT_BITS)
    ac_primary = [0] * (1 << LUT_BITS)
    dc_primary = [0] * (1 << LUT_BITS)
    sym_secondary: list[list[int]] = []
    ac_secondary: list[list[int]] = []
    dc_secondary: list[list[int]] = []
    prefix_to_secondary: dict[int, int] = {}
    for symbol, (code, length) in encode_map.items():
        sym_entry = (length << 8) | symbol
        if symbol == 0x00:  # EOB: jump past any band
            ac_run, ac_category = 64, 0
        elif symbol == 0xF0:  # ZRL: skip 16 zeros
            ac_run, ac_category = 16, 0
        else:
            ac_run, ac_category = symbol >> 4, symbol & 0x0F
        ac_entry = (ac_run << 12) | (ac_category << 6) | (length + ac_category)
        dc_entry = (symbol << 12) | (length + symbol)
        if length <= LUT_BITS:
            base = code << (LUT_BITS - length)
            span = 1 << (LUT_BITS - length)
            for index in range(base, base + span):
                sym_primary[index] = sym_entry
                ac_primary[index] = ac_entry
                dc_primary[index] = dc_entry
        else:
            prefix = code >> (length - LUT_BITS)
            table_index = prefix_to_secondary.get(prefix)
            if table_index is None:
                table_index = len(sym_secondary)
                prefix_to_secondary[prefix] = table_index
                sym_secondary.append([0] * secondary_width)
                ac_secondary.append([0] * secondary_width)
                dc_secondary.append([0] * secondary_width)
                pointer = -(table_index + 1)
                sym_primary[prefix] = pointer
                ac_primary[prefix] = pointer
                dc_primary[prefix] = pointer
            tail = code & ((1 << (length - LUT_BITS)) - 1)
            base = tail << (MAX_CODE_LENGTH - length)
            span = 1 << (MAX_CODE_LENGTH - length)
            for index in range(base, base + span):
                sym_secondary[table_index][index] = sym_entry
                ac_secondary[table_index][index] = ac_entry
                dc_secondary[table_index][index] = dc_entry
    return _TableSet(
        sym_primary=sym_primary,
        sym_secondary=sym_secondary,
        ac_primary=ac_primary,
        ac_secondary=ac_secondary,
        dc_primary=dc_primary,
        dc_secondary=dc_secondary,
        # Copied so the cached set never aliases a table instance's mutable
        # code map (the superscalar build may run long after that instance
        # is gone).
        encode_map=dict(encode_map),
    )


def _package_merge_lengths(counts: Counter, max_length: int) -> dict[int, int]:
    """Compute length-limited Huffman code lengths.

    Uses plain Huffman construction and, in the rare case the resulting code
    exceeds ``max_length`` (possible only with extremely skewed counts),
    flattens the deepest levels by re-running with damped frequencies.
    """
    lengths = _plain_huffman_lengths(counts)
    damping = 1
    while max(lengths.values()) > max_length:
        damping *= 2
        damped = Counter({s: (c + damping - 1) // damping + 1 for s, c in counts.items()})
        lengths = _plain_huffman_lengths(damped)
    return lengths


def _plain_huffman_lengths(counts: Counter) -> dict[int, int]:
    """Huffman code lengths via parent-pointer tree construction.

    Tie-breaking matches the original list-merging formulation (stable
    (count, insertion-order) heap keys), so the resulting lengths — and
    therefore the canonical tables — are unchanged.
    """
    ordered = sorted(counts.items())
    n_leaves = len(ordered)
    heap = [(count, node, node) for node, (_, count) in enumerate(ordered)]
    heapq.heapify(heap)
    parents: dict[int, int] = {}
    next_node = n_leaves
    while len(heap) > 1:
        count_a, _, node_a = heapq.heappop(heap)
        count_b, _, node_b = heapq.heappop(heap)
        parents[node_a] = next_node
        parents[node_b] = next_node
        heapq.heappush(heap, (count_a + count_b, next_node, next_node))
        next_node += 1
    lengths: dict[int, int] = {}
    for leaf, (symbol, _) in enumerate(ordered):
        depth = 0
        node = leaf
        while node in parents:
            node = parents[node]
            depth += 1
        lengths[symbol] = depth
    return lengths
