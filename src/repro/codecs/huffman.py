"""Canonical Huffman coding with serializable tables.

Each scan in the PCR codec carries an optimized Huffman table for its symbol
alphabet (mirroring ``jpegtran -optimize``).  Tables are serialized in
canonical form: a list of code lengths followed by the symbols ordered by
(length, symbol value), which is the same structure as a JPEG DHT segment.
"""

from __future__ import annotations

import heapq
import struct
from collections import Counter
from dataclasses import dataclass, field

from repro.codecs.bitio import BitReader, BitWriter

MAX_CODE_LENGTH = 16


@dataclass
class HuffmanTable:
    """A canonical Huffman code over integer symbols in ``[0, 255]``."""

    code_lengths: dict[int, int]
    _encode_map: dict[int, tuple[int, int]] = field(default_factory=dict, repr=False)
    _decode_map: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._build_codes()

    def _build_codes(self) -> None:
        ordered = sorted(self.code_lengths.items(), key=lambda kv: (kv[1], kv[0]))
        code = 0
        previous_length = 0
        self._encode_map.clear()
        self._decode_map.clear()
        for symbol, length in ordered:
            code <<= length - previous_length
            previous_length = length
            self._encode_map[symbol] = (code, length)
            self._decode_map[(code, length)] = symbol
            code += 1

    @classmethod
    def from_symbols(cls, symbols: list[int]) -> "HuffmanTable":
        """Build an optimal (length-limited) code from observed symbols."""
        if not symbols:
            # A table still needs at least one symbol to be serializable.
            return cls(code_lengths={0: 1})
        counts = Counter(symbols)
        if len(counts) == 1:
            only = next(iter(counts))
            return cls(code_lengths={only: 1})
        lengths = _package_merge_lengths(counts, MAX_CODE_LENGTH)
        return cls(code_lengths=lengths)

    def encode_symbol(self, symbol: int, writer: BitWriter) -> None:
        """Write the code for ``symbol`` to ``writer``."""
        try:
            code, length = self._encode_map[symbol]
        except KeyError as exc:
            raise KeyError(f"symbol {symbol} not present in Huffman table") from exc
        writer.write_bits(code, length)

    def decode_symbol(self, reader: BitReader) -> int:
        """Read one symbol from ``reader``."""
        code = 0
        for length in range(1, MAX_CODE_LENGTH + 1):
            code = (code << 1) | reader.read_bit()
            symbol = self._decode_map.get((code, length))
            if symbol is not None:
                return symbol
        raise ValueError("invalid Huffman code in bit stream")

    def code_length(self, symbol: int) -> int:
        """Return the code length of ``symbol`` in bits."""
        return self.code_lengths[symbol]

    def to_bytes(self) -> bytes:
        """Serialize as a DHT-style segment: 16 length counts + symbols."""
        by_length: dict[int, list[int]] = {}
        for symbol, length in self.code_lengths.items():
            by_length.setdefault(length, []).append(symbol)
        counts = bytes(
            len(by_length.get(length, [])) for length in range(1, MAX_CODE_LENGTH + 1)
        )
        symbols = bytearray()
        for length in range(1, MAX_CODE_LENGTH + 1):
            symbols.extend(sorted(by_length.get(length, [])))
        return struct.pack("<H", len(symbols)) + counts + bytes(symbols)

    @classmethod
    def from_bytes(cls, payload: bytes) -> tuple["HuffmanTable", int]:
        """Deserialize a table; returns ``(table, bytes_consumed)``."""
        if len(payload) < 2 + MAX_CODE_LENGTH:
            raise ValueError("Huffman table payload too short")
        (n_symbols,) = struct.unpack("<H", payload[:2])
        counts = payload[2 : 2 + MAX_CODE_LENGTH]
        symbols_start = 2 + MAX_CODE_LENGTH
        symbols_end = symbols_start + n_symbols
        if len(payload) < symbols_end:
            raise ValueError("Huffman table payload truncated")
        symbols = payload[symbols_start:symbols_end]
        code_lengths: dict[int, int] = {}
        cursor = 0
        for length_minus_one, count in enumerate(counts):
            for _ in range(count):
                code_lengths[symbols[cursor]] = length_minus_one + 1
                cursor += 1
        return cls(code_lengths=code_lengths), symbols_end


def _package_merge_lengths(counts: Counter, max_length: int) -> dict[int, int]:
    """Compute length-limited Huffman code lengths.

    Uses plain Huffman construction and, in the rare case the resulting code
    exceeds ``max_length`` (possible only with extremely skewed counts),
    flattens the deepest levels by re-running with damped frequencies.
    """
    lengths = _plain_huffman_lengths(counts)
    damping = 1
    while max(lengths.values()) > max_length:
        damping *= 2
        damped = Counter({s: (c + damping - 1) // damping + 1 for s, c in counts.items()})
        lengths = _plain_huffman_lengths(damped)
    return lengths


def _plain_huffman_lengths(counts: Counter) -> dict[int, int]:
    heap: list[tuple[int, int, list[int]]] = []
    for tie_break, (symbol, count) in enumerate(sorted(counts.items())):
        heapq.heappush(heap, (count, tie_break, [symbol]))
    lengths = dict.fromkeys(counts, 0)
    next_tie = len(counts)
    while len(heap) > 1:
        count_a, _, symbols_a = heapq.heappop(heap)
        count_b, _, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a + symbols_b:
            lengths[symbol] += 1
        heapq.heappush(heap, (count_a + count_b, next_tie, symbols_a + symbols_b))
        next_tie += 1
    return lengths
