"""Canonical Huffman coding with serializable tables.

Each scan in the PCR codec carries an optimized Huffman table for its symbol
alphabet (mirroring ``jpegtran -optimize``).  Tables are serialized in
canonical form: a list of code lengths followed by the symbols ordered by
(length, symbol value), which is the same structure as a JPEG DHT segment.

Decoding has two implementations over the same tables:

* ``decode_symbol`` — the scalar reference: one bit at a time, probing the
  ``(code, length)`` dict at each length.  Kept for differential testing.
* ``decode_symbol_fast`` — a two-level lookup table.  The primary table is
  indexed by the next ``LUT_BITS`` (8) stream bits and resolves every code of
  length <= 8 in one probe; longer codes land in a per-prefix secondary
  table indexed by the following 8 bits (``MAX_CODE_LENGTH`` is 16, so two
  levels always suffice).  Entries pack ``(code_length << 8) | symbol``; 0
  marks an invalid prefix, negative values point at a secondary table.

LUTs and encode arrays are cached per canonical table content (module-level,
bounded), so decoding many scans/records that share a table — or re-decoding
the same record — never rebuilds them.
"""

from __future__ import annotations

import heapq
import struct
import threading
from collections import Counter
from dataclasses import dataclass, field

from repro.codecs.bitio import BitReader, BitWriter

MAX_CODE_LENGTH = 16

#: Width of the primary decode LUT index.
LUT_BITS = 8

#: Bound on the module-level LUT/encode-array caches (FIFO eviction).
_CACHE_MAX_ENTRIES = 1024

#: Canonical-content key -> built decode tables (see ``_TableSet``).
_TABLE_CACHE: dict[tuple, "_TableSet"] = {}

#: Serialized-payload key -> ``(HuffmanTable, bytes_consumed)``; lets scan
#: decoders skip deserialization *and* LUT construction when the same table
#: bytes recur across scans, records, or repeated decodes of one stream.
_PAYLOAD_CACHE: dict[bytes, tuple["HuffmanTable", int]] = {}

#: Guards eviction+insert on the module caches: DataLoader workers decode on
#: multiple threads, and unsynchronized evictions can race into KeyError.
_CACHE_LOCK = threading.Lock()


def _cache_put(cache: dict, key, value) -> None:
    """Insert into a bounded module cache with FIFO eviction, thread-safely.

    Plain ``dict`` reads are GIL-atomic; only the evict-then-insert pair
    needs the lock.  Two threads building the same entry concurrently is
    benign (last write wins with an equivalent value).
    """
    with _CACHE_LOCK:
        if len(cache) >= _CACHE_MAX_ENTRIES:
            cache.pop(next(iter(cache)))
        cache[key] = value


@dataclass
class HuffmanTable:
    """A canonical Huffman code over integer symbols in ``[0, 255]``."""

    code_lengths: dict[int, int]
    _encode_map: dict[int, tuple[int, int]] = field(default_factory=dict, repr=False)
    _decode_map: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)
    _tables: "_TableSet | None" = field(default=None, repr=False, compare=False)
    _encode_arrays: "tuple[list[int], list[int]] | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._build_codes()

    def _build_codes(self) -> None:
        ordered = sorted(self.code_lengths.items(), key=lambda kv: (kv[1], kv[0]))
        code = 0
        previous_length = 0
        self._encode_map.clear()
        self._decode_map.clear()
        self._tables = None
        self._encode_arrays = None
        for symbol, length in ordered:
            code <<= length - previous_length
            previous_length = length
            self._encode_map[symbol] = (code, length)
            self._decode_map[(code, length)] = symbol
            code += 1

    @classmethod
    def from_symbols(cls, symbols: list[int]) -> "HuffmanTable":
        """Build an optimal (length-limited) code from observed symbols."""
        return cls.from_counts(Counter(symbols))

    @classmethod
    def from_counts(cls, counts: Counter | dict[int, int]) -> "HuffmanTable":
        """Build an optimal code from a symbol-frequency mapping.

        Zero-count entries are ignored; produces the identical table to
        ``from_symbols`` on the underlying symbol sequence.
        """
        counts = Counter({s: c for s, c in counts.items() if c > 0})
        if not counts:
            # A table still needs at least one symbol to be serializable.
            return cls(code_lengths={0: 1})
        if len(counts) == 1:
            only = next(iter(counts))
            return cls(code_lengths={only: 1})
        lengths = _package_merge_lengths(counts, MAX_CODE_LENGTH)
        return cls(code_lengths=lengths)

    # -- scalar reference paths ------------------------------------------------

    def encode_symbol(self, symbol: int, writer: BitWriter) -> None:
        """Write the code for ``symbol`` to ``writer``."""
        try:
            code, length = self._encode_map[symbol]
        except KeyError as exc:
            raise KeyError(f"symbol {symbol} not present in Huffman table") from exc
        writer.write_bits(code, length)

    def decode_symbol(self, reader: BitReader) -> int:
        """Read one symbol from ``reader`` (scalar reference path)."""
        code = 0
        for length in range(1, MAX_CODE_LENGTH + 1):
            code = (code << 1) | reader.read_bit()
            symbol = self._decode_map.get((code, length))
            if symbol is not None:
                return symbol
        raise ValueError("invalid Huffman code in bit stream")

    # -- table-driven fast paths -----------------------------------------------

    def decode_tables(self) -> tuple[list[int], list[list[int]]]:
        """Return the ``(symbol, length)``-packed (primary, secondary) LUTs."""
        tables = self._table_set()
        return tables.sym_primary, tables.sym_secondary

    def scan_tables(self) -> "_TableSet":
        """Return the full table set, including the fused AC/DC scan LUTs."""
        return self._table_set()

    def encode_arrays(self) -> tuple[list[int], list[int]]:
        """Return per-symbol ``(codes, lengths)`` arrays indexed by symbol.

        Absent symbols have length 0; callers encode only symbols that were
        counted into the table, so a 0 length is never hit on valid input.
        Built directly from the code map (not via the decode-LUT cache):
        encoding uses a fresh optimized table per scan, where paying the LUT
        fill cost would be pure waste.
        """
        if self._encode_arrays is None:
            codes = [0] * 256
            lengths = [0] * 256
            for symbol, (code, length) in self._encode_map.items():
                codes[symbol] = code
                lengths[symbol] = length
            self._encode_arrays = (codes, lengths)
        return self._encode_arrays

    def _table_set(self) -> "_TableSet":
        if self._tables is None:
            key = tuple(sorted(self.code_lengths.items()))
            cached = _TABLE_CACHE.get(key)
            if cached is None:
                cached = _build_table_set(self._encode_map)
                _cache_put(_TABLE_CACHE, key, cached)
            self._tables = cached
        return self._tables

    def decode_symbol_fast(self, reader: BitReader) -> int:
        """Read one symbol via the two-level LUT."""
        lut, lut2 = self.decode_tables()
        word = reader.peek_bits(16)
        entry = lut[word >> 8]
        if entry < 0:
            entry = lut2[-entry - 1][word & 0xFF]
        if entry == 0:
            raise ValueError("invalid Huffman code in bit stream")
        reader.skip_bits(entry >> 8)
        return entry & 0xFF

    def encode_symbols(
        self,
        symbols,
        extras,
        writer: BitWriter,
    ) -> None:
        """Huffman-encode ``symbols`` with their ``(bits, n_bits)`` extras.

        Batched equivalent of ``encode_symbol`` + ``write_bits`` per item:
        each symbol's code and its magnitude bits are fused into a single
        ``(value, width)`` append on the writer.
        """
        codes, lengths = self.encode_arrays()
        values = []
        widths = []
        for symbol, (bits, n_bits) in zip(symbols, extras):
            length = lengths[symbol]
            if length == 0:
                raise KeyError(f"symbol {symbol} not present in Huffman table")
            values.append((codes[symbol] << n_bits) | bits)
            widths.append(length + n_bits)
        writer.write_many(values, widths)

    # -- serialization ---------------------------------------------------------

    def code_length(self, symbol: int) -> int:
        """Return the code length of ``symbol`` in bits."""
        return self.code_lengths[symbol]

    def to_bytes(self) -> bytes:
        """Serialize as a DHT-style segment: 16 length counts + symbols."""
        ordered = sorted(self.code_lengths.items(), key=lambda kv: (kv[1], kv[0]))
        counts = [0] * MAX_CODE_LENGTH
        symbols = bytearray(len(ordered))
        for index, (symbol, length) in enumerate(ordered):
            counts[length - 1] += 1
            symbols[index] = symbol
        return struct.pack("<H", len(ordered)) + bytes(counts) + bytes(symbols)

    @classmethod
    def from_bytes(cls, payload: bytes) -> tuple["HuffmanTable", int]:
        """Deserialize a table; returns ``(table, bytes_consumed)``."""
        if len(payload) < 2 + MAX_CODE_LENGTH:
            raise ValueError("Huffman table payload too short")
        (n_symbols,) = struct.unpack("<H", payload[:2])
        counts = payload[2 : 2 + MAX_CODE_LENGTH]
        symbols_start = 2 + MAX_CODE_LENGTH
        symbols_end = symbols_start + n_symbols
        if len(payload) < symbols_end:
            raise ValueError("Huffman table payload truncated")
        symbols = payload[symbols_start:symbols_end]
        code_lengths: dict[int, int] = {}
        cursor = 0
        for length_minus_one, count in enumerate(counts):
            for _ in range(count):
                code_lengths[symbols[cursor]] = length_minus_one + 1
                cursor += 1
        return cls(code_lengths=code_lengths), symbols_end

    @classmethod
    def cached_from_bytes(cls, payload: bytes) -> tuple["HuffmanTable", int]:
        """Like :meth:`from_bytes`, but cached on the serialized table bytes.

        Repeated decodes of scans that carry the same table (across records,
        or re-decoding one stream) reuse the deserialized table *with its
        LUTs already built*.  The returned table must be treated as
        read-only.
        """
        if len(payload) < 2 + MAX_CODE_LENGTH:
            raise ValueError("Huffman table payload too short")
        (n_symbols,) = struct.unpack("<H", payload[:2])
        key = bytes(payload[: 2 + MAX_CODE_LENGTH + n_symbols])
        cached = _PAYLOAD_CACHE.get(key)
        if cached is None:
            table, consumed = cls.from_bytes(payload)
            table._table_set()
            cached = (table, consumed)
            _cache_put(_PAYLOAD_CACHE, key, cached)
        return cached


@dataclass(frozen=True)
class _TableSet:
    """All derived decode tables for one canonical Huffman code.

    Three packings of the same two-level (8-bit primary, 8-bit secondary)
    LUT coexist, each tuned to one decode loop.  In every flavour, entry 0
    marks an invalid prefix and a negative primary entry ``-(i + 1)`` points
    at secondary table ``i``:

    * ``sym_*`` — ``(code_length << 8) | symbol``: the generic form used by
      :meth:`HuffmanTable.decode_symbol_fast`.
    * ``ac_*`` — ``(run << 12) | (category << 6) | (code_length + category)``
      with EOB mapped to ``run = 64`` (jumps past any band and ends the
      block loop without a branch) and ZRL to ``run = 16``.  The low field
      is the *fused* bit consumption of the code plus its magnitude bits.
    * ``dc_*`` — ``(category << 12) | (code_length + category)`` where the
      category is the full symbol value (DC deltas have no run nibble).
    """

    sym_primary: list[int]
    sym_secondary: list[list[int]]
    ac_primary: list[int]
    ac_secondary: list[list[int]]
    dc_primary: list[int]
    dc_secondary: list[list[int]]


def _build_table_set(encode_map: dict[int, tuple[int, int]]) -> _TableSet:
    """Build all decode LUT flavours from a code map.

    The prefix property of Huffman codes guarantees a primary slot is either
    filled by exactly one short code or is the 8-bit prefix of only long
    codes, so the fill ranges never collide.
    """
    secondary_width = 1 << (MAX_CODE_LENGTH - LUT_BITS)
    sym_primary = [0] * (1 << LUT_BITS)
    ac_primary = [0] * (1 << LUT_BITS)
    dc_primary = [0] * (1 << LUT_BITS)
    sym_secondary: list[list[int]] = []
    ac_secondary: list[list[int]] = []
    dc_secondary: list[list[int]] = []
    prefix_to_secondary: dict[int, int] = {}
    for symbol, (code, length) in encode_map.items():
        sym_entry = (length << 8) | symbol
        if symbol == 0x00:  # EOB: jump past any band
            ac_run, ac_category = 64, 0
        elif symbol == 0xF0:  # ZRL: skip 16 zeros
            ac_run, ac_category = 16, 0
        else:
            ac_run, ac_category = symbol >> 4, symbol & 0x0F
        ac_entry = (ac_run << 12) | (ac_category << 6) | (length + ac_category)
        dc_entry = (symbol << 12) | (length + symbol)
        if length <= LUT_BITS:
            base = code << (LUT_BITS - length)
            span = 1 << (LUT_BITS - length)
            for index in range(base, base + span):
                sym_primary[index] = sym_entry
                ac_primary[index] = ac_entry
                dc_primary[index] = dc_entry
        else:
            prefix = code >> (length - LUT_BITS)
            table_index = prefix_to_secondary.get(prefix)
            if table_index is None:
                table_index = len(sym_secondary)
                prefix_to_secondary[prefix] = table_index
                sym_secondary.append([0] * secondary_width)
                ac_secondary.append([0] * secondary_width)
                dc_secondary.append([0] * secondary_width)
                pointer = -(table_index + 1)
                sym_primary[prefix] = pointer
                ac_primary[prefix] = pointer
                dc_primary[prefix] = pointer
            tail = code & ((1 << (length - LUT_BITS)) - 1)
            base = tail << (MAX_CODE_LENGTH - length)
            span = 1 << (MAX_CODE_LENGTH - length)
            for index in range(base, base + span):
                sym_secondary[table_index][index] = sym_entry
                ac_secondary[table_index][index] = ac_entry
                dc_secondary[table_index][index] = dc_entry
    return _TableSet(
        sym_primary=sym_primary,
        sym_secondary=sym_secondary,
        ac_primary=ac_primary,
        ac_secondary=ac_secondary,
        dc_primary=dc_primary,
        dc_secondary=dc_secondary,
    )


def _package_merge_lengths(counts: Counter, max_length: int) -> dict[int, int]:
    """Compute length-limited Huffman code lengths.

    Uses plain Huffman construction and, in the rare case the resulting code
    exceeds ``max_length`` (possible only with extremely skewed counts),
    flattens the deepest levels by re-running with damped frequencies.
    """
    lengths = _plain_huffman_lengths(counts)
    damping = 1
    while max(lengths.values()) > max_length:
        damping *= 2
        damped = Counter({s: (c + damping - 1) // damping + 1 for s, c in counts.items()})
        lengths = _plain_huffman_lengths(damped)
    return lengths


def _plain_huffman_lengths(counts: Counter) -> dict[int, int]:
    """Huffman code lengths via parent-pointer tree construction.

    Tie-breaking matches the original list-merging formulation (stable
    (count, insertion-order) heap keys), so the resulting lengths — and
    therefore the canonical tables — are unchanged.
    """
    ordered = sorted(counts.items())
    n_leaves = len(ordered)
    heap = [(count, node, node) for node, (_, count) in enumerate(ordered)]
    heapq.heapify(heap)
    parents: dict[int, int] = {}
    next_node = n_leaves
    while len(heap) > 1:
        count_a, _, node_a = heapq.heappop(heap)
        count_b, _, node_b = heapq.heappop(heap)
        parents[node_a] = next_node
        parents[node_b] = next_node
        heapq.heappush(heap, (count_a + count_b, next_node, next_node))
        next_node += 1
    lengths: dict[int, int] = {}
    for leaf, (symbol, _) in enumerate(ordered):
        depth = 0
        node = leaf
        while node in parents:
            node = parents[node]
            depth += 1
        lengths[symbol] = depth
    return lengths
