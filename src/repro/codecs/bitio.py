"""Bit-level writer and reader used by the entropy coder.

Both classes are word-buffered: instead of moving one bit at a time they
accumulate bits in a Python integer and move whole bytes with
``int.to_bytes`` / ``int.from_bytes``.  The byte-level output format is
unchanged from the original scalar implementation — MSB-first bit order,
final partial byte padded with 1 bits (mirroring JPEG) — so streams written
by either implementation are byte-identical.

Invariants:

* ``BitWriter`` keeps at most ``_FLUSH_BITS + 63`` pending bits in its
  accumulator; whole bytes are flushed eagerly, so memory stays bounded.
* ``BitReader._bitbuf`` always holds exactly ``_bitcnt`` valid bits (the
  next bit to be read is its most significant bit).
* ``peek_bits`` never consumes and never raises at end-of-stream: bits past
  the end read as 1s, matching the writer's padding.  Consuming past the
  end (``read_bits`` / ``skip_bits``) raises ``EOFError``.
"""

from __future__ import annotations

#: Flush the writer's accumulator to bytes once it holds this many bits.
#: Large enough that big-int shifts amortize well, small enough that the
#: accumulator stays a few machine words.
_FLUSH_BITS = 4096

#: Number of bytes the reader loads per refill.
_REFILL_BYTES = 8


class BitWriter:
    """Accumulates bits most-significant-first into a byte string."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0
        self._n_bits = 0

    def write_bits(self, value: int, n_bits: int) -> None:
        """Append the lowest ``n_bits`` of ``value`` (MSB first)."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if n_bits == 0:
            return
        if value < 0 or value >> n_bits:
            raise ValueError(f"value {value} does not fit in {n_bits} bits")
        self._acc = (self._acc << n_bits) | value
        self._n_bits += n_bits
        if self._n_bits >= _FLUSH_BITS:
            self._flush_whole_bytes()

    def write_bit(self, bit: int) -> None:
        """Append a single bit."""
        self.write_bits(bit & 1, 1)

    def write_many(self, values, widths) -> None:
        """Append many ``(value, width)`` pairs in one buffered pass.

        ``values[i]`` must already fit in ``widths[i]`` bits; no per-item
        validation is performed (this is the batch fast path).
        """
        acc = self._acc
        n_bits = self._n_bits
        buffer = self._buffer
        for value, width in zip(values, widths):
            acc = (acc << width) | value
            n_bits += width
            if n_bits >= _FLUSH_BITS:
                rem = n_bits & 7
                whole = n_bits - rem
                buffer += (acc >> rem).to_bytes(whole >> 3, "big")
                acc &= (1 << rem) - 1
                n_bits = rem
        self._acc = acc
        self._n_bits = n_bits

    def _flush_whole_bytes(self) -> None:
        rem = self._n_bits & 7
        whole = self._n_bits - rem
        if whole:
            self._buffer += (self._acc >> rem).to_bytes(whole >> 3, "big")
            self._acc &= (1 << rem) - 1
            self._n_bits = rem

    def getvalue(self) -> bytes:
        """Return the accumulated bytes, padding the final byte with 1s.

        Padding with 1 bits mirrors JPEG; a decoder that knows the symbol
        count never consumes padding as data.
        """
        self._flush_whole_bytes()
        data = bytes(self._buffer)
        if self._n_bits:
            pad = 8 - self._n_bits
            last = (self._acc << pad) | ((1 << pad) - 1)
            data += bytes([last])
        return data

    def __len__(self) -> int:
        return len(self._buffer) + ((self._n_bits + 7) >> 3)


class BitReader:
    """Reads bits most-significant-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # next byte offset to load into the buffer
        self._bitbuf = 0
        self._bitcnt = 0  # valid (unconsumed) bits currently buffered
        self._total_bits = len(data) * 8
        self._consumed = 0

    @property
    def exhausted(self) -> bool:
        """True if no complete bit remains."""
        return self._consumed >= self._total_bits

    def bits_remaining(self) -> int:
        """Number of unconsumed bits left in the stream."""
        return self._total_bits - self._consumed

    def _refill(self, n_bits: int) -> None:
        data = self._data
        pos = self._pos
        while self._bitcnt < n_bits:
            chunk = data[pos : pos + _REFILL_BYTES]
            if not chunk:
                break
            pos += len(chunk)
            self._bitbuf = (self._bitbuf << (len(chunk) * 8)) | int.from_bytes(chunk, "big")
            self._bitcnt += len(chunk) * 8
        self._pos = pos

    def peek_bits(self, n_bits: int) -> int:
        """Return the next ``n_bits`` without consuming them.

        Bits past the end of the stream read as 1s (the writer's padding),
        so peeking near the end never raises.
        """
        bitcnt = self._bitcnt
        if bitcnt < n_bits:
            self._refill(n_bits)
            bitcnt = self._bitcnt
            if bitcnt < n_bits:
                pad = n_bits - bitcnt
                return (self._bitbuf << pad) | ((1 << pad) - 1)
        return self._bitbuf >> (bitcnt - n_bits)

    def skip_bits(self, n_bits: int) -> None:
        """Consume ``n_bits`` previously peeked bits."""
        if self._bitcnt < n_bits:
            self._refill(n_bits)
            if self._bitcnt < n_bits:
                raise EOFError("bit stream exhausted")
        self._bitcnt -= n_bits
        self._bitbuf &= (1 << self._bitcnt) - 1
        self._consumed += n_bits

    def read_bit(self) -> int:
        """Read a single bit; raises ``EOFError`` when the stream ends."""
        return self.read_bits(1)

    def read_bits(self, n_bits: int) -> int:
        """Read ``n_bits`` bits MSB-first and return them as an integer."""
        if n_bits == 0:
            return 0
        if self._bitcnt < n_bits:
            self._refill(n_bits)
            if self._bitcnt < n_bits:
                raise EOFError("bit stream exhausted")
        bitcnt = self._bitcnt - n_bits
        value = self._bitbuf >> bitcnt
        self._bitbuf &= (1 << bitcnt) - 1
        self._bitcnt = bitcnt
        self._consumed += n_bits
        return value
