"""Bit-level writer and reader used by the entropy coder.

Both classes are word-buffered: instead of moving one bit at a time they
accumulate bits in a Python integer and move whole bytes with
``int.to_bytes`` / ``int.from_bytes``.  The byte-level output format is
unchanged from the original scalar implementation — MSB-first bit order,
final partial byte padded with 1 bits (mirroring JPEG) — so streams written
by either implementation are byte-identical.

Invariants:

* ``BitWriter`` keeps at most ``_FLUSH_BITS + 63`` pending bits in its
  accumulator; whole bytes are flushed eagerly, so memory stays bounded.
* ``BitReader._bitbuf`` always holds exactly ``_bitcnt`` valid bits (the
  next bit to be read is its most significant bit).
* ``peek_bits`` never consumes and never raises at end-of-stream: bits past
  the end read as 1s, matching the writer's padding.  Consuming past the
  end (``read_bits`` / ``skip_bits``) raises ``EOFError``.
"""

from __future__ import annotations

import numpy as np

#: Flush the writer's accumulator to bytes once it holds this many bits.
#: Large enough that big-int shifts amortize well, small enough that the
#: accumulator stays a few machine words.
_FLUSH_BITS = 4096

#: Number of bytes the reader loads per refill.
_REFILL_BYTES = 8


class BitWriter:
    """Accumulates bits most-significant-first into a byte string."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0
        self._n_bits = 0

    def write_bits(self, value: int, n_bits: int) -> None:
        """Append the lowest ``n_bits`` of ``value`` (MSB first)."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if n_bits == 0:
            return
        if value < 0 or value >> n_bits:
            raise ValueError(f"value {value} does not fit in {n_bits} bits")
        self._acc = (self._acc << n_bits) | value
        self._n_bits += n_bits
        if self._n_bits >= _FLUSH_BITS:
            self._flush_whole_bytes()

    def write_bit(self, bit: int) -> None:
        """Append a single bit."""
        self.write_bits(bit & 1, 1)

    def write_many(self, values, widths) -> None:
        """Append many ``(value, width)`` pairs in one buffered pass.

        ``values[i]`` must already fit in ``widths[i]`` bits; no per-item
        validation is performed (this is the batch fast path).
        """
        acc = self._acc
        n_bits = self._n_bits
        buffer = self._buffer
        for value, width in zip(values, widths):
            acc = (acc << width) | value
            n_bits += width
            if n_bits >= _FLUSH_BITS:
                rem = n_bits & 7
                whole = n_bits - rem
                buffer += (acc >> rem).to_bytes(whole >> 3, "big")
                acc &= (1 << rem) - 1
                n_bits = rem
        self._acc = acc
        self._n_bits = n_bits

    #: Per-slice bit cap for the vectorized packer: bounds the int64
    #: temporaries (~24 bytes per bit) to a few tens of MB however large a
    #: single scan gets.
    _PACK_SLICE_BITS = 1 << 21

    def write_many_array(self, values: np.ndarray, widths: np.ndarray) -> None:
        """Vectorized :meth:`write_many` for int64 numpy ``(value, width)`` arrays.

        Produces bit-identical output: every value's lowest ``width`` bits
        are appended MSB-first.  Instead of a Python loop over big-int
        shifts, the whole batch is expanded to a per-bit array (item index
        via ``np.repeat``, per-bit shift via a cumulative-width ramp) and
        packed with ``np.packbits``; the trailing partial byte is folded
        back into the accumulator so subsequent scalar writes continue
        seamlessly.  Items must be non-negative and at most 62 bits wide
        (the caller's fused symbol+magnitude pairs are ``<= 62``); wider
        items must take :meth:`write_many`.
        """
        n_items = int(values.shape[0])
        if n_items == 0:
            return
        # Move whole pending bytes out, then fold the <8 leftover bits in as
        # a leading pseudo-item so the packed run starts byte-aligned.
        self._flush_whole_bytes()
        if self._n_bits:
            values = np.concatenate((np.asarray([self._acc], dtype=np.int64), values))
            widths = np.concatenate((np.asarray([self._n_bits], dtype=np.int64), widths))
            self._acc = 0
            self._n_bits = 0
        ends = np.cumsum(widths, dtype=np.int64)
        total_bits = int(ends[-1])
        buffer = self._buffer
        start_item = 0
        start_bit = 0
        while start_bit < total_bits:
            # Slice on item boundaries so each expansion stays bounded.
            stop_item = int(np.searchsorted(ends, start_bit + self._PACK_SLICE_BITS))
            stop_item = max(stop_item, start_item + 1)
            stop_bit = int(ends[stop_item - 1])
            slice_widths = widths[start_item:stop_item]
            slice_bits = stop_bit - start_bit
            item_of_bit = np.repeat(
                np.arange(start_item, stop_item, dtype=np.int64), slice_widths
            )
            shift = ends[item_of_bit] - np.arange(start_bit + 1, stop_bit + 1)
            bits = ((values[item_of_bit] >> shift) & 1).astype(np.uint8)
            whole = slice_bits & ~7
            if whole:
                buffer += np.packbits(bits[:whole]).tobytes()
            for bit in bits[whole:]:
                self._acc = (self._acc << 1) | int(bit)
                self._n_bits += 1
            start_item = stop_item
            start_bit = stop_bit
            if self._n_bits and start_bit < total_bits:
                # A mid-run slice ended off a byte boundary; re-fold the
                # pending bits as the next slice's leading pseudo-item (and
                # back the cursor up over them) so it starts aligned.
                pending = self._n_bits
                values = np.concatenate(
                    (np.asarray([self._acc], dtype=np.int64), values[start_item:])
                )
                widths = np.concatenate(
                    (np.asarray([pending], dtype=np.int64), widths[start_item:])
                )
                start_bit -= pending
                ends = np.cumsum(widths, dtype=np.int64) + start_bit
                start_item = 0
                self._acc = 0
                self._n_bits = 0

    def _flush_whole_bytes(self) -> None:
        rem = self._n_bits & 7
        whole = self._n_bits - rem
        if whole:
            self._buffer += (self._acc >> rem).to_bytes(whole >> 3, "big")
            self._acc &= (1 << rem) - 1
            self._n_bits = rem

    def getvalue(self) -> bytes:
        """Return the accumulated bytes, padding the final byte with 1s.

        Padding with 1 bits mirrors JPEG; a decoder that knows the symbol
        count never consumes padding as data.
        """
        self._flush_whole_bytes()
        data = bytes(self._buffer)
        if self._n_bits:
            pad = 8 - self._n_bits
            last = (self._acc << pad) | ((1 << pad) - 1)
            data += bytes([last])
        return data

    def __len__(self) -> int:
        return len(self._buffer) + ((self._n_bits + 7) >> 3)


class BitReader:
    """Reads bits most-significant-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # next byte offset to load into the buffer
        self._bitbuf = 0
        self._bitcnt = 0  # valid (unconsumed) bits currently buffered
        self._total_bits = len(data) * 8
        self._consumed = 0

    @property
    def exhausted(self) -> bool:
        """True if no complete bit remains."""
        return self._consumed >= self._total_bits

    def bits_remaining(self) -> int:
        """Number of unconsumed bits left in the stream."""
        return self._total_bits - self._consumed

    def _refill(self, n_bits: int) -> None:
        data = self._data
        pos = self._pos
        while self._bitcnt < n_bits:
            chunk = data[pos : pos + _REFILL_BYTES]
            if not chunk:
                break
            pos += len(chunk)
            self._bitbuf = (self._bitbuf << (len(chunk) * 8)) | int.from_bytes(chunk, "big")
            self._bitcnt += len(chunk) * 8
        self._pos = pos

    def peek_bits(self, n_bits: int) -> int:
        """Return the next ``n_bits`` without consuming them.

        Bits past the end of the stream read as 1s (the writer's padding),
        so peeking near the end never raises.
        """
        bitcnt = self._bitcnt
        if bitcnt < n_bits:
            self._refill(n_bits)
            bitcnt = self._bitcnt
            if bitcnt < n_bits:
                pad = n_bits - bitcnt
                return (self._bitbuf << pad) | ((1 << pad) - 1)
        return self._bitbuf >> (bitcnt - n_bits)

    def skip_bits(self, n_bits: int) -> None:
        """Consume ``n_bits`` previously peeked bits."""
        if self._bitcnt < n_bits:
            self._refill(n_bits)
            if self._bitcnt < n_bits:
                raise EOFError("bit stream exhausted")
        self._bitcnt -= n_bits
        self._bitbuf &= (1 << self._bitcnt) - 1
        self._consumed += n_bits

    def read_bit(self) -> int:
        """Read a single bit; raises ``EOFError`` when the stream ends."""
        return self.read_bits(1)

    def read_bits(self, n_bits: int) -> int:
        """Read ``n_bits`` bits MSB-first and return them as an integer."""
        if n_bits == 0:
            return 0
        if self._bitcnt < n_bits:
            self._refill(n_bits)
            if self._bitcnt < n_bits:
                raise EOFError("bit stream exhausted")
        bitcnt = self._bitcnt - n_bits
        value = self._bitbuf >> bitcnt
        self._bitbuf &= (1 << bitcnt) - 1
        self._bitcnt = bitcnt
        self._consumed += n_bits
        return value
