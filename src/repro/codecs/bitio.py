"""Bit-level writer and reader used by the entropy coder."""

from __future__ import annotations


class BitWriter:
    """Accumulates bits most-significant-first into a byte string."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._n_bits = 0

    def write_bits(self, value: int, n_bits: int) -> None:
        """Append the lowest ``n_bits`` of ``value`` (MSB first)."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if n_bits == 0:
            return
        if value < 0 or value >= (1 << n_bits):
            raise ValueError(f"value {value} does not fit in {n_bits} bits")
        for shift in range(n_bits - 1, -1, -1):
            bit = (value >> shift) & 1
            self._current = (self._current << 1) | bit
            self._n_bits += 1
            if self._n_bits == 8:
                self._buffer.append(self._current)
                self._current = 0
                self._n_bits = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit."""
        self.write_bits(bit & 1, 1)

    def getvalue(self) -> bytes:
        """Return the accumulated bytes, padding the final byte with 1s.

        Padding with 1 bits mirrors JPEG; a decoder that knows the symbol
        count never consumes padding as data.
        """
        data = bytes(self._buffer)
        if self._n_bits:
            pad = 8 - self._n_bits
            last = (self._current << pad) | ((1 << pad) - 1)
            data += bytes([last])
        return data

    def __len__(self) -> int:
        return len(self._buffer) + (1 if self._n_bits else 0)


class BitReader:
    """Reads bits most-significant-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._byte_pos = 0
        self._bit_pos = 0

    @property
    def exhausted(self) -> bool:
        """True if no complete bit remains."""
        return self._byte_pos >= len(self._data)

    def read_bit(self) -> int:
        """Read a single bit; raises ``EOFError`` when the stream ends."""
        if self._byte_pos >= len(self._data):
            raise EOFError("bit stream exhausted")
        byte = self._data[self._byte_pos]
        bit = (byte >> (7 - self._bit_pos)) & 1
        self._bit_pos += 1
        if self._bit_pos == 8:
            self._bit_pos = 0
            self._byte_pos += 1
        return bit

    def read_bits(self, n_bits: int) -> int:
        """Read ``n_bits`` bits MSB-first and return them as an integer."""
        value = 0
        for _ in range(n_bits):
            value = (value << 1) | self.read_bit()
        return value
