"""Table-driven fast path for scan-level entropy coding.

This module is the vectorized counterpart of the scalar scan coder in
:mod:`repro.codecs.progressive`:

* Encoding turns a whole coefficient plane into ``(symbol, bits, width)``
  arrays with NumPy (see :mod:`repro.codecs.rle`), builds the scan's
  optimized Huffman table from a single ``bincount``, fuses each symbol's
  code with its magnitude bits, and hands the batch to
  ``BitWriter.write_many``.
* Decoding has two tiers.  The default *superscalar* tier probes the
  wide-window pair LUTs
  (:func:`repro.codecs.huffman._build_super_tables`) — one index
  computation resolves up to two complete (code + magnitude) symbols with
  their signed values already decoded, so the common case costs no
  mask/shift magnitude work at all.  For AC-only scans (the bulk of a
  progressive stream's symbols) the tier is *batched*: a vectorized
  phase-0 precompute turns every bit offset of a batch of scan payloads
  into its pair-LUT window and the window's walk *stride* (the total bit
  length of all symbols the window resolves — symbol boundaries are
  context-free, each entry's consumption depends only on the bits), so
  the phase-1 Python loop is just ``cursor += strides[cursor]`` per
  symbol pair; the packed entries themselves are gathered afterwards at
  the recorded offsets, and block segmentation, band checks, positions,
  and values are all reconstructed by one vectorized phase-2 epilogue
  shared across every AC scan of a stream (``decode_scan_bodies_fast``).
  DC-only and mixed scans keep specialized in-place pair-probe loops, as
  do oversized AC payloads (bounding batch memory).  The single-symbol
  loops resolve each symbol through the fused two-level LUT; they remain
  both the fallback for oversized symbols (code + magnitude wider than
  the window) and the mid-tier differential reference, selected by
  ``config.use_superscalar(False)``.  Both tiers defer all
  coefficient-plane writes to one vectorized scatter per component instead
  of a Python slice assignment per block.

Both directions produce byte-identical streams / identical coefficients to
the scalar reference — that property is enforced by the differential tests
in ``tests/test_codecs_fastpath.py``.  The dispatch lives in
:mod:`repro.codecs.progressive`, gated by :mod:`repro.codecs.config`.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.codecs import config as codec_config
from repro.codecs.bitio import BitWriter
from repro.codecs.huffman import SUPER_BITS, SUPER_VALUE_OFFSET, HuffmanTable
from repro.codecs.rle import (
    ac_symbol_arrays,
    dc_symbol_arrays,
    mixed_symbol_arrays,
)

__all__ = [
    "encode_scan_body_fast",
    "decode_scan_body_fast",
    "decode_scan_bodies_fast",
]


def _scan_symbol_arrays(plane: np.ndarray, spectral_start: int, spectral_end: int):
    if spectral_start == 0 and spectral_end == 0:
        return dc_symbol_arrays(plane[:, 0])
    if spectral_start == 0:
        return mixed_symbol_arrays(plane, spectral_end)
    return ac_symbol_arrays(plane[:, spectral_start : spectral_end + 1])


def encode_scan_body_fast(coefficients, scan) -> bytes:
    """Entropy-code one scan (table + bits), byte-identical to the scalar path."""
    per_component = []
    symbol_counts = np.zeros(256, dtype=np.int64)
    for component in scan.component_ids:
        plane = coefficients.planes[component]
        arrays = _scan_symbol_arrays(plane, scan.spectral_start, scan.spectral_end)
        per_component.append(arrays)
        if arrays[0].size:
            symbol_counts += np.bincount(arrays[0], minlength=256)
    present = np.nonzero(symbol_counts)[0]
    table = HuffmanTable.from_counts(
        dict(zip(present.tolist(), symbol_counts[present].tolist()))
    )
    codes, lengths = table.encode_arrays()
    code_array = np.asarray(codes, dtype=np.int64)
    length_array = np.asarray(lengths, dtype=np.int64)
    writer = BitWriter()
    for symbols, bits, n_bits in per_component:
        values = (code_array[symbols] << n_bits) | bits
        widths = length_array[symbols] + n_bits
        # Fuse adjacent (value, width) pairs so the writer loop runs half as
        # many iterations.  Safe whenever a single item is at most 31 bits
        # (always true for AC symbols; only pathological DC magnitudes can
        # exceed it), since two fused items then fit in an int64.
        n_items = values.shape[0]
        if n_items > 1 and int(widths.max()) <= 31:
            head = n_items & ~1
            fused_values = (values[0:head:2] << widths[1:head:2]) | values[1:head:2]
            fused_widths = widths[0:head:2] + widths[1:head:2]
            if head != n_items:
                fused_values = np.append(fused_values, values[-1])
                fused_widths = np.append(fused_widths, widths[-1])
            values, widths = fused_values, fused_widths
        # Large runs take the fully vectorized bit packer (per-bit expand +
        # np.packbits); below the threshold numpy's fixed costs lose to the
        # plain loop.  Both emit identical bits.  The packer caps items at
        # 62 bits, which fused pairs satisfy; unfused runs (pathological DC
        # magnitudes > 31 bits) keep the loop.
        if values.shape[0] >= 256 and int(widths.max()) <= 62:
            writer.write_many_array(values, widths)
        else:
            writer.write_many(values.tolist(), widths.tolist())
    return table.to_bytes() + writer.getvalue()


#: Low-bit masks indexed by width.  Sized generously: the refill guard masks
#: at ``bitcnt`` (which can reach ``consume + 63`` while buffering an
#: oversized DC magnitude, ``consume <= 271``) and magnitude extraction
#: indexes by category (<= 255 for pathological DC tables).
_MASKS = tuple((1 << n) - 1 for n in range(1024))

#: ``1 << (category - 1)`` — the positive/negative threshold of a magnitude
#: field, indexed by category (0 unused).
_HALVES = (0,) + tuple(1 << (n - 1) for n in range(1, 1024))

#: Bytes of 1-padding appended to a scan payload before it is carved into
#: 64-bit refill words.  On a valid stream the reader never consumes more
#: than ~5 words past the true payload (32-bit guard + one oversized-DC
#: refill), so 64 pad bytes (>= 7 whole words after truncation) make every
#: in-range refill a plain list index without per-refill bounds checks.
#: The 1-bits match the writer's end-of-stream padding.  A corrupt stream
#: that decodes into the padding is caught by the consumed-bits check after
#: the scan, or -- if garbage outruns the padding entirely -- by the refill
#: IndexError guard, both surfacing as ``EOFError``.
_PAD = b"\xff" * 64

#: Superscalar window addressing, derived from the table geometry: a probe
#: reads the top ``SUPER_BITS`` of the bit buffer and doubles them into the
#: interleaved pair table (even slot = first symbol, odd = second).
_SUPER_SHIFT = SUPER_BITS + 1
_SUPER_MASK = ((1 << SUPER_BITS) - 1) << 1


def _invalid_code_error(consumed_before: int, n_payload_bits: int) -> Exception:
    """Classify an invalid Huffman prefix the way the scalar reference would.

    The scalar decoder reads an unresolvable code bit-by-bit and declares
    ``ValueError`` only after a full ``MAX_CODE_LENGTH``-bit probe; a probe
    that would cross the payload end exhausts the reader first and raises
    ``EOFError``.  The fast tiers decode the 1-padding as data, so at the
    (cold) raise site they classify by the offending symbol's bit offset to
    keep error classes identical across all three tiers.
    """
    if consumed_before + 16 > n_payload_bits:
        return EOFError("bit stream exhausted")
    return ValueError("invalid Huffman code in bit stream")


def _overflow_error(consumed_after: int, n_payload_bits: int) -> Exception:
    """Classify a band overflow the way the scalar reference would.

    The scalar decoder reads the symbol's code *and* magnitude bits before
    its band check, so an overflowing symbol that crosses the payload end
    surfaces as ``EOFError``, not ``ValueError``.  ``consumed_after`` is
    the bit offset just past the offending symbol (code + magnitude).
    """
    if consumed_after > n_payload_bits:
        return EOFError("bit stream exhausted")
    return ValueError("AC run overflows band length")


def _scan_defect(entries, band_length: int, blocks, n_payload_bits: int) -> Exception:
    """Replay a defective AC scan's packed entries to find its *first* defect.

    Cold path.  The batched tier's walk checks only establish *that* a scan
    is defective (entries exhausted, invalid-window sentinel, or more bits
    consumed than the payload holds); when one scan contains several
    defects the class must come from whichever the scalar reference hits
    first in stream order.  This entry-granular replay walks the packed
    entry stream with the scalar decoder's check order — code + magnitude
    bits are read (EOFError past the payload end) before the band-overflow
    check — and returns the first defect's error.
    """
    bit_offset = 0
    index = 0
    entry_list = entries.tolist()
    total = len(entry_list)
    for n_blocks in blocks:
        for _ in range(n_blocks):
            position = 0
            while position < band_length:
                if index >= total:
                    return EOFError("bit stream exhausted")
                entry = entry_list[index]
                index += 1
                if entry == -1:
                    return _invalid_code_error(bit_offset, n_payload_bits)
                bit_offset += entry & 31
                if bit_offset > n_payload_bits:
                    return EOFError("bit stream exhausted")
                position += (entry >> 5) & 0x7F
                if (entry >> 12) and position > band_length:
                    return _overflow_error(bit_offset, n_payload_bits)
    return EOFError("bit stream exhausted")


def decode_scan_body_fast(data: bytes, segment, coefficients) -> None:
    """Decode one scan segment into ``coefficients`` (in place).

    The per-symbol loop stays in Python (a bit stream is sequential), but
    every other cost is folded away: the whole payload is pre-split into
    big-endian 64-bit refill words by one ``np.frombuffer`` pass, so the bit
    buffer lives in local integers refilled by a single list index (no bytes
    slice, no ``int.from_bytes`` call on the hot path); symbols resolve
    through a single LUT probe — by default the superscalar wide-window
    pair table, whose entries carry up to two fully decoded symbols (run,
    consumption, *and* signed value); and decoded values are scattered into
    the flattened plane with one fancy-indexed assignment per component
    instead of a slice write per block.

    Contract: the in-band coefficients of the target planes must be zero
    (as produced by ``empty_coefficients``) — zero coefficients are never
    written, only the nonzero scatter.  Every caller decodes into fresh
    planes, and valid scan scripts cover each coefficient exactly once.

    Divergence from the scalar reference, on *invalid* streams only: a
    symbol with a zero category and a nonzero run (never emitted by either
    encoder) is treated as a pure zero-run rather than a zero coefficient
    after the run, and errors may surface after the whole scan is chased
    rather than at the offending bit.  The error *class* still matches the
    scalar reference on all three defect families — truncation mid-symbol,
    invalid prefix, band overflow — because every raise site classifies by
    the offending symbol's bit offset (``_invalid_code_error`` /
    ``_overflow_error``) and the batched AC tier replays a defective
    scan's entries to find its first defect in stream order
    (``_scan_defect``).  All three tiers raising identical classes is
    asserted by the fuzz tests in ``tests/test_codecs_fastpath.py``; the
    one remaining relaxation is *cross-scan* ordering: when several scans
    of one stream are defective, which scan's error surfaces first may
    differ between tiers (the batched tier defers AC scans behind DC and
    mixed ones).

    The three scan shapes (DC-only, AC-only, mixed) get specialized block
    loops so the per-block work carries no dead branches.
    """
    if codec_config.SUPERSCALAR:
        _decode_scan_bodies_super(data, (segment,), coefficients)
    else:
        _decode_scan_body_single(data, segment, coefficients)


def decode_scan_bodies_fast(data: bytes, segments, coefficients) -> None:
    """Decode a sequence of scan segments into ``coefficients`` (in place).

    The whole-stream entry point (``decode_coefficients`` hands every
    selected segment over at once).  Semantically identical to calling
    :func:`decode_scan_body_fast` per segment — valid scan scripts touch
    disjoint coefficient regions, and each scan's payload is decoded
    independently — but the superscalar tier amortizes its vectorized
    phase-2 epilogue across *all* AC-only scans of the stream, which is
    where per-scan NumPy fixed costs would otherwise dominate (a progressive
    stream has ~8 AC scans, several of them only a few hundred symbols).
    """
    if codec_config.SUPERSCALAR:
        _decode_scan_bodies_super(data, segments, coefficients)
    else:
        for segment in segments:
            _decode_scan_body_single(data, segment, coefficients)


def _decode_scan_body_single(data: bytes, segment, coefficients) -> None:
    """Single-symbol tier: one fused two-level LUT probe per symbol."""
    scan = segment.header
    table, consumed = HuffmanTable.cached_from_bytes(
        data[segment.payload_start : segment.end]
    )
    payload = data[segment.payload_start + consumed : segment.end]
    n_payload_bits = len(payload) * 8
    padded = payload + _PAD
    words = np.frombuffer(padded, dtype=">u8", count=len(padded) >> 3).tolist()
    tables = table.scan_tables()
    ac1 = tables.ac_primary
    ac2 = tables.ac_secondary
    dc1 = tables.dc_primary
    dc2 = tables.dc_secondary
    masks = _MASKS
    halves = _HALVES
    # Inlined word-buffered reader state: `bitbuf` holds `bitcnt` valid low
    # bits (possibly with consumed garbage above them — every extraction
    # masks), `word_index` is the next refill word.
    word_index = 0
    bitbuf = 0
    bitcnt = 0
    spectral_start = scan.spectral_start
    spectral_end = scan.spectral_end
    decode_dc = spectral_start == 0
    decode_ac = spectral_end > 0
    band_start = 1 if decode_dc else spectral_start
    band_length = spectral_end - band_start + 1
    # Garbage that outruns the payload *and* the padding words must
    # surface as the documented EOFError, not as the refill list's
    # IndexError.
    try:
        for component in scan.component_ids:
            plane = coefficients.planes[component]
            n_blocks = plane.shape[0]
            dc_diffs: list[int] = []
            positions: list[int] = []
            values: list[int] = []
            append_diff = dc_diffs.append
            append_position = positions.append
            append_value = values.append
            # `block_base` walks the flat (row-major) offset of each block's
            # first in-band coefficient, so scatter positions are single adds.
            if not decode_ac:  # DC-only scan
                for _ in range(n_blocks):
                    if bitcnt < 32:
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    entry = dc1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                    if entry <= 0:
                        if entry == 0:
                            raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                        entry = dc2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                        if entry == 0:
                            raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                    consume = entry & 0xFFF
                    while consume > bitcnt:  # oversized DC magnitude (rare)
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    bitcnt -= consume
                    category = entry >> 12
                    if category:
                        mask = masks[category]
                        bits = (bitbuf >> bitcnt) & mask
                        append_diff(bits if bits >= halves[category] else bits - mask)
                    else:
                        append_diff(0)
            elif not decode_dc:  # AC-only scan (the common progressive shape)
                for block_base in range(band_start, band_start + (n_blocks << 6), 64):
                    index = 0
                    while index < band_length:
                        if bitcnt < 32:
                            bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                            word_index += 1
                            bitcnt += 64
                        entry = ac1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                        if entry <= 0:
                            if entry == 0:
                                raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                            entry = ac2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                            if entry == 0:
                                raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                        bitcnt -= entry & 0x3F
                        index += entry >> 12
                        category = (entry >> 6) & 0x3F
                        if category:
                            mask = masks[category]
                            bits = (bitbuf >> bitcnt) & mask
                            if index >= band_length:
                                raise _overflow_error((word_index << 6) - bitcnt, n_payload_bits)
                            append_position(block_base + index)
                            append_value(bits if bits >= halves[category] else bits - mask)
                            index += 1
            else:  # mixed scan: DC delta then the AC band, per block
                for block_base in range(band_start, band_start + (n_blocks << 6), 64):
                    if bitcnt < 32:
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    entry = dc1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                    if entry <= 0:
                        if entry == 0:
                            raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                        entry = dc2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                        if entry == 0:
                            raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                    consume = entry & 0xFFF
                    while consume > bitcnt:
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    bitcnt -= consume
                    category = entry >> 12
                    if category:
                        mask = masks[category]
                        bits = (bitbuf >> bitcnt) & mask
                        append_diff(bits if bits >= halves[category] else bits - mask)
                    else:
                        append_diff(0)
                    index = 0
                    while index < band_length:
                        if bitcnt < 32:
                            bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                            word_index += 1
                            bitcnt += 64
                        entry = ac1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                        if entry <= 0:
                            if entry == 0:
                                raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                            entry = ac2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                            if entry == 0:
                                raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                        bitcnt -= entry & 0x3F
                        index += entry >> 12
                        category = (entry >> 6) & 0x3F
                        if category:
                            mask = masks[category]
                            bits = (bitbuf >> bitcnt) & mask
                            if index >= band_length:
                                raise _overflow_error((word_index << 6) - bitcnt, n_payload_bits)
                            append_position(block_base + index)
                            append_value(bits if bits >= halves[category] else bits - mask)
                            index += 1
            if decode_dc:
                plane[:, 0] = np.cumsum(np.asarray(dc_diffs, dtype=np.int64))
            if positions:
                position_array = np.asarray(positions, dtype=np.intp)
                value_array = np.asarray(values, dtype=np.int64)
                if plane.flags.c_contiguous:
                    plane.reshape(-1)[position_array] = value_array
                else:
                    plane[position_array >> 6, position_array & 63] = value_array
    except IndexError:
        raise EOFError("bit stream exhausted") from None
    if (word_index << 6) - bitcnt > n_payload_bits:
        raise EOFError("bit stream exhausted")


def _decode_scan_bodies_super(data: bytes, segments, coefficients) -> None:
    """Superscalar tier driver: batched AC chase + in-place DC/mixed loops.

    Entry handling per pair-table probe (see ``_build_super_tables`` for
    the packing; ``w2 = 2 * window`` indexes the interleaved table, whose
    even slot holds the first symbol and odd slot the one that follows):

    * ``entry > 0`` — the first symbol is fully decoded in the entry
      (consume / position advance / signed value); a nonzero odd-slot entry
      holds a complete second symbol, committed only when the scan still
      has room (the table pairs speculatively across what may be a block
      boundary, and each entry carries its own bit consumption so an
      uncommitted second symbol consumes nothing).  Probing with
      ``bitcnt >= 32`` guarantees a full pair (<= 32 bits) never underruns
      the buffer.
    * ``entry == -1`` — the first symbol's code + magnitude exceed the
      window (oversized magnitude); decode that one symbol through the
      two-level path, exactly as the single-symbol tier does.
    * ``entry == 0`` — invalid prefix: ``ValueError``, same as every tier.

    AC-only scans run the batched decode: :func:`_decode_ac_scans_super`
    collects each scan's raw entry stream (vectorized walk for
    normal-sized payloads, in-place chase for oversized ones), and one
    :func:`_finish_ac_scans` call reconstructs blocks / positions /
    values for all of them at once.
    DC-only and mixed scans decode in place — their symbol streams are
    either trivially positioned (one diff per block) or context-dependent
    (the DC/AC table alternation depends on block structure), so the
    context-free chase does not apply.
    """
    ac_jobs = []
    for segment in segments:
        scan = segment.header
        table, consumed = HuffmanTable.cached_from_bytes(
            data[segment.payload_start : segment.end]
        )
        payload = data[segment.payload_start + consumed : segment.end]
        n_payload_bits = len(payload) * 8
        tables = table.scan_tables()
        if scan.spectral_end == 0 or scan.spectral_start == 0:
            padded = payload + _PAD
            words = np.frombuffer(
                padded, dtype=">u8", count=len(padded) >> 3
            ).tolist()
            if scan.spectral_end == 0:
                _decode_dc_scan_super(
                    words, tables, scan, coefficients, n_payload_bits
                )
            else:
                _decode_mixed_scan_super(
                    words, tables, scan, coefficients, n_payload_bits
                )
        else:
            ac_jobs.append((scan, payload, tables, n_payload_bits))
    if ac_jobs:
        _decode_ac_scans_super(ac_jobs, coefficients)


#: Upper bound on the total payload bytes vectorized into one walk batch.
#: The phase-0 precompute materializes ~40 transient bytes per payload byte
#: (the per-bit window array and its gathers), so the cap bounds peak batch
#: memory at ~10 MiB.  A single scan larger than the cap skips the batched
#: precompute entirely and runs the in-place pair-probe chase instead —
#: per-probe table lookups there cost more, but the scan is big enough to
#: amortize its own epilogue and nothing is ever truncated.
_WALK_BATCH_BYTES = 1 << 18


def _decode_ac_scans_super(jobs, coefficients) -> None:
    """Decode all AC-only scans of a stream through the batched pipeline.

    ``jobs`` holds ``(scan, payload, tables, n_payload_bits)`` in stream
    order.  Normal-sized scans are grouped into walk batches (bounded by
    ``_WALK_BATCH_BYTES``) and symbol-chased by :func:`_walk_ac_batch`;
    oversized scans fall back to the in-place chase (:func:`_chase_ac`).
    Either way every scan contributes one raw entry stream, and a single
    :func:`_finish_ac_scans` call reconstructs all of them — order is
    preserved so multi-scan error surfacing stays deterministic.
    """
    pending = []
    batch = []
    batch_bytes = 0
    for job in jobs:
        payload = job[1]
        if len(payload) > _WALK_BATCH_BYTES:
            if batch:
                pending.extend(_walk_ac_batch(batch))
                batch = []
                batch_bytes = 0
            padded = payload + _PAD
            words = np.frombuffer(
                padded, dtype=">u8", count=len(padded) >> 3
            ).tolist()
            # The chase may consume up to `stop + 1` refill words: the
            # whole payload plus >= 64 bits of 1-padding, so every true
            # payload bit has been decoded by the time the loop stops.
            stop = ((len(payload) + 7) >> 3) + 1
            entries = _chase_ac(words, stop, job[2])
            pending.append(
                (job[0], np.frombuffer(entries, dtype=np.int32), job[3])
            )
        else:
            if batch_bytes + len(payload) > _WALK_BATCH_BYTES and batch:
                pending.extend(_walk_ac_batch(batch))
                batch = []
                batch_bytes = 0
            batch.append(job)
            batch_bytes += len(payload) + len(_WALK_PAD)
    if batch:
        pending.extend(_walk_ac_batch(batch))
    if pending:
        _finish_ac_scans(pending, coefficients)


def _chase_ac(words: list, stop: int, tables) -> array:
    """Phase 1 of the batched AC decode: chase symbols, record raw entries.

    Symbol boundaries in an AC-only scan are *context-free*: every entry
    carries its own bit consumption, so the next symbol's window position
    depends only on the bits, never on block state.  This loop therefore
    does nothing but advance the bit cursor and append each resolved
    packed entry (posdelta format, see ``_build_super_tables``) — no block
    tracking, no position arithmetic, no value unpacking, and second
    symbols commit unconditionally.  All of that deferred work is
    reconstructed vectorized in :func:`_finish_ac_scans`.

    The loop cannot classify errors (it does not know where blocks end):
    an invalid window appends a ``-1`` sentinel entry and stops; running
    past ``stop`` or off the refill words just stops.  Over-decode past
    the true payload is bounded (at most ~2 words of 1-padding) and the
    epilogue ignores entries beyond the last block's end.
    """
    sup = tables.superscalar_tables()[0]
    ac1 = tables.ac_primary
    ac2 = tables.ac_secondary
    masks = _MASKS
    halves = _HALVES
    offset = SUPER_VALUE_OFFSET
    shift = _SUPER_SHIFT
    window_mask = _SUPER_MASK
    entries = array("i")
    append_entry = entries.append
    word_index = 0
    bitbuf = 0
    bitcnt = 0
    try:
        while True:
            if bitcnt < 32:
                if word_index > stop:
                    break
                bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                word_index += 1
                bitcnt += 64
            w2 = (bitbuf >> (bitcnt - shift)) & window_mask
            entry = sup[w2]
            if entry > 0:
                bitcnt -= entry & 31
                append_entry(entry)
                entry = sup[w2 | 1]
                if entry:
                    bitcnt -= entry & 31
                    append_entry(entry)
            elif entry == 0:
                append_entry(-1)
                break
            else:  # oversized magnitude: two-level fallback
                entry = ac1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                if entry <= 0:
                    if entry == 0:
                        append_entry(-1)
                        break
                    entry = ac2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                    if entry == 0:
                        append_entry(-1)
                        break
                # consume <= 31 <= bitcnt: an oversized symbol still fits
                # the >= 32 bits guaranteed by the refill guard.
                consume = entry & 0x3F
                bitcnt -= consume
                run = entry >> 12
                category = (entry >> 6) & 0x3F
                if category:
                    mask = masks[category]
                    bits = (bitbuf >> bitcnt) & mask
                    value = bits if bits >= halves[category] else bits - mask
                    append_entry(
                        (consume | ((run + 1) << 5)) | ((value + offset) << 12)
                    )
                else:  # unreachable on real tables (cat 0 never oversizes)
                    append_entry(consume | (run << 5))
    except IndexError:
        # Garbage decoded off the end of the refill words; the epilogue
        # classifies what is missing.
        pass
    return entries


#: Padding appended per scan inside a walk batch blob.  16 bytes cover the
#: widest read past a scan's true payload: the walk probes up to 64 bits
#: into the padding (mirroring the chase), and a two-level escape there
#: reads at most 6 bytes from bit ``n_payload_bits + 64`` — byte
#: ``len(payload) + 8 + 6``, still inside this scan's padding.  The 1-bits
#: match the writer's end-of-stream padding, like ``_PAD``.
_WALK_PAD = b"\xff" * 16

#: Per-byte window extraction constants: byte triple ``b, b+1, b+2`` holds
#: the 8 windows starting at bits ``8b .. 8b + 7``; window ``k`` is
#: ``(u24 >> (24 - k - SUPER_BITS)) & _WINDOW_MASK``.
_WINDOW_SHIFTS = np.arange(24 - SUPER_BITS, 16 - SUPER_BITS, -1, dtype=np.int32)
_WINDOW_MASK = (1 << SUPER_BITS) - 1

#: Batch-stacked walk tables keyed by the batch's table-set uids.  One
#: stack is ~72 KiB per scan at ``SUPER_BITS = 13`` and batch shapes recur
#: for every record of a dataset; the cap bounds residency at a few MiB.
_WALK_STACK_CACHE: dict = {}
_WALK_STACK_LIMIT = 16


def _stacked_walk_tables(table_sets: tuple):
    """Memoized ``(slots1, slots2, pairbits)`` stacks for one walk batch.

    Scan ``i`` of the batch owns the ``[i << SUPER_BITS, (i + 1) <<
    SUPER_BITS)`` range of each stack, so adding ``i << SUPER_BITS`` to a
    window turns every per-scan table lookup of the batch into one global
    gather.  Keyed on :attr:`_TableSet.uid` (stable, never reused), so a
    rebuilt table set can never alias a stale stack.
    """
    key = tuple(table_set.uid for table_set in table_sets)
    stacked = _WALK_STACK_CACHE.get(key)
    if stacked is None:
        walks = [table_set.walk_tables() for table_set in table_sets]
        if len(walks) == 1:
            stacked = walks[0]
        else:
            stacked = (
                np.concatenate([w[0] for w in walks]),
                np.concatenate([w[1] for w in walks]),
                np.concatenate([w[2] for w in walks]),
            )
        if len(_WALK_STACK_CACHE) >= _WALK_STACK_LIMIT:
            _WALK_STACK_CACHE.clear()
        _WALK_STACK_CACHE[key] = stacked
    return stacked


def _walk_ac_batch(jobs) -> list:
    """Chase a batch of AC-only scans via the precomputed stride walk.

    The in-place chase spends most of its time on bit-buffer bookkeeping:
    refills, shift/mask window extraction, and per-symbol entry appends.
    This pipeline vectorizes all of that away.  Phase 0 computes, for
    *every bit offset* of every payload in the batch, the ``SUPER_BITS``-bit
    window starting there (one broadcast shift over byte triples) and
    gathers each window's walk stride — the total bit length of every
    symbol pair-resolved at that offset — into one bytes object.  Phase 1
    is then the leanest possible Python loop (:func:`_walk_ac_one`): index
    a byte, add it to the cursor — one step per *probe* (two symbols ~85%
    of the time), with no buffer state at all.  Phase 2 reconstructs the
    actual packed entries by gathering the slot tables at the recorded
    probe offsets and compacting out empty second slots, patching in the
    (rare) two-level escape results recorded by the walk.

    Returns ``(scan, entries, n_payload_bits)`` per job, in order, with
    ``entries`` as an ``int32`` array in the same posdelta format the
    chase produces — both feed :func:`_finish_ac_scans` unchanged.
    """
    size = 1 << SUPER_BITS
    slots1, slots2, pairbits = _stacked_walk_tables(
        tuple(job[2] for job in jobs)
    )
    parts = []
    for _, payload, _, _ in jobs:
        parts.append(payload)
        parts.append(_WALK_PAD)
    blob = b"".join(parts)
    blob_bytes = np.frombuffer(blob, dtype=np.uint8).astype(np.int32)
    u24 = (blob_bytes[:-2] << 16) | (blob_bytes[1:-1] << 8) | blob_bytes[2:]
    windows = ((u24[:, None] >> _WINDOW_SHIFTS) & _WINDOW_MASK).reshape(-1)
    byte_lengths = np.asarray(
        [len(job[1]) + len(_WALK_PAD) for job in jobs], dtype=np.int32
    )
    scan_offsets = np.repeat(
        np.arange(len(jobs), dtype=np.int32) * size, byte_lengths << 3
    )[: windows.shape[0]]
    windows += scan_offsets
    strides = pairbits[windows].tobytes()
    # Phase 1: walk each scan's stride bytes.
    probe_parts = []
    fallback_entries: list[int] = []
    bit_base = 0
    byte_base = 0
    for scan, payload, tables, n_payload_bits in jobs:
        probes = _walk_ac_one(
            strides[bit_base : bit_base + n_payload_bits + 64],
            blob,
            byte_base,
            tables,
            fallback_entries,
        )
        probe_parts.append(np.frombuffer(probes, dtype=np.int32) + bit_base)
        bit_base += int(byte_lengths[len(probe_parts) - 1]) << 3
        byte_base += int(byte_lengths[len(probe_parts) - 1])
    # Phase 2: reconstruct packed entries at the probed offsets.
    probe_counts = np.asarray([p.shape[0] for p in probe_parts], dtype=np.int64)
    all_probes = (
        probe_parts[0] if len(probe_parts) == 1 else np.concatenate(probe_parts)
    )
    probed_windows = windows[all_probes]
    first = slots1[probed_windows]
    second = slots2[probed_windows]
    if fallback_entries:
        escape_mask = first <= 0
        first[escape_mask] = np.asarray(fallback_entries, dtype=np.int32)
        second[escape_mask] = 0
    interleaved = np.empty(2 * first.shape[0], dtype=np.int32)
    interleaved[0::2] = first
    interleaved[1::2] = second
    occupied = interleaved != 0
    flat = interleaved[occupied]
    # Per-scan entry counts: prefix-sum the occupancy at each scan's last
    # interleaved slot (every scan records at least one probe).
    occupied_cum = np.cumsum(occupied)
    entry_bounds = occupied_cum[(np.cumsum(probe_counts) << 1) - 1].tolist()
    pending = []
    lower = 0
    for job, upper in zip(jobs, entry_bounds):
        pending.append((job[0], flat[lower:upper], job[3]))
        lower = upper
    return pending


def _walk_ac_one(
    strides: bytes, blob: bytes, byte_base: int, tables, fallback_entries: list
) -> array:
    """Phase-1 stride walk over one scan: record probe bit offsets.

    ``strides[p]`` is the precomputed total bit length of every symbol the
    superscalar window at bit ``p`` resolves, so the hot loop is a bytes
    index and an add per probe — ``bytes`` indexing returns interned small
    ints, so the loop allocates nothing.  A zero stride means the window
    cannot be walked through (invalid prefix or oversized first symbol):
    the symbol is resolved through the two-level path directly on the blob
    bytes and its packed entry (or a ``-1`` invalid sentinel, which ends
    the walk) is appended to ``fallback_entries``; phase 2 patches these
    into the gathered entry stream, so the walk stays branch-lean.  The
    walk ends when the cursor runs off the stride bytes, which cover the
    payload plus 64 bits of padding — same over-decode window as the
    chase, classified by the same epilogue.
    """
    ac1 = tables.ac_primary
    ac2 = tables.ac_secondary
    masks = _MASKS
    halves = _HALVES
    offset = SUPER_VALUE_OFFSET
    probes = array("i")
    record = probes.append
    escape = fallback_entries.append
    cursor = 0
    try:
        while True:
            stride = strides[cursor]
            if stride:
                record(cursor)
                cursor += stride
            else:
                byte = byte_base + (cursor >> 3)
                phase = cursor & 7
                prefix = int.from_bytes(blob[byte : byte + 3], "big")
                entry = ac1[(prefix >> (16 - phase)) & 0xFF]
                if entry <= 0:
                    if entry == 0:
                        record(cursor)
                        escape(-1)
                        break
                    entry = ac2[-entry - 1][(prefix >> (8 - phase)) & 0xFF]
                    if entry == 0:
                        record(cursor)
                        escape(-1)
                        break
                consume = entry & 0x3F
                run = entry >> 12
                category = (entry >> 6) & 0x3F
                record(cursor)
                if category:
                    # Code + magnitude span at most 31 bits, so 6 bytes
                    # starting at the cursor's byte always cover them.
                    wide = int.from_bytes(blob[byte : byte + 6], "big")
                    mask = masks[category]
                    bits = (wide >> (48 - phase - consume)) & mask
                    value = bits if bits >= halves[category] else bits - mask
                    escape(
                        (consume | ((run + 1) << 5)) | ((value + offset) << 12)
                    )
                else:  # unreachable on real tables (cat 0 never oversizes)
                    escape(consume | (run << 5))
                cursor += consume
    except IndexError:
        pass
    return probes


#: Scan-shape key -> flat block-base offsets for the batched epilogue.
#: Entries are 4 bytes/block and shapes recur heavily within a dataset; the
#: cap only guards callers that decode thousands of distinct geometries.
_GEOMETRY_CACHE: dict = {}
_GEOMETRY_LIMIT = 256


def _scan_geometry(band_start: int, blocks: tuple):
    """Memoized flat block-base offsets for the batched epilogue.

    Returns, for every block of the scan (components concatenated in scan
    order), the flat plane offset of the band's first slot.
    """
    key = (band_start, blocks)
    geometry = _GEOMETRY_CACHE.get(key)
    if geometry is None:
        bases = [
            band_start + (np.arange(n_blocks, dtype=np.int32) << 6)
            for n_blocks in blocks
        ]
        geometry = bases[0] if len(bases) == 1 else np.concatenate(bases)
        if len(_GEOMETRY_CACHE) >= _GEOMETRY_LIMIT:
            _GEOMETRY_CACHE.clear()
        _GEOMETRY_CACHE[key] = geometry
    return geometry


def _finish_ac_scans(pending, coefficients) -> None:
    """Phase 2 of the batched AC decode: reconstruct scans from raw entries.

    ``pending`` holds ``(scan, entries, n_payload_bits)`` per AC-only scan,
    where ``entries`` is the packed posdelta stream collected by
    :func:`_chase_ac`.  Reconstruction is vectorized over the concatenation
    of every pending scan's entries (amortizing NumPy fixed costs across
    the whole stream):

    1.  ``cumsum(posdelta)`` gives each entry's in-band end position, and
        one ``searchsorted`` finds, for every potential block start, the
        entry that finishes that block (the first whose cumulative advance
        covers the band).
    2.  A Python loop walks those links — one iteration per *block*, not
        per symbol — recording each block's first entry and each
        component's entry bound, and flagging defective scans: a chase
        that stopped on an invalid window (``-1`` sentinel), one that ran
        out of entries, or one whose needed entries consumed more bits
        than the payload holds (garbage decoded from the 1-padding).  A
        flagged scan is handed to :func:`_scan_defect`, which replays its
        entries to surface the same error class, for the same first
        defect, as the scalar reference.
    3.  One vectorized pass expands block starts into per-entry
        block-relative positions, validates every coefficient against the
        band length, and scatters the nonzero coefficients into each
        component's plane, split per (scan, component) by one
        ``searchsorted`` over the recorded bounds.
    """
    planes = coefficients.planes
    entry_parts = []
    lengths = []
    band_lengths = []
    blocks_per_scan = []
    geometries = []
    for scan, entries, _ in pending:
        entry_parts.append(entries)
        lengths.append(len(entries))
        band_lengths.append(scan.spectral_end - scan.spectral_start + 1)
        blocks = tuple(planes[c].shape[0] for c in scan.component_ids)
        blocks_per_scan.append(blocks)
        geometries.append(_scan_geometry(scan.spectral_start, blocks))
    entry_array = (
        entry_parts[0] if len(entry_parts) == 1 else np.concatenate(entry_parts)
    )
    n_entries = entry_array.shape[0]
    # int32 throughout while the cumulative sums provably fit (an entry
    # advances <= 127 positions and consumes <= 31 bits); NumPy would
    # otherwise silently promote int32 cumsums to int64.
    cum_dtype = np.int32 if n_entries < (1 << 24) else np.int64
    advance = (entry_array >> 5) & 0x7F
    end_position = np.cumsum(advance, dtype=cum_dtype)
    bit_cum = np.cumsum(entry_array & 31, dtype=cum_dtype)
    if len(pending) == 1:
        band_length_per_entry = band_lengths[0]
    else:
        band_length_per_entry = np.repeat(
            np.asarray(band_lengths, dtype=np.int32),
            np.asarray(lengths),
        )
    thresholds = end_position - advance + band_length_per_entry
    # For entry i taken as a block start, the block ends at the first entry
    # whose cumulative advance reaches start + band_length.  Valid because
    # every entry advances by >= 1, so end_position is strictly increasing.
    block_end = np.searchsorted(end_position, thresholds, side="left")
    block_end_list = block_end.tolist()
    block_starts = array("i")
    record_start = block_starts.append
    component_bounds = array("i")
    record_bound = component_bounds.append
    scan_cursors = []
    base = 0
    for scan_index, (scan, entries, n_payload_bits) in enumerate(pending):
        end_limit = base + lengths[scan_index]
        sentinel = lengths[scan_index] > 0 and entries[-1] == -1
        cursor = base
        complete = True
        for n_blocks in blocks_per_scan[scan_index]:
            for _ in range(n_blocks):
                if cursor >= end_limit:
                    complete = False
                    break
                record_start(cursor)
                cursor = block_end_list[cursor] + 1
            if not complete:
                break
            record_bound(cursor)
        if not complete or cursor > end_limit:
            raise _scan_defect(
                entries,
                band_lengths[scan_index],
                blocks_per_scan[scan_index],
                n_payload_bits,
            )
        if sentinel and cursor > end_limit - 1:
            # The chase "finished" only by consuming the invalid-window
            # sentinel entry itself.
            raise _scan_defect(
                entries,
                band_lengths[scan_index],
                blocks_per_scan[scan_index],
                n_payload_bits,
            )
        consumed = (
            int(bit_cum[cursor - 1]) - (int(bit_cum[base - 1]) if base else 0)
            if cursor > base
            else 0
        )
        if consumed > n_payload_bits:
            raise _scan_defect(
                entries,
                band_lengths[scan_index],
                blocks_per_scan[scan_index],
                n_payload_bits,
            )
        scan_cursors.append(cursor)
        base = end_limit
    starts = np.frombuffer(block_starts, dtype=np.int32)
    if starts.shape[0] == 0:
        return
    # Blocks tile each scan's entry range contiguously (the walk above sets
    # every next start to the previous block's end + 1, and scan s + 1
    # starts exactly at scan s's end limit), so per-block entry counts are
    # just next-start differences — with the last block absorbing the final
    # scan's unused tail so the counts sum to n_entries and every
    # block-constant can be broadcast over the *full* entry array by one
    # np.repeat, no row-index gathers.  Tail entries (decoded from the
    # padding past each scan's needed symbols) are excluded from both the
    # band check and the scatter by clearing their coefficient flag below.
    counts = np.empty(starts.shape[0], dtype=np.int32)
    np.subtract(starts[1:], starts[:-1], out=counts[:-1])
    counts[-1] = n_entries - int(starts[-1])
    start_position_per_entry = np.repeat(
        end_position[starts] - advance[starts], counts
    )
    relative = end_position - start_position_per_entry - 1
    value_offsets = entry_array >> 12
    is_coefficient = value_offsets > 0
    base = 0
    for cursor, length in zip(scan_cursors, lengths):
        end_limit = base + length
        if cursor < end_limit:
            is_coefficient[cursor:end_limit] = False
        base = end_limit
    # Pure-run entries (EOB/ZRL) legitimately advance past the band end;
    # only entries that carry a coefficient are band-checked.
    if np.any((relative >= band_length_per_entry) & is_coefficient):
        raise ValueError("AC run overflows band length")
    block_base = (
        geometries[0] if len(geometries) == 1 else np.concatenate(geometries)
    )
    flat_positions = (np.repeat(block_base, counts) + relative)[is_coefficient]
    flat_values = value_offsets[is_coefficient] - SUPER_VALUE_OFFSET
    # A component's coefficient count is the coefficient-flag prefix sum at
    # its recorded entry bound.
    coefficient_cum = np.concatenate(
        ([0], np.cumsum(is_coefficient, dtype=np.int64))
    )
    bounds = coefficient_cum[
        np.frombuffer(component_bounds, dtype=np.int32)
    ].tolist()
    lower = 0
    bound_index = 0
    for scan, _, _ in pending:
        for component in scan.component_ids:
            upper = bounds[bound_index]
            bound_index += 1
            if upper > lower:
                plane = planes[component]
                position_array = flat_positions[lower:upper]
                value_array = flat_values[lower:upper]
                if plane.flags.c_contiguous:
                    plane.reshape(-1)[position_array] = value_array
                else:
                    plane[position_array >> 6, position_array & 63] = value_array
            lower = upper


def _decode_dc_scan_super(
    words: list, tables, scan, coefficients, n_payload_bits: int
) -> None:
    """DC-only scan: in-place pair-probe loop, up to two diffs per probe."""
    sup = tables.superscalar_tables()[1]
    dc1 = tables.dc_primary
    dc2 = tables.dc_secondary
    masks = _MASKS
    halves = _HALVES
    offset = SUPER_VALUE_OFFSET
    shift = _SUPER_SHIFT
    window_mask = _SUPER_MASK
    word_index = 0
    bitbuf = 0
    bitcnt = 0
    try:
        for component in scan.component_ids:
            plane = coefficients.planes[component]
            dc_diffs: list[int] = []
            append_diff = dc_diffs.append
            remaining = plane.shape[0]
            while remaining:
                if bitcnt < 32:
                    bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                    word_index += 1
                    bitcnt += 64
                w2 = (bitbuf >> (bitcnt - shift)) & window_mask
                entry = sup[w2]
                if entry > 0:
                    bitcnt -= entry & 31
                    append_diff((entry >> 12) - offset)
                    remaining -= 1
                    second = sup[w2 | 1]
                    if second and remaining:
                        bitcnt -= second & 31
                        append_diff((second >> 12) - offset)
                        remaining -= 1
                elif entry == 0:
                    raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                else:  # oversized magnitude: two-level fallback
                    entry = dc1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                    if entry <= 0:
                        if entry == 0:
                            raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                        entry = dc2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                        if entry == 0:
                            raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                    consume = entry & 0xFFF
                    while consume > bitcnt:  # oversized DC magnitude (rare)
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    bitcnt -= consume
                    category = entry >> 12
                    if category:
                        mask = masks[category]
                        bits = (bitbuf >> bitcnt) & mask
                        append_diff(bits if bits >= halves[category] else bits - mask)
                    else:
                        append_diff(0)
                    remaining -= 1
            plane[:, 0] = np.cumsum(np.asarray(dc_diffs, dtype=np.int64))
    except IndexError:
        raise EOFError("bit stream exhausted") from None
    if (word_index << 6) - bitcnt > n_payload_bits:
        raise EOFError("bit stream exhausted")


def _decode_mixed_scan_super(
    words: list, tables, scan, coefficients, n_payload_bits: int
) -> None:
    """Mixed scan: DC delta then the AC band, per block, in place.

    The DC probe uses the pair table but commits only its first symbol —
    the symbol after a mixed-scan DC delta is an AC symbol, which the
    DC-flavour pairing cannot know.  The AC inner loop commits pairs with
    posdelta position tracking: ``index`` holds the band position *after*
    the symbol, so a coefficient lands at ``index - 1`` and overflow is
    ``index > band_length``.
    """
    sup_ac, sup_dc = tables.superscalar_tables()
    ac1 = tables.ac_primary
    ac2 = tables.ac_secondary
    dc1 = tables.dc_primary
    dc2 = tables.dc_secondary
    masks = _MASKS
    halves = _HALVES
    offset = SUPER_VALUE_OFFSET
    shift = _SUPER_SHIFT
    window_mask = _SUPER_MASK
    word_index = 0
    bitbuf = 0
    bitcnt = 0
    band_length = scan.spectral_end  # the AC band starts at slot 1
    try:
        for component in scan.component_ids:
            plane = coefficients.planes[component]
            n_blocks = plane.shape[0]
            dc_diffs: list[int] = []
            positions: list[int] = []
            values: list[int] = []
            append_diff = dc_diffs.append
            append_position = positions.append
            append_value = values.append
            for block_base in range(1, 1 + (n_blocks << 6), 64):
                if bitcnt < 32:
                    bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                    word_index += 1
                    bitcnt += 64
                entry = sup_dc[(bitbuf >> (bitcnt - shift)) & window_mask]
                if entry > 0:
                    bitcnt -= entry & 31
                    append_diff((entry >> 12) - offset)
                elif entry == 0:
                    raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                else:  # oversized magnitude: two-level fallback
                    entry = dc1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                    if entry <= 0:
                        if entry == 0:
                            raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                        entry = dc2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                        if entry == 0:
                            raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                    consume = entry & 0xFFF
                    while consume > bitcnt:
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    bitcnt -= consume
                    category = entry >> 12
                    if category:
                        mask = masks[category]
                        bits = (bitbuf >> bitcnt) & mask
                        append_diff(bits if bits >= halves[category] else bits - mask)
                    else:
                        append_diff(0)
                index = 0
                while index < band_length:
                    if bitcnt < 32:
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    w2 = (bitbuf >> (bitcnt - shift)) & window_mask
                    entry = sup_ac[w2]
                    if entry > 0:
                        bitcnt -= entry & 31
                        index += (entry >> 5) & 0x7F
                        voff = entry >> 12
                        if voff:
                            if index > band_length:
                                raise _overflow_error((word_index << 6) - bitcnt, n_payload_bits)
                            append_position(block_base + index - 1)
                            append_value(voff - offset)
                        entry = sup_ac[w2 | 1]
                        if entry and index < band_length:
                            bitcnt -= entry & 31
                            index += (entry >> 5) & 0x7F
                            voff = entry >> 12
                            if voff:
                                if index > band_length:
                                    raise _overflow_error((word_index << 6) - bitcnt, n_payload_bits)
                                append_position(block_base + index - 1)
                                append_value(voff - offset)
                    elif entry == 0:
                        raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                    else:  # oversized magnitude: two-level fallback
                        entry = ac1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                        if entry <= 0:
                            if entry == 0:
                                raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                            entry = ac2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                            if entry == 0:
                                raise _invalid_code_error((word_index << 6) - bitcnt, n_payload_bits)
                        bitcnt -= entry & 0x3F
                        index += entry >> 12
                        category = (entry >> 6) & 0x3F
                        if category:
                            mask = masks[category]
                            bits = (bitbuf >> bitcnt) & mask
                            if index >= band_length:
                                raise _overflow_error((word_index << 6) - bitcnt, n_payload_bits)
                            append_position(block_base + index)
                            append_value(bits if bits >= halves[category] else bits - mask)
                            index += 1
            plane[:, 0] = np.cumsum(np.asarray(dc_diffs, dtype=np.int64))
            if positions:
                position_array = np.asarray(positions, dtype=np.intp)
                value_array = np.asarray(values, dtype=np.int64)
                if plane.flags.c_contiguous:
                    plane.reshape(-1)[position_array] = value_array
                else:
                    plane[position_array >> 6, position_array & 63] = value_array
    except IndexError:
        raise EOFError("bit stream exhausted") from None
    if (word_index << 6) - bitcnt > n_payload_bits:
        raise EOFError("bit stream exhausted")
