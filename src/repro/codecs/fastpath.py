"""Table-driven fast path for scan-level entropy coding.

This module is the vectorized counterpart of the scalar scan coder in
:mod:`repro.codecs.progressive`:

* Encoding turns a whole coefficient plane into ``(symbol, bits, width)``
  arrays with NumPy (see :mod:`repro.codecs.rle`), builds the scan's
  optimized Huffman table from a single ``bincount``, fuses each symbol's
  code with its magnitude bits, and hands the batch to
  ``BitWriter.write_many``.
* Decoding resolves symbols through the two-level Huffman LUT
  (``peek_bits``/``skip_bits`` on the word-buffered reader) and defers all
  coefficient-plane writes to one vectorized scatter per component instead
  of a Python slice assignment per block.

Both directions produce byte-identical streams / identical coefficients to
the scalar reference — that property is enforced by the differential tests
in ``tests/test_codecs_fastpath.py``.  The dispatch lives in
:mod:`repro.codecs.progressive`, gated by :mod:`repro.codecs.config`.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.bitio import BitWriter
from repro.codecs.huffman import HuffmanTable
from repro.codecs.rle import (
    ac_symbol_arrays,
    dc_symbol_arrays,
    mixed_symbol_arrays,
)

__all__ = ["encode_scan_body_fast", "decode_scan_body_fast"]


def _scan_symbol_arrays(plane: np.ndarray, spectral_start: int, spectral_end: int):
    if spectral_start == 0 and spectral_end == 0:
        return dc_symbol_arrays(plane[:, 0])
    if spectral_start == 0:
        return mixed_symbol_arrays(plane, spectral_end)
    return ac_symbol_arrays(plane[:, spectral_start : spectral_end + 1])


def encode_scan_body_fast(coefficients, scan) -> bytes:
    """Entropy-code one scan (table + bits), byte-identical to the scalar path."""
    per_component = []
    symbol_counts = np.zeros(256, dtype=np.int64)
    for component in scan.component_ids:
        plane = coefficients.planes[component]
        arrays = _scan_symbol_arrays(plane, scan.spectral_start, scan.spectral_end)
        per_component.append(arrays)
        if arrays[0].size:
            symbol_counts += np.bincount(arrays[0], minlength=256)
    present = np.nonzero(symbol_counts)[0]
    table = HuffmanTable.from_counts(
        dict(zip(present.tolist(), symbol_counts[present].tolist()))
    )
    codes, lengths = table.encode_arrays()
    code_array = np.asarray(codes, dtype=np.int64)
    length_array = np.asarray(lengths, dtype=np.int64)
    writer = BitWriter()
    for symbols, bits, n_bits in per_component:
        values = (code_array[symbols] << n_bits) | bits
        widths = length_array[symbols] + n_bits
        # Fuse adjacent (value, width) pairs so the writer loop runs half as
        # many iterations.  Safe whenever a single item is at most 31 bits
        # (always true for AC symbols; only pathological DC magnitudes can
        # exceed it), since two fused items then fit in an int64.
        n_items = values.shape[0]
        if n_items > 1 and int(widths.max()) <= 31:
            head = n_items & ~1
            fused_values = (values[0:head:2] << widths[1:head:2]) | values[1:head:2]
            fused_widths = widths[0:head:2] + widths[1:head:2]
            if head != n_items:
                fused_values = np.append(fused_values, values[-1])
                fused_widths = np.append(fused_widths, widths[-1])
            values, widths = fused_values, fused_widths
        writer.write_many(values.tolist(), widths.tolist())
    return table.to_bytes() + writer.getvalue()


#: Low-bit masks indexed by width.  Sized generously: the refill guard masks
#: at ``bitcnt`` (which can reach ``consume + 63`` while buffering an
#: oversized DC magnitude, ``consume <= 271``) and magnitude extraction
#: indexes by category (<= 255 for pathological DC tables).
_MASKS = tuple((1 << n) - 1 for n in range(1024))

#: ``1 << (category - 1)`` — the positive/negative threshold of a magnitude
#: field, indexed by category (0 unused).
_HALVES = (0,) + tuple(1 << (n - 1) for n in range(1, 1024))

#: Bytes of 1-padding appended to a scan payload before it is carved into
#: 64-bit refill words.  On a valid stream the reader never consumes more
#: than ~5 words past the true payload (32-bit guard + one oversized-DC
#: refill), so 64 pad bytes (>= 7 whole words after truncation) make every
#: in-range refill a plain list index without per-refill bounds checks.
#: The 1-bits match the writer's end-of-stream padding.  A corrupt stream
#: that decodes into the padding is caught by the consumed-bits check after
#: the scan, or -- if garbage outruns the padding entirely -- by the refill
#: IndexError guard, both surfacing as ``EOFError``.
_PAD = b"\xff" * 64


def decode_scan_body_fast(data: bytes, segment, coefficients) -> None:
    """Decode one scan segment into ``coefficients`` (in place).

    The per-symbol loop stays in Python (a bit stream is sequential), but
    every other cost is folded away: the whole payload is pre-split into
    big-endian 64-bit refill words by one ``np.frombuffer`` pass, so the bit
    buffer lives in local integers refilled by a single list index (no bytes
    slice, no ``int.from_bytes`` call on the hot path); each symbol costs one
    two-level probe of a *fused* LUT whose entry packs the zero-run, the
    magnitude category, and the combined bit consumption of code plus
    magnitude (EOB is a run of 64, so it terminates the block loop through
    the ordinary run arithmetic — no per-symbol marker branches); and
    decoded values are scattered into the flattened plane with one
    fancy-indexed assignment per component instead of a slice write per
    block.

    Contract: the in-band coefficients of the target planes must be zero
    (as produced by ``empty_coefficients``) — zero coefficients are never
    written, only the nonzero scatter.  Every caller decodes into fresh
    planes, and valid scan scripts cover each coefficient exactly once.

    Divergence from the scalar reference, on *invalid* streams only: a
    symbol with a zero category and a nonzero run (never emitted by either
    encoder) is treated as a pure zero-run, and a stream truncated
    mid-symbol may surface as ``EOFError`` after the scan (from the
    consumed-bits check) rather than at the exact offending bit.

    The three scan shapes (DC-only, AC-only, mixed) get specialized block
    loops so the per-block work carries no dead branches.
    """
    scan = segment.header
    table, consumed = HuffmanTable.cached_from_bytes(
        data[segment.payload_start : segment.end]
    )
    payload = data[segment.payload_start + consumed : segment.end]
    n_payload_bits = len(payload) * 8
    padded = payload + _PAD
    words = np.frombuffer(padded, dtype=">u8", count=len(padded) >> 3).tolist()
    tables = table.scan_tables()
    ac1 = tables.ac_primary
    ac2 = tables.ac_secondary
    dc1 = tables.dc_primary
    dc2 = tables.dc_secondary
    masks = _MASKS
    halves = _HALVES
    # Inlined word-buffered reader state: `bitbuf` holds `bitcnt` valid low
    # bits (possibly with consumed garbage above them — every extraction
    # masks), `word_index` is the next refill word.
    word_index = 0
    bitbuf = 0
    bitcnt = 0
    spectral_start = scan.spectral_start
    spectral_end = scan.spectral_end
    decode_dc = spectral_start == 0
    decode_ac = spectral_end > 0
    band_start = 1 if decode_dc else spectral_start
    band_length = spectral_end - band_start + 1
    # Garbage that outruns the payload *and* the padding words must
    # surface as the documented EOFError, not as the refill list's
    # IndexError.
    try:
        for component in scan.component_ids:
            plane = coefficients.planes[component]
            n_blocks = plane.shape[0]
            dc_diffs: list[int] = []
            positions: list[int] = []
            values: list[int] = []
            append_diff = dc_diffs.append
            append_position = positions.append
            append_value = values.append
            # `block_base` walks the flat (row-major) offset of each block's
            # first in-band coefficient, so scatter positions are single adds.
            if not decode_ac:  # DC-only scan
                for _ in range(n_blocks):
                    if bitcnt < 32:
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    entry = dc1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                    if entry <= 0:
                        if entry == 0:
                            raise ValueError("invalid Huffman code in bit stream")
                        entry = dc2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                        if entry == 0:
                            raise ValueError("invalid Huffman code in bit stream")
                    consume = entry & 0xFFF
                    while consume > bitcnt:  # oversized DC magnitude (rare)
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    bitcnt -= consume
                    category = entry >> 12
                    if category:
                        mask = masks[category]
                        bits = (bitbuf >> bitcnt) & mask
                        append_diff(bits if bits >= halves[category] else bits - mask)
                    else:
                        append_diff(0)
            elif not decode_dc:  # AC-only scan (the common progressive shape)
                for block_base in range(band_start, band_start + (n_blocks << 6), 64):
                    index = 0
                    while index < band_length:
                        if bitcnt < 32:
                            bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                            word_index += 1
                            bitcnt += 64
                        entry = ac1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                        if entry <= 0:
                            if entry == 0:
                                raise ValueError("invalid Huffman code in bit stream")
                            entry = ac2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                            if entry == 0:
                                raise ValueError("invalid Huffman code in bit stream")
                        bitcnt -= entry & 0x3F
                        index += entry >> 12
                        category = (entry >> 6) & 0x3F
                        if category:
                            mask = masks[category]
                            bits = (bitbuf >> bitcnt) & mask
                            if index >= band_length:
                                raise ValueError("AC run overflows band length")
                            append_position(block_base + index)
                            append_value(bits if bits >= halves[category] else bits - mask)
                            index += 1
            else:  # mixed scan: DC delta then the AC band, per block
                for block_base in range(band_start, band_start + (n_blocks << 6), 64):
                    if bitcnt < 32:
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    entry = dc1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                    if entry <= 0:
                        if entry == 0:
                            raise ValueError("invalid Huffman code in bit stream")
                        entry = dc2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                        if entry == 0:
                            raise ValueError("invalid Huffman code in bit stream")
                    consume = entry & 0xFFF
                    while consume > bitcnt:
                        bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                        word_index += 1
                        bitcnt += 64
                    bitcnt -= consume
                    category = entry >> 12
                    if category:
                        mask = masks[category]
                        bits = (bitbuf >> bitcnt) & mask
                        append_diff(bits if bits >= halves[category] else bits - mask)
                    else:
                        append_diff(0)
                    index = 0
                    while index < band_length:
                        if bitcnt < 32:
                            bitbuf = ((bitbuf & masks[bitcnt]) << 64) | words[word_index]
                            word_index += 1
                            bitcnt += 64
                        entry = ac1[(bitbuf >> (bitcnt - 8)) & 0xFF]
                        if entry <= 0:
                            if entry == 0:
                                raise ValueError("invalid Huffman code in bit stream")
                            entry = ac2[-entry - 1][(bitbuf >> (bitcnt - 16)) & 0xFF]
                            if entry == 0:
                                raise ValueError("invalid Huffman code in bit stream")
                        bitcnt -= entry & 0x3F
                        index += entry >> 12
                        category = (entry >> 6) & 0x3F
                        if category:
                            mask = masks[category]
                            bits = (bitbuf >> bitcnt) & mask
                            if index >= band_length:
                                raise ValueError("AC run overflows band length")
                            append_position(block_base + index)
                            append_value(bits if bits >= halves[category] else bits - mask)
                            index += 1
            if decode_dc:
                plane[:, 0] = np.cumsum(np.asarray(dc_diffs, dtype=np.int64))
            if positions:
                position_array = np.asarray(positions, dtype=np.intp)
                value_array = np.asarray(values, dtype=np.int64)
                if plane.flags.c_contiguous:
                    plane.reshape(-1)[position_array] = value_array
                else:
                    plane[position_array >> 6, position_array & 63] = value_array
    except IndexError:
        raise EOFError("bit stream exhausted") from None
    if (word_index << 6) - bitcnt > n_payload_bits:
        raise EOFError("bit stream exhausted")
