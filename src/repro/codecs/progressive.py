"""Progressive (spectral-selection) encoding and decoding.

A progressive stream stores the quantized DCT coefficients of every block in
multiple *scans*.  Each scan covers a spectral band ``[ss, se]`` of zigzag
indices for one or more components, ordered so that early scans carry the
perceptually important low frequencies.  Decoding a prefix of the scans
yields an approximation of the full image — the property PCR scan groups are
built on.

The default scan script produces 10 scans (matching libjpeg's default
progressive behaviour referenced in the paper, Section 3.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.codecs import config as codec_config
from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.fastpath import (
    decode_scan_bodies_fast,
    decode_scan_body_fast,
    encode_scan_body_fast,
)
from repro.codecs.blocks import block_grid_shape, merge_blocks, split_into_blocks
from repro.codecs.color import (
    rgb_to_ycbcr,
    subsample_420,
    upsample_420,
    ycbcr_to_rgb,
)
from repro.codecs.dct import forward_dct_blocks, inverse_dct_blocks
from repro.codecs.huffman import HuffmanTable
from repro.codecs.image import ImageBuffer
from repro.obs import get_registry, get_tracer
from repro.codecs.markers import (
    EOI,
    SOI,
    SUBSAMPLING_420,
    SUBSAMPLING_NONE,
    CodecFormatError,
    FrameHeader,
    ScanHeader,
    ScanSegment,
    find_scan_segments,
    parse_frame_header,
    write_scan_segment,
)
from repro.codecs.encodepath import encode_to_planes
from repro.codecs.pixelpath import PixelScratch, decode_to_pixels
from repro.codecs.quantization import QuantizationTables, dequantize, quantize
from repro.codecs.rle import (
    ac_band_symbols,
    dc_symbols,
    decode_magnitude,
    read_ac_band,
    write_symbols,
)
from repro.codecs.zigzag import N_COEFFICIENTS, blocks_to_zigzag, zigzag_to_blocks

DEFAULT_QUALITY = 90
DEFAULT_N_SCANS = 10


@dataclass(frozen=True)
class ScanScript:
    """An ordered list of scans to emit when encoding progressively."""

    scans: tuple[ScanHeader, ...]

    def __len__(self) -> int:
        return len(self.scans)

    def __iter__(self):
        return iter(self.scans)

    @classmethod
    def default_color(cls) -> "ScanScript":
        """The default 10-scan script for 3-component (YCbCr) images.

        Scan 1 carries all DC coefficients; low-frequency luma and chroma AC
        bands follow; the final scans carry high-frequency luma detail.  The
        ordering mirrors libjpeg's default progressive script: early scans
        improve quality far more than later ones.
        """
        scans = (
            ScanHeader((0, 1, 2), 0, 0),
            ScanHeader((0,), 1, 2),
            ScanHeader((1,), 1, 2),
            ScanHeader((2,), 1, 2),
            ScanHeader((0,), 3, 9),
            ScanHeader((1,), 3, 63),
            ScanHeader((2,), 3, 63),
            ScanHeader((0,), 10, 35),
            ScanHeader((0,), 36, 52),
            ScanHeader((0,), 53, 63),
        )
        return cls(scans=scans)

    @classmethod
    def default_grayscale(cls) -> "ScanScript":
        """The default 10-scan script for single-component images."""
        bands = [(1, 2), (3, 5), (6, 9), (10, 17), (18, 26), (27, 35), (36, 47), (48, 55), (56, 63)]
        scans = [ScanHeader((0,), 0, 0)]
        scans.extend(ScanHeader((0,), ss, se) for ss, se in bands)
        return cls(scans=tuple(scans))

    @classmethod
    def default_for(cls, n_components: int) -> "ScanScript":
        """Return the default script for an image with ``n_components``."""
        if n_components == 3:
            return cls.default_color()
        if n_components == 1:
            return cls.default_grayscale()
        raise ValueError(f"unsupported component count: {n_components}")

    @classmethod
    def sequential(cls, n_components: int) -> "ScanScript":
        """A single full-band scan per component (the baseline/sequential layout)."""
        scans = tuple(ScanHeader((c,), 0, 63) for c in range(n_components))
        return cls(scans=scans)

    def validate(self, n_components: int) -> None:
        """Check that the script covers every coefficient exactly once."""
        covered: dict[int, set[int]] = {c: set() for c in range(n_components)}
        for scan in self.scans:
            for component in scan.component_ids:
                if component >= n_components:
                    raise ValueError(
                        f"scan references component {component} but image has {n_components}"
                    )
                band = set(range(scan.spectral_start, scan.spectral_end + 1))
                overlap = covered[component] & band
                if overlap:
                    raise ValueError(
                        f"component {component} coefficients {sorted(overlap)[:4]}... covered twice"
                    )
                covered[component] |= band
        for component, indices in covered.items():
            if indices != set(range(N_COEFFICIENTS)):
                missing = sorted(set(range(N_COEFFICIENTS)) - indices)
                raise ValueError(
                    f"component {component} is missing coefficients {missing[:4]}..."
                )


@dataclass
class CoefficientPlanes:
    """Quantized zigzag coefficients for every component of one image."""

    header: FrameHeader
    planes: list[np.ndarray] = field(default_factory=list)

    def copy(self) -> "CoefficientPlanes":
        return CoefficientPlanes(header=self.header, planes=[p.copy() for p in self.planes])

    def n_blocks(self, component_index: int) -> int:
        return int(self.planes[component_index].shape[0])


def image_to_coefficients(
    image: ImageBuffer,
    quality: int = DEFAULT_QUALITY,
    subsampling: int = SUBSAMPLING_420,
    scratch: PixelScratch | None = None,
) -> CoefficientPlanes:
    """Forward-transform an image into quantized zigzag coefficient planes.

    Dispatches to the batched float32 forward path
    (:mod:`repro.codecs.encodepath`: fused colour conversion + level
    shift, strided 4:2:0 downsample, one fused quantize+DCT sgemm per
    component) unless the fast path is disabled via
    :mod:`repro.codecs.config`.  The float64 scalar path is the
    differential reference; unlike the entropy stage the two are *not*
    byte-identical — coefficients may differ by at most 1 quant step at
    a documented, tested rate (see the error budget in
    :mod:`repro.codecs.encodepath`).  ``scratch`` lets batch callers
    reuse work buffers; it is ignored on the scalar path.
    """
    if codec_config.FASTPATH:
        tables = QuantizationTables.for_quality(quality)
        if not image.is_color:
            subsampling = SUBSAMPLING_NONE
        header = FrameHeader(
            height=image.height,
            width=image.width,
            n_components=3 if image.is_color else 1,
            subsampling=subsampling,
            quant_tables=tables,
        )
        planes = encode_to_planes(image, tables, subsampling, scratch)
        return CoefficientPlanes(header=header, planes=planes)
    return _image_to_coefficients_scalar(image, quality, subsampling)


def _image_to_coefficients_scalar(
    image: ImageBuffer,
    quality: int = DEFAULT_QUALITY,
    subsampling: int = SUBSAMPLING_420,
) -> CoefficientPlanes:
    """Scalar float64 reference: per-stage colour / subsample / DCT / quantize."""
    tables = QuantizationTables.for_quality(quality)
    if image.is_color:
        ycc = rgb_to_ycbcr(image.as_float())
        if subsampling == SUBSAMPLING_420:
            channels = [ycc[..., 0], subsample_420(ycc[..., 1]), subsample_420(ycc[..., 2])]
        else:
            channels = [ycc[..., 0], ycc[..., 1], ycc[..., 2]]
        n_components = 3
    else:
        channels = [image.as_float()]
        n_components = 1
        subsampling = SUBSAMPLING_NONE
    header = FrameHeader(
        height=image.height,
        width=image.width,
        n_components=n_components,
        subsampling=subsampling,
        quant_tables=tables,
    )
    planes: list[np.ndarray] = []
    for index, channel in enumerate(channels):
        blocks = split_into_blocks(channel)
        coefficients = forward_dct_blocks(blocks)
        quantized = quantize(coefficients, tables.table_for_component(index))
        zigzag = blocks_to_zigzag(quantized)
        planes.append(zigzag.reshape(-1, N_COEFFICIENTS).astype(np.int32))
    return CoefficientPlanes(header=header, planes=planes)


def coefficients_to_image(
    coefficients: CoefficientPlanes, scratch: PixelScratch | None = None
) -> ImageBuffer:
    """Reconstruct an image from (possibly partial) coefficient planes.

    Dispatches to the batched float32 pixel path
    (:mod:`repro.codecs.pixelpath`) unless the fast path is disabled via
    :mod:`repro.codecs.config`; the float64 scalar path is the differential
    reference (outputs may differ by at most 1 LSB, see the pixel-path
    module docs).  ``scratch`` lets batch callers reuse work buffers; it is
    ignored on the scalar path.
    """
    if codec_config.FASTPATH:
        return ImageBuffer(decode_to_pixels(coefficients, scratch))
    return _coefficients_to_image_scalar(coefficients)


def _coefficients_to_image_scalar(coefficients: CoefficientPlanes) -> ImageBuffer:
    """Scalar float64 reference: per-stage dequantize / IDCT / merge / colour."""
    header = coefficients.header
    tables = header.quant_tables
    channels: list[np.ndarray] = []
    for index, plane in enumerate(coefficients.planes):
        comp_h, comp_w = header.component_shape(index)
        nv, nh = block_grid_shape(comp_h, comp_w)
        blocks_zz = plane.reshape(nv, nh, N_COEFFICIENTS)
        blocks = zigzag_to_blocks(blocks_zz)
        dequantized = dequantize(blocks, tables.table_for_component(index))
        spatial = inverse_dct_blocks(dequantized)
        channels.append(merge_blocks(spatial, comp_h, comp_w))
    if header.n_components == 1:
        return ImageBuffer.from_array(channels[0])
    if header.subsampling == SUBSAMPLING_420:
        cb = upsample_420(channels[1], header.height, header.width)
        cr = upsample_420(channels[2], header.height, header.width)
    else:
        cb, cr = channels[1], channels[2]
    ycc = np.stack([channels[0], cb, cr], axis=-1)
    return ImageBuffer.from_array(ycbcr_to_rgb(ycc))


def empty_coefficients(header: FrameHeader) -> CoefficientPlanes:
    """Allocate all-zero coefficient planes for a frame header."""
    planes = []
    for index in range(header.n_components):
        comp_h, comp_w = header.component_shape(index)
        nv, nh = block_grid_shape(comp_h, comp_w)
        planes.append(np.zeros((nv * nh, N_COEFFICIENTS), dtype=np.int32))
    return CoefficientPlanes(header=header, planes=planes)


def _encode_scan_body(coefficients: CoefficientPlanes, scan: ScanHeader) -> bytes:
    """Entropy-code one scan: optimized Huffman table followed by the bits.

    Dispatches to the vectorized fast path unless it is disabled via
    :mod:`repro.codecs.config`; both implementations emit byte-identical
    segments.
    """
    if codec_config.FASTPATH:
        return encode_scan_body_fast(coefficients, scan)
    return _encode_scan_body_scalar(coefficients, scan)


def _encode_scan_body_scalar(coefficients: CoefficientPlanes, scan: ScanHeader) -> bytes:
    """Scalar reference encoder (per-coefficient Python loops)."""
    all_symbols: list[int] = []
    per_component: list[tuple[list[int], list[tuple[int, int]]]] = []
    for component in scan.component_ids:
        plane = coefficients.planes[component]
        symbols: list[int] = []
        extras: list[tuple[int, int]] = []
        if scan.spectral_start == 0 and scan.spectral_end == 0:
            dc_syms, dc_extras = dc_symbols([int(v) for v in plane[:, 0]])
            symbols.extend(dc_syms)
            extras.extend(dc_extras)
        elif scan.spectral_start == 0:
            # Full/mixed band: per block, DC delta followed by the AC band.
            previous_dc = 0
            for block in plane:
                dc_value = int(block[0])
                diff = dc_value - previous_dc
                previous_dc = dc_value
                dc_syms, dc_extras = dc_symbols([diff])
                # dc_symbols delta-codes against 0, so a single diff round-trips.
                symbols.extend(dc_syms)
                extras.extend(dc_extras)
                band = [int(v) for v in block[1 : scan.spectral_end + 1]]
                ac_syms, ac_extras = ac_band_symbols(band)
                symbols.extend(ac_syms)
                extras.extend(ac_extras)
        else:
            for block in plane:
                band = [int(v) for v in block[scan.spectral_start : scan.spectral_end + 1]]
                ac_syms, ac_extras = ac_band_symbols(band)
                symbols.extend(ac_syms)
                extras.extend(ac_extras)
        per_component.append((symbols, extras))
        all_symbols.extend(symbols)
    table = HuffmanTable.from_symbols(all_symbols)
    writer = BitWriter()
    for symbols, extras in per_component:
        write_symbols(symbols, extras, table, writer)
    return table.to_bytes() + writer.getvalue()


def _decode_scan_body(
    data: bytes,
    segment: ScanSegment,
    coefficients: CoefficientPlanes,
) -> None:
    """Decode one scan segment into ``coefficients`` (in place)."""
    if codec_config.FASTPATH:
        decode_scan_body_fast(data, segment, coefficients)
        return
    _decode_scan_body_scalar(data, segment, coefficients)


def _decode_scan_body_scalar(
    data: bytes,
    segment: ScanSegment,
    coefficients: CoefficientPlanes,
) -> None:
    """Scalar reference decoder (bit-at-a-time Huffman probing)."""
    scan = segment.header
    table, consumed = HuffmanTable.from_bytes(data[segment.payload_start : segment.end])
    reader = BitReader(data[segment.payload_start + consumed : segment.end])
    for component in scan.component_ids:
        plane = coefficients.planes[component]
        n_blocks = plane.shape[0]
        if scan.spectral_start == 0 and scan.spectral_end == 0:
            previous = 0
            for block_index in range(n_blocks):
                category = table.decode_symbol(reader)
                bits = reader.read_bits(category)
                previous += decode_magnitude(bits, category)
                plane[block_index, 0] = previous
        elif scan.spectral_start == 0:
            previous = 0
            band_length = scan.spectral_end
            for block_index in range(n_blocks):
                category = table.decode_symbol(reader)
                bits = reader.read_bits(category)
                previous += decode_magnitude(bits, category)
                plane[block_index, 0] = previous
                band = read_ac_band(reader, table, band_length)
                plane[block_index, 1 : scan.spectral_end + 1] = band
        else:
            band_length = scan.band_length
            for block_index in range(n_blocks):
                band = read_ac_band(reader, table, band_length)
                plane[block_index, scan.spectral_start : scan.spectral_end + 1] = band


def encode_coefficients(coefficients: CoefficientPlanes, script: ScanScript) -> bytes:
    """Serialize coefficient planes as SOI + SOF + scans + EOI."""
    script.validate(coefficients.header.n_components)
    parts = [SOI, coefficients.header.to_bytes()]
    for scan in script:
        body = _encode_scan_body(coefficients, scan)
        parts.append(write_scan_segment(scan, body))
    parts.append(EOI)
    return b"".join(parts)


def decode_coefficients(
    data: bytes, max_scans: int | None = None
) -> tuple[CoefficientPlanes, int]:
    """Decode up to ``max_scans`` scans; returns (coefficients, scans applied).

    Truncated streams (no EOI, or a partial final scan) decode the complete
    scans that are present — exactly the behaviour the PCR reader relies on
    when it terminates a partial read with an EOI token.

    On the fast path the whole segment list is handed over at once
    (:func:`repro.codecs.fastpath.decode_scan_bodies_fast`), letting the
    superscalar tier amortize its vectorized scan-assembly epilogue across
    every AC scan of the stream.
    """
    header, _ = parse_frame_header(data)
    coefficients = empty_coefficients(header)
    segments = find_scan_segments(data)
    if max_scans is not None:
        segments = segments[:max_scans]
    if codec_config.FASTPATH:
        decode_scan_bodies_fast(data, segments, coefficients)
    else:
        for segment in segments:
            _decode_scan_body_scalar(data, segment, coefficients)
    return coefficients, len(segments)


def decode_progressive_batch(
    payloads: list[bytes], max_scans: int | None = None
) -> list[ImageBuffer]:
    """Decode a whole minibatch of (possibly truncated) streams at once.

    The minibatch-level entry point the ``DataLoader`` path uses: one
    :class:`~repro.codecs.pixelpath.PixelScratch` amortizes every float32
    work buffer across the batch, and table/basis setup is shared through
    the module caches, so per-image cost collapses to the entropy loop plus
    a handful of in-place kernels.  Decoding is bitwise identical to
    calling :func:`decode_coefficients` + :func:`coefficients_to_image` per
    payload — the batch reuses *buffers*, never cross-image arithmetic —
    which the equivalence tests in ``tests/test_codecs_pixelpath.py`` pin.

    Every call records ``decode.streams_total`` / ``decode.bytes_total``
    counters and a ``decode.batch_seconds`` histogram sample on the default
    :mod:`repro.obs` registry.  This is the one instrumentation point both
    the in-process path and the :class:`~repro.codecs.parallel.DecodePool`
    workers share, so a worker's per-chunk registry delta aggregates into
    the parent to exactly the totals an in-process decode would have
    produced (the fork-parity test in ``tests/test_obs.py`` pins this).
    """
    registry = get_registry()
    start = time.perf_counter()
    with get_tracer().span("decode.batch", {"streams": len(payloads)}):
        scratch = PixelScratch() if codec_config.FASTPATH else None
        images: list[ImageBuffer] = []
        for data in payloads:
            coefficients, _ = decode_coefficients(data, max_scans=max_scans)
            images.append(coefficients_to_image(coefficients, scratch))
    registry.counter("decode.streams_total").inc(len(payloads))
    registry.counter("decode.bytes_total").inc(sum(len(data) for data in payloads))
    registry.histogram("decode.batch_seconds").observe(time.perf_counter() - start)
    return images


def encode_progressive_batch(
    images: list[ImageBuffer],
    quality: int = DEFAULT_QUALITY,
    subsampling: int = SUBSAMPLING_420,
    script: ScanScript | None = None,
    layout: str = "progressive",
) -> list[bytes]:
    """Encode a whole chunk of images at once — the minibatch ingest entry.

    The encode-side mirror of :func:`decode_progressive_batch`: one
    :class:`~repro.codecs.pixelpath.PixelScratch` amortizes every float32
    forward-path work buffer across the chunk, and Huffman/basis setup is
    shared through the module caches.  Encoding is identical to calling
    the per-image APIs in a loop — the batch reuses *buffers*, never
    cross-image arithmetic.

    ``layout`` selects what each returned stream is:

    * ``"progressive"`` — the default multi-scan progressive stream
      (``script`` or the component-count default script);
    * ``"sequential"`` — the baseline single-scan-per-component layout
      (what :class:`~repro.codecs.baseline.BaselineCodec` emits);
    * ``"pcr"`` — the full Fig-15 conversion job: encode to a baseline
      stream, then losslessly transcode it to progressive form (byte
      equivalent to ``transcode_to_progressive(BaselineCodec.encode(im))``).

    Every call records ``ingest.images_total`` / ``ingest.pixel_bytes_total``
    / ``ingest.encoded_bytes_total`` counters and an
    ``ingest.encode_batch_seconds`` histogram sample on the default
    :mod:`repro.obs` registry, under an ``ingest.encode_batch`` span.
    This is the one instrumentation point the in-process path and the
    :class:`~repro.codecs.parallel.EncodePool` workers share, so a
    worker's per-chunk registry delta aggregates into the parent to
    exactly the totals an in-process encode would have produced.
    """
    if layout not in ("progressive", "sequential", "pcr"):
        raise ValueError(f"unknown encode layout: {layout!r}")
    registry = get_registry()
    start = time.perf_counter()
    with get_tracer().span("ingest.encode_batch", {"images": len(images), "layout": layout}):
        scratch = PixelScratch() if codec_config.FASTPATH else None
        streams: list[bytes] = []
        for image in images:
            coefficients = image_to_coefficients(image, quality, subsampling, scratch)
            n_components = coefficients.header.n_components
            if layout == "progressive":
                chosen = script if script is not None else ScanScript.default_for(n_components)
                streams.append(encode_coefficients(coefficients, chosen))
                continue
            sequential = encode_coefficients(coefficients, ScanScript.sequential(n_components))
            if layout == "sequential":
                streams.append(sequential)
                continue
            # "pcr": lossless baseline->progressive transcode, same bytes as
            # repro.codecs.transcode.transcode_to_progressive on the stream.
            transcoded, _ = decode_coefficients(sequential)
            chosen = script if script is not None else ScanScript.default_for(n_components)
            streams.append(encode_coefficients(transcoded, chosen))
    registry.counter("ingest.images_total").inc(len(images))
    registry.counter("ingest.pixel_bytes_total").inc(
        sum(image.pixels.nbytes for image in images)
    )
    registry.counter("ingest.encoded_bytes_total").inc(sum(len(s) for s in streams))
    registry.histogram("ingest.encode_batch_seconds").observe(time.perf_counter() - start)
    return streams


class ProgressiveCodec:
    """Encode and decode progressive PCR-codec streams."""

    def __init__(
        self,
        quality: int = DEFAULT_QUALITY,
        subsampling: int = SUBSAMPLING_420,
        script: ScanScript | None = None,
    ) -> None:
        self.quality = quality
        self.subsampling = subsampling
        self._script = script

    def script_for(self, n_components: int) -> ScanScript:
        """Return the scan script used for an image with ``n_components``."""
        if self._script is not None:
            return self._script
        return ScanScript.default_for(n_components)

    def encode(self, image: ImageBuffer) -> bytes:
        """Encode an image to a progressive byte stream."""
        coefficients = image_to_coefficients(image, self.quality, self.subsampling)
        script = self.script_for(coefficients.header.n_components)
        return encode_coefficients(coefficients, script)

    def encode_batch(self, images: list[ImageBuffer]) -> list[bytes]:
        """Encode a minibatch of images, amortizing setup and work buffers.

        See :func:`encode_progressive_batch`; results are bitwise identical
        to per-image :meth:`encode` calls.
        """
        return encode_progressive_batch(
            images, self.quality, self.subsampling, script=self._script
        )

    def decode(self, data: bytes, max_scans: int | None = None) -> ImageBuffer:
        """Decode a (possibly truncated) stream, optionally limiting scans."""
        coefficients, _ = decode_coefficients(data, max_scans=max_scans)
        return coefficients_to_image(coefficients)

    def decode_batch(
        self, payloads: list[bytes], max_scans: int | None = None
    ) -> list[ImageBuffer]:
        """Decode a minibatch of streams, amortizing setup and buffers.

        See :func:`decode_progressive_batch`; results are bitwise identical
        to per-payload :meth:`decode` calls.
        """
        return decode_progressive_batch(payloads, max_scans=max_scans)

    def n_scans(self, data: bytes) -> int:
        """Number of complete scans present in an encoded stream."""
        return len(find_scan_segments(data))


def split_scans(data: bytes) -> tuple[bytes, list[bytes]]:
    """Split an encoded stream into (header prefix, list of scan segments).

    Concatenating ``header + b"".join(scans[:k]) + EOI`` produces a valid
    stream decodable at quality level ``k`` — this is the primitive the PCR
    writer uses to regroup per-image scans into dataset-wide scan groups.
    """
    header, offset = parse_frame_header(data)
    del header
    segments = find_scan_segments(data)
    if not segments:
        raise CodecFormatError("stream contains no scans")
    prefix = data[:offset]
    return prefix, [data[segment.start : segment.end] for segment in segments]


def assemble_partial_stream(header_prefix: bytes, scans: list[bytes]) -> bytes:
    """Reassemble a decodable stream from a header prefix and scan segments."""
    return header_prefix + b"".join(scans) + EOI
