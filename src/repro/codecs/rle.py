"""Run-length / magnitude-category symbol coding for DCT coefficients.

JPEG entropy coding expresses each non-zero coefficient as a (zero-run,
magnitude-category) symbol followed by raw magnitude bits.  The same scheme is
used here for both baseline and progressive (spectral-selection) scans:

* DC coefficients are delta-coded against the previous block of the same
  component, with the symbol being the magnitude category.
* AC coefficients in a band ``[ss, se]`` use symbols ``(run << 4) | size``
  with the special symbols ``EOB`` (0x00, rest of band is zero) and ``ZRL``
  (0xF0, a run of 16 zeros).
"""

from __future__ import annotations

from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.huffman import HuffmanTable

EOB_SYMBOL = 0x00
ZRL_SYMBOL = 0xF0
MAX_RUN = 15


def magnitude_category(value: int) -> int:
    """Return the JPEG magnitude category (number of bits) of ``value``."""
    return int(abs(value)).bit_length()


def magnitude_bits(value: int, category: int) -> int:
    """Return the raw bits that encode ``value`` within its category.

    Negative values use the one's-complement style representation JPEG uses:
    value ``v < 0`` is stored as ``v + 2**category - 1``.
    """
    if category == 0:
        return 0
    if value >= 0:
        return value
    return value + (1 << category) - 1


def decode_magnitude(bits: int, category: int) -> int:
    """Invert :func:`magnitude_bits`."""
    if category == 0:
        return 0
    if bits >= (1 << (category - 1)):
        return bits
    return bits - (1 << category) + 1


def dc_symbols(dc_values: list[int]) -> tuple[list[int], list[tuple[int, int]]]:
    """Delta-code a sequence of DC values into (symbols, extra-bit pairs)."""
    symbols: list[int] = []
    extras: list[tuple[int, int]] = []
    previous = 0
    for value in dc_values:
        diff = value - previous
        previous = value
        category = magnitude_category(diff)
        symbols.append(category)
        extras.append((magnitude_bits(diff, category), category))
    return symbols, extras


def ac_band_symbols(
    coefficients: list[int],
) -> tuple[list[int], list[tuple[int, int]]]:
    """Run-length code a single block's AC band into symbols and extra bits."""
    symbols: list[int] = []
    extras: list[tuple[int, int]] = []
    run = 0
    for value in coefficients:
        if value == 0:
            run += 1
            continue
        while run > MAX_RUN:
            symbols.append(ZRL_SYMBOL)
            extras.append((0, 0))
            run -= 16
        category = magnitude_category(value)
        symbols.append((run << 4) | category)
        extras.append((magnitude_bits(value, category), category))
        run = 0
    if run > 0:
        symbols.append(EOB_SYMBOL)
        extras.append((0, 0))
    return symbols, extras


def write_symbols(
    symbols: list[int],
    extras: list[tuple[int, int]],
    table: HuffmanTable,
    writer: BitWriter,
) -> None:
    """Huffman-encode symbols with their extra magnitude bits."""
    for symbol, (bits, n_bits) in zip(symbols, extras):
        table.encode_symbol(symbol, writer)
        writer.write_bits(bits, n_bits)


def read_dc_values(
    reader: BitReader, table: HuffmanTable, n_blocks: int
) -> list[int]:
    """Decode ``n_blocks`` delta-coded DC values."""
    values: list[int] = []
    previous = 0
    for _ in range(n_blocks):
        category = table.decode_symbol(reader)
        bits = reader.read_bits(category)
        previous += decode_magnitude(bits, category)
        values.append(previous)
    return values


def read_ac_band(
    reader: BitReader, table: HuffmanTable, band_length: int
) -> list[int]:
    """Decode one block's AC band of ``band_length`` coefficients."""
    coefficients = [0] * band_length
    index = 0
    while index < band_length:
        symbol = table.decode_symbol(reader)
        if symbol == EOB_SYMBOL:
            break
        if symbol == ZRL_SYMBOL:
            index += 16
            continue
        run = symbol >> 4
        category = symbol & 0x0F
        index += run
        bits = reader.read_bits(category)
        if index >= band_length:
            raise ValueError("AC run overflows band length")
        coefficients[index] = decode_magnitude(bits, category)
        index += 1
    return coefficients
