"""Run-length / magnitude-category symbol coding for DCT coefficients.

JPEG entropy coding expresses each non-zero coefficient as a (zero-run,
magnitude-category) symbol followed by raw magnitude bits.  The same scheme is
used here for both baseline and progressive (spectral-selection) scans:

* DC coefficients are delta-coded against the previous block of the same
  component, with the symbol being the magnitude category.
* AC coefficients in a band ``[ss, se]`` use symbols ``(run << 4) | size``
  with the special symbols ``EOB`` (0x00, rest of band is zero) and ``ZRL``
  (0xF0, a run of 16 zeros).

Two implementations coexist: the original scalar per-coefficient functions
(the differential-testing reference) and NumPy-vectorized ``*_symbol_arrays``
functions that emit the identical symbol stream for an entire coefficient
plane at once — zero runs, ZRL expansion, and end-of-band markers are all
computed with array ops over the plane's nonzero entries.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.huffman import HuffmanTable

EOB_SYMBOL = 0x00
ZRL_SYMBOL = 0xF0
MAX_RUN = 15


def magnitude_category(value: int) -> int:
    """Return the JPEG magnitude category (number of bits) of ``value``."""
    return int(abs(value)).bit_length()


def magnitude_bits(value: int, category: int) -> int:
    """Return the raw bits that encode ``value`` within its category.

    Negative values use the one's-complement style representation JPEG uses:
    value ``v < 0`` is stored as ``v + 2**category - 1``.
    """
    if category == 0:
        return 0
    if value >= 0:
        return value
    return value + (1 << category) - 1


def decode_magnitude(bits: int, category: int) -> int:
    """Invert :func:`magnitude_bits`."""
    if category == 0:
        return 0
    if bits >= (1 << (category - 1)):
        return bits
    return bits - (1 << category) + 1


def dc_symbols(dc_values: list[int]) -> tuple[list[int], list[tuple[int, int]]]:
    """Delta-code a sequence of DC values into (symbols, extra-bit pairs)."""
    symbols: list[int] = []
    extras: list[tuple[int, int]] = []
    previous = 0
    for value in dc_values:
        diff = value - previous
        previous = value
        category = magnitude_category(diff)
        symbols.append(category)
        extras.append((magnitude_bits(diff, category), category))
    return symbols, extras


def ac_band_symbols(
    coefficients: list[int],
) -> tuple[list[int], list[tuple[int, int]]]:
    """Run-length code a single block's AC band into symbols and extra bits."""
    symbols: list[int] = []
    extras: list[tuple[int, int]] = []
    run = 0
    for value in coefficients:
        if value == 0:
            run += 1
            continue
        while run > MAX_RUN:
            symbols.append(ZRL_SYMBOL)
            extras.append((0, 0))
            run -= 16
        category = magnitude_category(value)
        symbols.append((run << 4) | category)
        extras.append((magnitude_bits(value, category), category))
        run = 0
    if run > 0:
        symbols.append(EOB_SYMBOL)
        extras.append((0, 0))
    return symbols, extras


def write_symbols(
    symbols: list[int],
    extras: list[tuple[int, int]],
    table: HuffmanTable,
    writer: BitWriter,
) -> None:
    """Huffman-encode symbols with their extra magnitude bits."""
    for symbol, (bits, n_bits) in zip(symbols, extras):
        table.encode_symbol(symbol, writer)
        writer.write_bits(bits, n_bits)


def read_dc_values(
    reader: BitReader, table: HuffmanTable, n_blocks: int
) -> list[int]:
    """Decode ``n_blocks`` delta-coded DC values."""
    values: list[int] = []
    previous = 0
    for _ in range(n_blocks):
        category = table.decode_symbol(reader)
        bits = reader.read_bits(category)
        previous += decode_magnitude(bits, category)
        values.append(previous)
    return values


def magnitude_categories(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`magnitude_category` over an int array."""
    _, exponents = np.frexp(np.abs(values).astype(np.float64))
    return exponents.astype(np.int64)


def magnitude_bits_array(values: np.ndarray, categories: np.ndarray) -> np.ndarray:
    """Vectorized :func:`magnitude_bits` (categories from the values)."""
    return np.where(values >= 0, values, values + (1 << categories) - 1)


def dc_symbol_arrays(
    dc_values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`dc_symbols`: returns ``(symbols, bits, n_bits)``.

    The symbol of a DC delta is its magnitude category, so the symbols and
    extra-bit widths are the same array.
    """
    diffs = np.diff(np.asarray(dc_values, dtype=np.int64), prepend=np.int64(0))
    categories = magnitude_categories(diffs)
    return categories, magnitude_bits_array(diffs, categories), categories


def _ac_plane_pieces(band: np.ndarray):
    """Per-nonzero-entry RLE pieces for a ``(n_blocks, band_length)`` plane.

    Returns ``(block_ids, symbols, bits, categories, n_zrl, counts, eob)``
    where ``n_zrl`` is the number of ZRL markers preceding each entry,
    ``counts`` the nonzero count per block, and ``eob`` a per-block mask of
    blocks that terminate with an EOB marker.
    """
    n_blocks, band_length = band.shape
    block_ids, positions = np.nonzero(band)
    values = band[block_ids, positions].astype(np.int64)
    counts = np.bincount(block_ids, minlength=n_blocks).astype(np.int64)
    eob = np.ones(n_blocks, dtype=bool)
    if values.size:
        previous = np.empty_like(positions)
        previous[0] = -1
        same_block = block_ids[1:] == block_ids[:-1]
        previous[1:] = np.where(same_block, positions[:-1], -1)
        runs = positions - previous - 1
        n_zrl = (runs >> 4).astype(np.int64)
        categories = magnitude_categories(values)
        symbols = ((runs & MAX_RUN) << 4) | categories
        bits = magnitude_bits_array(values, categories)
        has_entries = counts > 0
        last_entry = np.cumsum(counts) - 1
        eob[has_entries] = positions[last_entry[has_entries]] < band_length - 1
    else:
        empty = np.zeros(0, dtype=np.int64)
        symbols = bits = categories = n_zrl = empty
    return block_ids, symbols, bits, categories, n_zrl, counts, eob


def _scatter_zrl(
    symbols_out: np.ndarray, entry_out: np.ndarray, n_zrl: np.ndarray
) -> None:
    """Place each entry's preceding ZRL markers just before the entry."""
    total_zrl = int(n_zrl.sum())
    if not total_zrl:
        return
    zrl_before = np.cumsum(n_zrl) - n_zrl
    offsets = np.arange(total_zrl) - np.repeat(zrl_before, n_zrl)
    zrl_positions = np.repeat(entry_out - n_zrl, n_zrl) + offsets
    symbols_out[zrl_positions] = ZRL_SYMBOL


def ac_symbol_arrays(
    band: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`ac_band_symbols` over every block of a plane.

    ``band`` has shape ``(n_blocks, band_length)``; the returned
    ``(symbols, bits, n_bits)`` arrays hold the concatenated per-block
    symbol streams in block order, identical to running the scalar coder on
    each block in sequence.
    """
    block_ids, entry_syms, entry_bits, categories, n_zrl, _, eob = _ac_plane_pieces(band)
    n_entries = entry_syms.size
    total = n_entries + int(n_zrl.sum()) + int(eob.sum())
    symbols = np.full(total, EOB_SYMBOL, dtype=np.int64)
    bits = np.zeros(total, dtype=np.int64)
    n_bits = np.zeros(total, dtype=np.int64)
    if n_entries:
        eob_before = np.cumsum(eob) - eob
        entry_out = np.cumsum(n_zrl) + np.arange(n_entries) + eob_before[block_ids]
        symbols[entry_out] = entry_syms
        bits[entry_out] = entry_bits
        n_bits[entry_out] = categories
        _scatter_zrl(symbols, entry_out, n_zrl)
    return symbols, bits, n_bits


def mixed_symbol_arrays(
    plane: np.ndarray, spectral_end: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized full/mixed-band coder: per block, DC delta then AC band.

    Mirrors the scalar encoder's mixed branch (used by sequential scans):
    each block contributes its delta-coded DC symbol followed by the RLE
    stream of coefficients ``1..spectral_end``.
    """
    n_blocks = plane.shape[0]
    dc_syms, dc_bits, dc_nbits = dc_symbol_arrays(plane[:, 0])
    band = plane[:, 1 : spectral_end + 1]
    block_ids, entry_syms, entry_bits, categories, n_zrl, counts, eob = _ac_plane_pieces(band)
    n_entries = entry_syms.size
    zrl_per_block = np.zeros(n_blocks, dtype=np.int64)
    if n_entries:
        zrl_per_block = np.bincount(
            block_ids, weights=n_zrl, minlength=n_blocks
        ).astype(np.int64)
    ac_lengths = counts + zrl_per_block + eob
    ac_before = np.cumsum(ac_lengths) - ac_lengths
    dc_out = np.arange(n_blocks) + ac_before
    total = n_blocks + int(ac_lengths.sum())
    symbols = np.full(total, EOB_SYMBOL, dtype=np.int64)
    bits = np.zeros(total, dtype=np.int64)
    n_bits = np.zeros(total, dtype=np.int64)
    symbols[dc_out] = dc_syms
    bits[dc_out] = dc_bits
    n_bits[dc_out] = dc_nbits
    if n_entries:
        eob_before = np.cumsum(eob) - eob
        # Position within the AC-only layout, then shifted past the DC
        # symbols of blocks 0..block_id (inclusive).
        entry_out = (
            np.cumsum(n_zrl)
            + np.arange(n_entries)
            + eob_before[block_ids]
            + block_ids
            + 1
        )
        symbols[entry_out] = entry_syms
        bits[entry_out] = entry_bits
        n_bits[entry_out] = categories
        _scatter_zrl(symbols, entry_out, n_zrl)
    return symbols, bits, n_bits


def read_ac_band(
    reader: BitReader, table: HuffmanTable, band_length: int
) -> list[int]:
    """Decode one block's AC band of ``band_length`` coefficients."""
    coefficients = [0] * band_length
    index = 0
    while index < band_length:
        symbol = table.decode_symbol(reader)
        if symbol == EOB_SYMBOL:
            break
        if symbol == ZRL_SYMBOL:
            index += 16
            continue
        run = symbol >> 4
        category = symbol & 0x0F
        index += run
        bits = reader.read_bits(category)
        if index >= band_length:
            raise ValueError("AC run overflows band length")
        coefficients[index] = decode_magnitude(bits, category)
        index += 1
    return coefficients
