"""Batched float32 fast path for the pixel half of the decoder.

The scalar decoder reconstructs pixels in five float64 stages — zigzag
reorder, dequantize, ``scipy`` IDCT, block merge, chroma upsample + colour
conversion — allocating a fresh array at every step.  This module collapses
all of that into a handful of float32 primitives built for whole
coefficient planes:

* **Fused dequantize + IDCT.**  The orthonormal 2-D IDCT of an 8x8 block is
  ``D.T @ C @ D`` (``D`` from :func:`repro.codecs.dct.dct_basis_matrix`),
  which flattens to a single ``(64, 64)`` operator on the raveled block.
  Folding the quantization table *and* the inverse-zigzag permutation into
  that operator's rows yields a per-table **scaled basis** ``B`` with
  ``spatial_flat = plane_zigzag @ B`` — one sgemm per component takes the
  entropy decoder's ``(n_blocks, 64)`` int32 plane straight to spatial
  samples.  Bases are cached per quantization table, exactly like the
  Huffman decode LUTs.
* **Zero-copy block layout.**  The gemm output is merged into one padded
  channel buffer per component with a single strided assignment
  (:func:`repro.codecs.blocks.merge_blocks_into`); the level shift is one
  in-place add; 4:2:0 chroma upsampling is four strided assignments into
  the shared ``(H, W, 3)`` YCbCr buffer (no ``np.repeat`` temporaries).
* **Float32 end to end.**  Colour conversion is one ``(H*W, 3) @ (3, 3)``
  float32 matmul with the -128 chroma centering folded into a bias vector,
  followed by a single in-place round/clip and one uint8 output allocation.

A :class:`PixelScratch` carries the intermediate buffers so minibatch-level
decoding (:func:`repro.codecs.progressive.decode_progressive_batch`) reuses
them across every image of a batch.  Crucially the batch path runs the same
per-image gemms as the single-image path — results are *bitwise identical*
whether images are decoded one at a time or as a batch.

Relative to the float64 reference the fused path reorders floating-point
arithmetic, so decoded pixels may differ where a value lands within float32
epsilon of a rounding tie: the error budget is **at most 1 LSB per pixel**
(intermediate magnitudes stay below 2^12 while float32 carries 24 mantissa
bits), enforced across scan groups by ``tests/test_codecs_pixelpath.py``.
The scalar path remains available behind ``use_fastpath(False)`` as the
differential reference.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.codecs.blocks import BLOCK_SIZE, block_grid_shape, merge_blocks_into
from repro.codecs.color import _YCBCR_TO_RGB, _YCBCR_TO_RGB_BIAS
from repro.codecs.dct import dct_basis_matrix
from repro.codecs.markers import SUBSAMPLING_420
from repro.codecs.zigzag import N_COEFFICIENTS, ZIGZAG_ORDER

__all__ = [
    "PixelScratch",
    "channels_to_pixels",
    "component_channels",
    "decode_to_pixels",
    "scaled_inverse_basis",
]

#: ``(64, 64)`` float64 flattened 2-D IDCT operator with rows permuted to
#: zigzag order: ``spatial_flat[p] = sum_z _IDCT_ZZ[z, p] * coeff_zigzag[z]``.
#: (``vec(D.T @ C @ D) = kron(D, D).T @ vec(C)``, then row ``z`` selects
#: natural index ``ZIGZAG_ORDER[z]``.)
_IDCT_ZZ = np.kron(dct_basis_matrix(), dct_basis_matrix())[ZIGZAG_ORDER, :]

#: Transposed float32 YCbCr->RGB matrix (``ycc_rows @ _RGB_MATRIX_T``) and
#: the bias folding in the -128 chroma centering, shared with the scalar
#: constants in :mod:`repro.codecs.color`.
_RGB_MATRIX_T = np.ascontiguousarray(_YCBCR_TO_RGB.T, dtype=np.float32)
_RGB_BIAS = _YCBCR_TO_RGB_BIAS.astype(np.float32)

#: Quantization-table bytes -> float32 scaled basis.  Bounded FIFO, same
#: idiom as the Huffman LUT caches: reads are GIL-atomic dict lookups, the
#: evict+insert pair takes the lock (concurrent builders are benign).
_BASIS_CACHE: dict[bytes, np.ndarray] = {}
_BASIS_CACHE_MAX = 256
_BASIS_LOCK = threading.Lock()


def scaled_inverse_basis(table: np.ndarray) -> np.ndarray:
    """The per-table fused dequantize+IDCT operator, cached.

    ``spatial_flat = plane_zigzag @ basis`` where ``basis[z, p]`` carries the
    IDCT weight of zigzag coefficient ``z`` on pixel ``p``, pre-multiplied by
    that coefficient's quantization step — dequantization disappears into
    the matmul.
    """
    table = np.asarray(table, dtype=np.float64)
    key = table.tobytes()
    basis = _BASIS_CACHE.get(key)
    if basis is None:
        steps = table.reshape(N_COEFFICIENTS)[ZIGZAG_ORDER]
        basis = np.ascontiguousarray(
            (_IDCT_ZZ * steps[:, None]).astype(np.float32)
        )
        with _BASIS_LOCK:
            if len(_BASIS_CACHE) >= _BASIS_CACHE_MAX:
                _BASIS_CACHE.pop(next(iter(_BASIS_CACHE)))
            _BASIS_CACHE[key] = basis
    return basis


class PixelScratch:
    """Reusable float32 work buffers for decoding a batch of images.

    Buffers are keyed by ``(role, shape)`` so a batch of mixed image sizes
    still reuses whatever it can, with a size bound so a long-lived scratch
    over many distinct shapes cannot grow without limit.  A scratch must
    not be shared across threads; each ``DataLoader`` worker / batch call
    owns its own (see :func:`_thread_scratch`).
    """

    __slots__ = ("_buffers",)

    #: Distinct (role, shape) buffers kept before the scratch resets.  A
    #: single image decode uses ~10 roles, so the bound never bites within
    #: one decode; buffers already handed out stay valid (they are plain
    #: arrays — eviction only drops the reuse cache).
    MAX_BUFFERS = 64

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}

    def get(self, role: tuple, shape: tuple[int, ...]) -> np.ndarray:
        """Return an uninitialized float32 buffer of ``shape``, reused."""
        key = (role, shape)
        buffer = self._buffers.get(key)
        if buffer is None:
            if len(self._buffers) >= self.MAX_BUFFERS:
                self._buffers.clear()
            buffer = np.empty(shape, dtype=np.float32)
            self._buffers[key] = buffer
        return buffer


_THREAD_SCRATCH = threading.local()


def _thread_scratch() -> PixelScratch:
    """The calling thread's default scratch (decode paths without a batch).

    The codec objects held by readers are shared across ``DataLoader``
    worker threads, so the implicit scratch must be per-thread.
    """
    scratch = getattr(_THREAD_SCRATCH, "scratch", None)
    if scratch is None:
        scratch = PixelScratch()
        _THREAD_SCRATCH.scratch = scratch
    return scratch


def _upsample_420_into(dst: np.ndarray, src: np.ndarray, height: int, width: int) -> None:
    """Nearest-neighbour 2x upsample of ``src`` into the ``(H, W)`` view ``dst``.

    Equivalent to ``np.repeat(np.repeat(src, 2, 0), 2, 1)[:H, :W]`` but as
    four strided assignments into the preallocated destination.
    """
    half_h = (height + 1) // 2
    half_w = (width + 1) // 2
    dst[0::2, 0::2] = src[:half_h, :half_w]
    dst[0::2, 1::2] = src[:half_h, : width // 2]
    dst[1::2, 0::2] = src[: height // 2, :half_w]
    dst[1::2, 1::2] = src[: height // 2, : width // 2]


def _finalize_uint8(buffer: np.ndarray) -> np.ndarray:
    """One in-place round + clip, then the single uint8 output allocation."""
    np.rint(buffer, out=buffer)
    np.clip(buffer, 0.0, 255.0, out=buffer)
    return buffer.astype(np.uint8)


def component_channels(coefficients, scratch: PixelScratch) -> list[np.ndarray]:
    """Fused dequantize+IDCT+merge: coefficient planes -> padded f32 channels.

    One sgemm against the cached scaled basis per component, an in-place
    level shift, and one strided merge into a (reused) padded channel
    buffer.  The returned buffers live in ``scratch`` and are only valid
    until its next use.
    """
    header = coefficients.header
    tables = header.quant_tables
    channels: list[np.ndarray] = []
    for index, plane in enumerate(coefficients.planes):
        comp_h, comp_w = header.component_shape(index)
        nv, nh = block_grid_shape(comp_h, comp_w)
        basis = scaled_inverse_basis(tables.table_for_component(index))
        plane_f32 = scratch.get(("plane", index), plane.shape)
        np.copyto(plane_f32, plane, casting="unsafe")
        spatial = scratch.get(("spatial", index), plane.shape)
        np.matmul(plane_f32, basis, out=spatial)
        spatial += 128.0  # level shift, folded into the merged channel
        padded = scratch.get(("channel", index), (nv * BLOCK_SIZE, nh * BLOCK_SIZE))
        merge_blocks_into(spatial.reshape(nv, nh, BLOCK_SIZE, BLOCK_SIZE), padded)
        channels.append(padded)
    return channels


def channels_to_pixels(
    header, channels: list[np.ndarray], scratch: PixelScratch
) -> np.ndarray:
    """Upsample + colour-convert + round/clip padded channels to uint8 pixels."""
    height, width = header.height, header.width
    if header.n_components == 1:
        region = channels[0][:height, :width]
        return _finalize_uint8(region)

    ycc = scratch.get(("ycc",), (height, width, 3))
    ycc[..., 0] = channels[0][:height, :width]
    if header.subsampling == SUBSAMPLING_420:
        _upsample_420_into(ycc[..., 1], channels[1], height, width)
        _upsample_420_into(ycc[..., 2], channels[2], height, width)
    else:
        ycc[..., 1] = channels[1][:height, :width]
        ycc[..., 2] = channels[2][:height, :width]

    rgb = scratch.get(("rgb",), (height * width, 3))
    np.matmul(ycc.reshape(height * width, 3), _RGB_MATRIX_T, out=rgb)
    rgb += _RGB_BIAS
    return _finalize_uint8(rgb).reshape(height, width, 3)


def decode_to_pixels(coefficients, scratch: PixelScratch | None = None) -> np.ndarray:
    """Reconstruct uint8 pixels from quantized zigzag coefficient planes.

    ``coefficients`` is a :class:`~repro.codecs.progressive.CoefficientPlanes`
    (possibly partial — absent scans are zeros).  With a ``scratch``, every
    intermediate lives in reused buffers and the only allocation is the
    returned uint8 array.  Output is ``(H, W)`` for grayscale, ``(H, W, 3)``
    RGB for colour.
    """
    if scratch is None:
        scratch = _thread_scratch()
    channels = component_channels(coefficients, scratch)
    return channels_to_pixels(coefficients.header, channels, scratch)
