"""Minibatch assembly."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Minibatch:
    """A batch of training inputs and labels.

    ``images`` is ``(N, H, W, C)`` float32 scaled to ``[0, 1]``; ``labels``
    is ``(N,)`` int64.
    """

    images: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def n_classes_present(self) -> int:
        """Number of distinct labels in the batch."""
        return int(np.unique(self.labels).size)


def collate(images: list[np.ndarray], labels: list[int]) -> Minibatch:
    """Stack per-sample arrays into a :class:`Minibatch`.

    Grayscale inputs gain a trailing channel axis so every batch is 4-D.
    """
    if len(images) != len(labels):
        raise ValueError("images and labels must have the same length")
    if not images:
        raise ValueError("cannot collate an empty batch")
    prepared = []
    for image in images:
        array = np.asarray(image, dtype=np.float32)
        if array.ndim == 2:
            array = array[..., None]
        prepared.append(array / 255.0 if array.max() > 1.5 else array)
    return Minibatch(
        images=np.stack(prepared, axis=0),
        labels=np.asarray(labels, dtype=np.int64),
    )
