"""Image augmentations: resize, crops, and horizontal flips.

The paper's training uses the standard ImageNet recipe — resize, random crop,
and horizontal flip — applied after decoding (Section 4.1).  These operate on
``(H, W, C)`` or ``(H, W)`` float arrays.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

Augmentation = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class Resize:
    """Bilinear resize to a square ``size x size`` output."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        del rng
        return bilinear_resize(image, self.size, self.size)


class RandomCrop:
    """Random crop of ``size x size`` (pads by reflection if too small)."""

    def __init__(self, size: int) -> None:
        self.size = size

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        image = _pad_to_at_least(image, self.size)
        height, width = image.shape[:2]
        top = int(rng.integers(0, height - self.size + 1))
        left = int(rng.integers(0, width - self.size + 1))
        return image[top : top + self.size, left : left + self.size]


class CenterCrop:
    """Deterministic centre crop of ``size x size``."""

    def __init__(self, size: int) -> None:
        self.size = size

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        del rng
        image = _pad_to_at_least(image, self.size)
        height, width = image.shape[:2]
        top = (height - self.size) // 2
        left = (width - self.size) // 2
        return image[top : top + self.size, left : left + self.size]


class HorizontalFlip:
    """Flip left-right with the given probability."""

    def __init__(self, probability: float = 0.5) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() < self.probability:
            return image[:, ::-1].copy()
        return image


class Compose:
    """Apply a sequence of augmentations in order."""

    def __init__(self, augmentations: list[Augmentation]) -> None:
        self.augmentations = list(augmentations)

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for augmentation in self.augmentations:
            image = augmentation(image, rng)
        return image


def standard_training_augmentations(input_size: int, train: bool = True) -> Compose:
    """The resize / crop / flip recipe used across the paper's experiments."""
    resize_size = int(round(input_size * 1.15))
    if train:
        return Compose([Resize(resize_size), RandomCrop(input_size), HorizontalFlip()])
    return Compose([Resize(resize_size), CenterCrop(input_size)])


def bilinear_resize(image: np.ndarray, out_height: int, out_width: int) -> np.ndarray:
    """Bilinear interpolation resize for 2-D or 3-D arrays."""
    image = np.asarray(image, dtype=np.float64)
    in_height, in_width = image.shape[:2]
    if in_height == out_height and in_width == out_width:
        return image.copy()
    row_positions = np.linspace(0, in_height - 1, out_height)
    col_positions = np.linspace(0, in_width - 1, out_width)
    row_floor = np.floor(row_positions).astype(int)
    col_floor = np.floor(col_positions).astype(int)
    row_ceil = np.minimum(row_floor + 1, in_height - 1)
    col_ceil = np.minimum(col_floor + 1, in_width - 1)
    row_fraction = (row_positions - row_floor)[:, None]
    col_fraction = (col_positions - col_floor)[None, :]
    if image.ndim == 3:
        row_fraction = row_fraction[..., None]
        col_fraction = col_fraction[..., None]

    top_left = image[np.ix_(row_floor, col_floor)]
    top_right = image[np.ix_(row_floor, col_ceil)]
    bottom_left = image[np.ix_(row_ceil, col_floor)]
    bottom_right = image[np.ix_(row_ceil, col_ceil)]
    top = top_left * (1 - col_fraction) + top_right * col_fraction
    bottom = bottom_left * (1 - col_fraction) + bottom_right * col_fraction
    return top * (1 - row_fraction) + bottom * row_fraction


def _pad_to_at_least(image: np.ndarray, size: int) -> np.ndarray:
    height, width = image.shape[:2]
    pad_height = max(0, size - height)
    pad_width = max(0, size - width)
    if pad_height == 0 and pad_width == 0:
        return image
    pad_spec: list[tuple[int, int]] = [(0, pad_height), (0, pad_width)]
    if image.ndim == 3:
        pad_spec.append((0, 0))
    return np.pad(image, pad_spec, mode="reflect")
