"""A prefetching data loader over a PCR dataset.

The loader follows the closed-system model of §A.1: a pool of worker threads
continuously reads the next record at the dataset's current scan group,
decodes and augments its samples, shuffles them, and pushes minibatches into
a bounded queue.  The consumer (the training loop) pops minibatches; whenever
the queue is empty the consumer's wait is recorded as a data stall.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.codecs.parallel import DecodePool
from repro.core.dataset import PCRDataset
from repro.obs import get_registry, get_tracer
from repro.pipeline.augment import Compose
from repro.pipeline.batch import Minibatch, collate
from repro.pipeline.sampler import SequentialSampler, ShuffleSampler
from repro.pipeline.stall import StallTracker

_END_OF_EPOCH = object()


@dataclass(frozen=True)
class LoaderConfig:
    """Configuration of a :class:`DataLoader`."""

    batch_size: int = 32
    n_workers: int = 2
    prefetch_batches: int = 8
    shuffle: bool = True
    drop_last: bool = False
    seed: int = 0
    #: Decode worker *processes* (a :class:`~repro.codecs.parallel.DecodePool`
    #: shared by all reader threads).  ``0`` decodes in-process; ``>= 2``
    #: fans each record's streams out across that many cores.  Batches are
    #: byte-identical either way.
    decode_workers: int = 0


class DataLoader:
    """Iterates minibatches from a :class:`~repro.core.dataset.PCRDataset`."""

    def __init__(
        self,
        dataset: PCRDataset,
        config: LoaderConfig | None = None,
        augmentations: Compose | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config if config is not None else LoaderConfig()
        self.augmentations = augmentations
        self.stalls = StallTracker()
        self._rng = np.random.default_rng(self.config.seed)
        self._decode_pool: DecodePool | None = None

    # -- public API -------------------------------------------------------------

    def __iter__(self) -> Iterator[Minibatch]:
        return self.epoch()

    def epoch(self) -> Iterator[Minibatch]:
        """Yield the minibatches of one epoch, prefetching in background threads.

        Shutdown is cooperative: workers block on the bounded output queue
        only with a timeout and re-check a stop event, and the consumer's
        ``finally`` sets that event and drains the queue until every worker
        has exited.  This holds on *every* exit path — a worker error being
        re-raised, the consumer abandoning the iterator mid-epoch
        (``GeneratorExit``), or normal completion — so no thread is left
        blocked on ``output_queue.put``.

        With ``decode_workers > 0`` a persistent
        :class:`~repro.codecs.parallel.DecodePool` is installed into the
        dataset before the reader threads start; it survives across epochs
        (worker startup is paid once), but any *abnormal* epoch exit —
        ``KeyboardInterrupt``, ``GeneratorExit``, a re-raised worker error —
        tears it down along with the threads, so no decode processes or
        shared-memory slabs outlive an interrupted run.
        """
        self._ensure_decode_pool()
        # Adaptive sources (repro.control.AdaptiveScanGroupSource) report the
        # loader's stall split as telemetry; hand them the tracker so their
        # reports and our Figure-11 series come from the same measurements.
        bind = getattr(self.dataset, "bind_stall_tracker", None)
        if bind is not None:
            bind(self.stalls)
        record_names = self.dataset.record_names
        sampler = (
            ShuffleSampler(record_names, seed=int(self._rng.integers(0, 2**31)))
            if self.config.shuffle
            else SequentialSampler(record_names)
        )
        work_queue: queue.Queue = queue.Queue()
        for record_name in sampler:
            work_queue.put(record_name)
        n_workers = max(1, self.config.n_workers)
        output_queue: queue.Queue = queue.Queue(maxsize=max(1, self.config.prefetch_batches))
        stop_event = threading.Event()
        workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(work_queue, output_queue, self.config.seed + worker_index, stop_event),
                daemon=True,
            )
            for worker_index in range(n_workers)
        ]
        for worker in workers:
            worker.start()

        tracer = get_tracer()
        batches_total = get_registry().counter("loader.batches_total")
        try:
            finished_workers = 0
            leftovers: list[tuple[np.ndarray, int]] = []
            while finished_workers < n_workers:
                # One wait interval feeds the stall tracker *and* the trace
                # from the same measurement, so the exported "loader.wait"
                # spans reproduce the stall timeline exactly.
                wait_start = time.perf_counter()
                item = output_queue.get()
                waited = time.perf_counter() - wait_start
                self.stalls.record_wait(waited)
                tracer.add_event("loader.wait", wait_start, waited)
                if item is _END_OF_EPOCH:
                    finished_workers += 1
                    continue
                if isinstance(item, BaseException):
                    raise item
                images, labels = item
                leftovers.extend(zip(images, labels))
                while len(leftovers) >= self.config.batch_size:
                    chunk = leftovers[: self.config.batch_size]
                    leftovers = leftovers[self.config.batch_size :]
                    with tracer.span("loader.collate"):
                        batch = collate(
                            [image for image, _ in chunk], [label for _, label in chunk]
                        )
                    batches_total.inc()
                    # The gap between handing a batch out and being resumed
                    # is the consumer's compute time — the other half of the
                    # stall fraction — recorded automatically instead of
                    # asking the training loop to time itself.
                    yielded_at = time.perf_counter()
                    yield batch
                    self.stalls.record_compute(time.perf_counter() - yielded_at)
            if leftovers and not self.config.drop_last:
                with tracer.span("loader.collate"):
                    batch = collate(
                        [image for image, _ in leftovers],
                        [label for _, label in leftovers],
                    )
                batches_total.inc()
                yield batch
        except BaseException:
            # Abnormal exit (KeyboardInterrupt, GeneratorExit, worker error):
            # the decode processes must die with the epoch.  Stop the reader
            # threads *first* — closing the pool waits on its in-flight
            # batch, and readers must not keep feeding it new ones
            # meanwhile.  On normal completion the pool stays warm for the
            # next epoch; `close()` retires it for good.
            stop_event.set()
            self.shutdown_decode_pool()
            raise
        finally:
            stop_event.set()
            self._drain_and_join(workers, output_queue)

    @staticmethod
    def _drain_and_join(
        workers: list[threading.Thread],
        output_queue: queue.Queue,
        deadline_seconds: float = 5.0,
    ) -> None:
        """Drain the output queue until every worker exits (bounded wait).

        Draining is what unblocks workers that are mid-``put`` on the
        bounded queue; they notice the stop event on their next timeout.
        Workers are daemons, so if one is wedged inside a record read past
        the deadline it cannot block interpreter exit.
        """
        deadline = time.monotonic() + deadline_seconds
        for worker in workers:
            while worker.is_alive() and time.monotonic() < deadline:
                try:
                    while True:
                        output_queue.get_nowait()
                except queue.Empty:
                    pass
                worker.join(timeout=0.05)

    def shutdown_decode_pool(self) -> None:
        """Stop the decode worker processes and release their shared memory.

        Idempotent; also uninstalls the pool from the dataset so subsequent
        reads decode in-process.  Called automatically on abnormal epoch
        exit and by :meth:`close`.
        """
        pool, self._decode_pool = self._decode_pool, None
        if pool is not None:
            self._install_decode_pool(None)
            pool.close()

    def close(self) -> None:
        """Release loader-owned resources (the decode pool, if any)."""
        self.shutdown_decode_pool()

    def __enter__(self) -> "DataLoader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def batches_per_epoch(self) -> int:
        """Number of minibatches one epoch produces."""
        n_samples = len(self.dataset)
        full, remainder = divmod(n_samples, self.config.batch_size)
        if remainder and not self.config.drop_last:
            return full + 1
        return full

    # -- internals ----------------------------------------------------------------

    def _ensure_decode_pool(self) -> None:
        """Create and install the decode pool on first use (persistent after)."""
        if self.config.decode_workers <= 0 or self._decode_pool is not None:
            return
        # Every PCR record source (PCRDataset, RemoteRecordSource,
        # ShardedRemoteRecordSource) exposes set_decode_pool.  A custom
        # source without the hook cannot route decoding through a pool, so
        # spawning worker processes for it would only burn memory — warn
        # and keep decoding in-process instead.
        if getattr(self.dataset, "set_decode_pool", None) is None:
            import warnings

            warnings.warn(
                f"decode_workers={self.config.decode_workers} requested but "
                f"{type(self.dataset).__name__} has no set_decode_pool(); "
                "decoding stays in-process",
                RuntimeWarning,
                stacklevel=3,
            )
            return
        self._decode_pool = DecodePool(self.config.decode_workers)
        self._install_decode_pool(self._decode_pool)

    def _install_decode_pool(self, pool: DecodePool | None) -> None:
        install = getattr(self.dataset, "set_decode_pool", None)
        if install is not None:
            install(pool)

    def _worker_loop(
        self,
        work_queue: queue.Queue,
        output_queue: queue.Queue,
        seed: int,
        stop_event: threading.Event,
    ) -> None:
        rng = np.random.default_rng(seed)
        while not stop_event.is_set():
            try:
                record_name = work_queue.get_nowait()
            except queue.Empty:
                break
            try:
                images, labels = self._load_record(record_name, rng)
            except Exception as error:  # surfaced to the consumer, which re-raises
                self._put_cooperative(output_queue, error, stop_event)
                break
            if not self._put_cooperative(output_queue, (images, labels), stop_event):
                return  # consumer is gone; no one reads the end-of-epoch marker
        self._put_cooperative(output_queue, _END_OF_EPOCH, stop_event)

    @staticmethod
    def _put_cooperative(
        output_queue: queue.Queue, item, stop_event: threading.Event
    ) -> bool:
        """Put onto the bounded queue without deadlocking a shut-down loader.

        Returns False (dropping ``item``) once the stop event is set, so a
        worker blocked against a full queue always exits shortly after the
        consumer stops draining.
        """
        while not stop_event.is_set():
            try:
                output_queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _load_record(
        self, record_name: str, rng: np.random.Generator
    ) -> tuple[list[np.ndarray], list[int]]:
        # ``read_record`` decodes the whole record through the codec's
        # minibatch API (shared pixel-stage buffers, one setup per record) —
        # a record is the loader's unit of batched decode work.
        samples = self.dataset.read_record(record_name, decode=True)
        order = rng.permutation(len(samples))
        images: list[np.ndarray] = []
        labels: list[int] = []
        if self.augmentations is not None:
            # Augmentations are defined over float64 pixel arrays.
            with get_tracer().span("loader.augment", {"record": record_name}):
                for index in order:
                    sample = samples[index]
                    images.append(self.augmentations(sample.image.as_float(), rng))
                    labels.append(sample.label)
        else:
            # No augmentation: hand ``collate`` the uint8 pixels as-is.
            # Its float32 conversion of uint8 values is bit-identical to
            # casting through float64 first, so this skips one full-image
            # float64 copy per sample on the hot path.
            for index in order:
                sample = samples[index]
                images.append(sample.image.pixels)
                labels.append(sample.label)
        return images, labels
