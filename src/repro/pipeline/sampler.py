"""Record and sample ordering.

Record layouts shuffle at two levels: record order across the epoch and
sample order within each in-memory record (Section 2 / §A.1).  Both samplers
operate on arbitrary item lists so they serve record names and sample
indices alike.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import TypeVar

import numpy as np

T = TypeVar("T")


class SequentialSampler:
    """Yields items in their given order."""

    def __init__(self, items: Sequence[T]) -> None:
        self._items = list(items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)


class ShuffleSampler:
    """Yields items in a fresh random order on every iteration."""

    def __init__(self, items: Sequence[T], seed: int = 0) -> None:
        self._items = list(items)
        self._rng = np.random.default_rng(seed)

    def __iter__(self) -> Iterator[T]:
        order = self._rng.permutation(len(self._items))
        for index in order:
            yield self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def shuffle_in_place(self, items: list[T]) -> list[T]:
        """Shuffle an arbitrary list with this sampler's generator."""
        order = self._rng.permutation(len(items))
        return [items[index] for index in order]
