"""Data-loading pipeline.

The loader mirrors the paper's DALI/tf.data pipelines (Section 3.2, §A.1):
worker threads prefetch whole records, decode and augment the images, and
push minibatches into a bounded queue; the training loop pops from the queue
and records a *data stall* whenever it has to wait.
"""

from repro.pipeline.augment import (
    CenterCrop,
    Compose,
    HorizontalFlip,
    RandomCrop,
    Resize,
    standard_training_augmentations,
)
from repro.pipeline.batch import Minibatch, collate
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.pipeline.sampler import SequentialSampler, ShuffleSampler
from repro.pipeline.stall import BandwidthThrottle, StallTracker

__all__ = [
    "BandwidthThrottle",
    "CenterCrop",
    "Compose",
    "DataLoader",
    "HorizontalFlip",
    "LoaderConfig",
    "Minibatch",
    "RandomCrop",
    "Resize",
    "SequentialSampler",
    "ShuffleSampler",
    "StallTracker",
    "collate",
    "standard_training_augmentations",
]
