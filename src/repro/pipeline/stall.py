"""Data-stall tracking (Figure 11, §A.1).

A *data stall* is time the training loop spends waiting for the next
minibatch because the prefetching loader has not produced one yet.  The
tracker records per-iteration wait times so the stall timeline and aggregate
stall fraction can be reported.

``StallTracker`` is now a thin facade over the :mod:`repro.obs` metrics
registry: every recorded wait/compute interval also lands on shared
registry metrics (``loader.wait_seconds`` histogram,
``loader.{wait,compute}_seconds_total`` counters, ...), so the stall story
shows up in the same snapshot schema as the decode, serving, and storage
telemetry.  The list-based API (``wait_seconds``, ``timeline()``,
``stall_fraction``) is unchanged — the lists stay the exact per-iteration
record the Figure 11 series needs, while the registry carries the
aggregates.  ``DataLoader.epoch()`` populates both sides automatically
(waits from its queue gets, compute from the gaps between ``yield``s), so
callers no longer time anything by hand.
"""

from __future__ import annotations

from repro.obs import MetricsRegistry, get_registry

#: A wait longer than this counts as a stalled iteration (same default the
#: original ``stalled_iterations`` used).
STALL_THRESHOLD_SECONDS = 1e-3


class StallTracker:
    """Accumulates per-iteration data-wait times (registry-backed facade)."""

    def __init__(
        self,
        wait_seconds: list[float] | None = None,
        compute_seconds: list[float] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.wait_seconds: list[float] = list(wait_seconds or [])
        self.compute_seconds: list[float] = list(compute_seconds or [])
        registry = registry if registry is not None else get_registry()
        self._wait_histogram = registry.histogram("loader.wait_seconds")
        self._wait_total = registry.counter("loader.wait_seconds_total")
        self._compute_total = registry.counter("loader.compute_seconds_total")
        self._stalled_total = registry.counter("loader.stalled_iterations_total")

    def record_wait(self, seconds: float) -> None:
        """Record the time spent waiting for one minibatch."""
        self.wait_seconds.append(seconds)
        self._wait_histogram.observe(seconds)
        self._wait_total.inc(seconds)
        if seconds > STALL_THRESHOLD_SECONDS:
            self._stalled_total.inc()

    def record_compute(self, seconds: float) -> None:
        """Record the time spent computing on one minibatch."""
        self.compute_seconds.append(seconds)
        self._compute_total.inc(seconds)

    @property
    def total_wait(self) -> float:
        """Total stall time."""
        return sum(self.wait_seconds)

    @property
    def total_compute(self) -> float:
        """Total compute time."""
        return sum(self.compute_seconds)

    @property
    def stall_fraction(self) -> float:
        """Fraction of wall time spent stalled on data."""
        total = self.total_wait + self.total_compute
        return self.total_wait / total if total else 0.0

    def stalled_iterations(self, threshold_seconds: float = STALL_THRESHOLD_SECONDS) -> int:
        """Number of iterations whose wait exceeded ``threshold_seconds``."""
        return sum(1 for wait in self.wait_seconds if wait > threshold_seconds)

    def timeline(self) -> list[tuple[int, float]]:
        """Per-iteration ``(iteration, wait_seconds)`` pairs (Figure 11 series)."""
        return list(enumerate(self.wait_seconds))
