"""Data-stall tracking (Figure 11, §A.1).

A *data stall* is time the training loop spends waiting for the next
minibatch because the prefetching loader has not produced one yet.  The
tracker records per-iteration wait times so the stall timeline and aggregate
stall fraction can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StallTracker:
    """Accumulates per-iteration data-wait times."""

    wait_seconds: list[float] = field(default_factory=list)
    compute_seconds: list[float] = field(default_factory=list)

    def record_wait(self, seconds: float) -> None:
        """Record the time spent waiting for one minibatch."""
        self.wait_seconds.append(seconds)

    def record_compute(self, seconds: float) -> None:
        """Record the time spent computing on one minibatch."""
        self.compute_seconds.append(seconds)

    @property
    def total_wait(self) -> float:
        """Total stall time."""
        return sum(self.wait_seconds)

    @property
    def total_compute(self) -> float:
        """Total compute time."""
        return sum(self.compute_seconds)

    @property
    def stall_fraction(self) -> float:
        """Fraction of wall time spent stalled on data."""
        total = self.total_wait + self.total_compute
        return self.total_wait / total if total else 0.0

    def stalled_iterations(self, threshold_seconds: float = 1e-3) -> int:
        """Number of iterations whose wait exceeded ``threshold_seconds``."""
        return sum(1 for wait in self.wait_seconds if wait > threshold_seconds)

    def timeline(self) -> list[tuple[int, float]]:
        """Per-iteration ``(iteration, wait_seconds)`` pairs (Figure 11 series)."""
        return list(enumerate(self.wait_seconds))
