"""Data-stall tracking (Figure 11, §A.1).

A *data stall* is time the training loop spends waiting for the next
minibatch because the prefetching loader has not produced one yet.  The
tracker records per-iteration wait times so the stall timeline and aggregate
stall fraction can be reported.

``StallTracker`` is now a thin facade over the :mod:`repro.obs` metrics
registry: every recorded wait/compute interval also lands on shared
registry metrics (``loader.wait_seconds`` histogram,
``loader.{wait,compute}_seconds_total`` counters, ...), so the stall story
shows up in the same snapshot schema as the decode, serving, and storage
telemetry.  The list-based API (``wait_seconds``, ``timeline()``,
``stall_fraction``) is unchanged — the lists stay the exact per-iteration
record the Figure 11 series needs, while the registry carries the
aggregates.  ``DataLoader.epoch()`` populates both sides automatically
(waits from its queue gets, compute from the gaps between ``yield``s), so
callers no longer time anything by hand.
"""

from __future__ import annotations

import threading
import time

from repro.obs import MetricsRegistry, get_registry

#: A wait longer than this counts as a stalled iteration (same default the
#: original ``stalled_iterations`` used).
STALL_THRESHOLD_SECONDS = 1e-3


class StallTracker:
    """Accumulates per-iteration data-wait times (registry-backed facade)."""

    def __init__(
        self,
        wait_seconds: list[float] | None = None,
        compute_seconds: list[float] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.wait_seconds: list[float] = list(wait_seconds or [])
        self.compute_seconds: list[float] = list(compute_seconds or [])
        registry = registry if registry is not None else get_registry()
        self._wait_histogram = registry.histogram("loader.wait_seconds")
        self._wait_total = registry.counter("loader.wait_seconds_total")
        self._compute_total = registry.counter("loader.compute_seconds_total")
        self._stalled_total = registry.counter("loader.stalled_iterations_total")

    def record_wait(self, seconds: float) -> None:
        """Record the time spent waiting for one minibatch."""
        self.wait_seconds.append(seconds)
        self._wait_histogram.observe(seconds)
        self._wait_total.inc(seconds)
        if seconds > STALL_THRESHOLD_SECONDS:
            self._stalled_total.inc()

    def record_compute(self, seconds: float) -> None:
        """Record the time spent computing on one minibatch."""
        self.compute_seconds.append(seconds)
        self._compute_total.inc(seconds)

    @property
    def total_wait(self) -> float:
        """Total stall time."""
        return sum(self.wait_seconds)

    @property
    def total_compute(self) -> float:
        """Total compute time."""
        return sum(self.compute_seconds)

    @property
    def stall_fraction(self) -> float:
        """Fraction of wall time spent stalled on data."""
        total = self.total_wait + self.total_compute
        return self.total_wait / total if total else 0.0

    def stalled_iterations(self, threshold_seconds: float = STALL_THRESHOLD_SECONDS) -> int:
        """Number of iterations whose wait exceeded ``threshold_seconds``."""
        return sum(1 for wait in self.wait_seconds if wait > threshold_seconds)

    def timeline(self) -> list[tuple[int, float]]:
        """Per-iteration ``(iteration, wait_seconds)`` pairs (Figure 11 series)."""
        return list(enumerate(self.wait_seconds))


class BandwidthThrottle:
    """A serialized-link model: charging bytes sleeps to cap long-run rate.

    Models the bandwidth-capped storage link of the paper's experiments
    (and the autotune benchmark's "capped link" scenario) without touching
    sockets: every fetch charges its byte count, and the throttle sleeps
    the calling thread just long enough that the cumulative rate never
    exceeds ``bytes_per_s``.  Charges serialize on one shared ``ready_at``
    horizon — concurrent workers share the link, exactly like threads
    multiplexed over one physical pipe — and the induced delay lands in
    whatever stall accounting the caller already does.

    ``set_rate`` retargets (or, with ``None``, lifts) the cap mid-run: the
    lever the end-to-end control tests flip to make a steered fleet
    converge back up.
    """

    def __init__(self, bytes_per_s: float | None) -> None:
        self._lock = threading.Lock()
        self._rate = self._validated(bytes_per_s)
        self._ready_at = 0.0
        self.bytes_charged = 0
        self.seconds_slept = 0.0

    @staticmethod
    def _validated(bytes_per_s: float | None) -> float | None:
        if bytes_per_s is not None and bytes_per_s <= 0:
            raise ValueError("bytes_per_s must be positive (or None to uncap)")
        return bytes_per_s

    @property
    def bytes_per_s(self) -> float | None:
        with self._lock:
            return self._rate

    def set_rate(self, bytes_per_s: float | None) -> None:
        """Retarget the link cap (``None`` = uncapped) for subsequent charges."""
        rate = self._validated(bytes_per_s)
        with self._lock:
            self._rate = rate
            if rate is None:
                self._ready_at = 0.0

    def charge(self, n_bytes: int) -> float:
        """Account ``n_bytes`` against the link; returns the seconds slept."""
        if n_bytes <= 0:
            return 0.0
        now = time.monotonic()
        with self._lock:
            self.bytes_charged += n_bytes
            rate = self._rate
            if rate is None:
                return 0.0
            start = max(now, self._ready_at)
            self._ready_at = start + n_bytes / rate
            delay = self._ready_at - now
        if delay > 0:
            time.sleep(delay)
            with self._lock:
                self.seconds_slept += delay
            return delay
        return 0.0
