"""Cross-cutting utilities shared by the storage and serving layers."""

from repro.common.hashing import ConsistentHashRing, placement_index, stable_hash

__all__ = [
    "ConsistentHashRing",
    "placement_index",
    "stable_hash",
]
