"""Deterministic placement hashing shared by storage and serving.

Every placement decision in the repository — which OSD a striped object
starts on (:class:`~repro.storage.cluster.StorageCluster`) and which serving
shard owns a record (:class:`~repro.serving.cluster.shard_map.ShardMap`) —
routes through this module, so the two layers agree on one hash function and
its determinism guarantees.

``hash(str)`` is salted per process (``PYTHONHASHSEED``), which makes any
placement derived from it irreproducible across runs; CRC32 of the UTF-8
encoding is stable everywhere, cheap, and well-distributed for the
record-name-shaped keys used here.

:func:`placement_index` is the flat modulo placement the storage simulator
has always used.  :class:`ConsistentHashRing` is the serving cluster's
record-to-shard map: each node is hashed onto a ring at ``vnode_factor``
virtual points, a key is owned by the first node clockwise from the key's
hash, and successive *distinct* nodes clockwise form its natural failover
order.  Adding or removing one node therefore moves only ~``1/n`` of the
keys (the defining consistent-hashing property), which is what makes shard
topology changes cheap.
"""

from __future__ import annotations

import bisect
import zlib
from collections.abc import Iterable

DEFAULT_VNODE_FACTOR = 64


def stable_hash(key: str) -> int:
    """CRC32 of the UTF-8 encoding: a 32-bit hash stable across processes."""
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


def placement_index(name: str, n_slots: int) -> int:
    """Deterministic flat placement of ``name`` into ``n_slots`` buckets."""
    if n_slots < 1:
        raise ValueError("placement needs at least one slot")
    return stable_hash(name) % n_slots


class ConsistentHashRing:
    """A consistent-hash ring with virtual nodes.

    Nodes are identified by strings.  Each node contributes
    ``vnode_factor`` points on the ring (hashes of ``"node#i"``), which
    evens out the per-node key share.  Lookups are ``O(log(n * vnodes))``
    via binary search on the sorted point list.
    """

    def __init__(
        self, nodes: Iterable[str], vnode_factor: int = DEFAULT_VNODE_FACTOR
    ) -> None:
        if vnode_factor < 1:
            raise ValueError("vnode_factor must be at least 1")
        self.vnode_factor = vnode_factor
        self._nodes: list[str] = []
        seen: set[str] = set()
        for node in nodes:
            if node in seen:
                raise ValueError(f"duplicate ring node {node!r}")
            seen.add(node)
            self._nodes.append(node)
        if not self._nodes:
            raise ValueError("a hash ring needs at least one node")
        points: list[tuple[int, str]] = []
        for node in self._nodes:
            for vnode in range(vnode_factor):
                points.append((stable_hash(f"{node}#{vnode}"), node))
        # Ties (two vnodes hashing identically) resolve by node id so the
        # ring order is a pure function of the topology.
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [node for _, node in points]

    @property
    def nodes(self) -> list[str]:
        """The ring's nodes, in insertion order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def node_for(self, key: str) -> str:
        """The node owning ``key``: first ring point clockwise of its hash."""
        position = bisect.bisect_right(self._hashes, stable_hash(key))
        if position == len(self._hashes):
            position = 0  # wrap past the top of the ring
        return self._owners[position]

    def nodes_for(self, key: str, count: int) -> list[str]:
        """The first ``count`` *distinct* nodes clockwise of ``key``.

        The head of the list is :meth:`node_for`'s answer; the rest is the
        deterministic failover order a replicated reader walks.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        count = min(count, len(self._nodes))
        start = bisect.bisect_right(self._hashes, stable_hash(key))
        found: list[str] = []
        for step in range(len(self._hashes)):
            node = self._owners[(start + step) % len(self._hashes)]
            if node not in found:
                found.append(node)
                if len(found) == count:
                    break
        return found

    def share(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each node owns (diagnostic/balance checks)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
