"""Scan-group abstractions.

A *scan group* is the collection of same-quality scans of every image in a
record (Section 3.1).  The :class:`ScanGroupPolicy` maps the codec's scan
indices (1-based, typically 10 per image) onto scan-group indices; the
default is the identity mapping, but scans may also be merged (e.g. groups
``[1], [2, 3, 4], [5..10]``) which the paper notes is useful because
adjacent scans often cluster in quality (Section 4.4, A.6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ScanGroupError

DEFAULT_N_SCANS = 10

#: Scan groups highlighted throughout the paper's evaluation.
PAPER_EVALUATED_GROUPS = (1, 2, 5, 10)


@dataclass(frozen=True)
class ScanGroupPolicy:
    """Maps per-image scan indices to scan-group indices.

    Attributes
    ----------
    groups:
        A tuple of tuples; ``groups[g]`` lists the (1-based) scan indices
        that belong to scan group ``g + 1``.  Groups must partition
        ``1..n_scans`` into contiguous, increasing runs so that reading
        groups ``1..k`` always corresponds to reading a prefix of scans.
    """

    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        expected = 1
        for group in self.groups:
            if not group:
                raise ScanGroupError("scan groups must be non-empty")
            for scan in group:
                if scan != expected:
                    raise ScanGroupError(
                        "scan groups must partition scans into contiguous increasing runs; "
                        f"expected scan {expected}, got {scan}"
                    )
                expected += 1

    @classmethod
    def identity(cls, n_scans: int = DEFAULT_N_SCANS) -> "ScanGroupPolicy":
        """One scan group per scan (the paper's default: 10 groups)."""
        return cls(groups=tuple((i,) for i in range(1, n_scans + 1)))

    @classmethod
    def clustered(cls, boundaries: list[int], n_scans: int = DEFAULT_N_SCANS) -> "ScanGroupPolicy":
        """Merge scans into groups ending at each boundary.

        ``boundaries=[1, 4, 10]`` produces groups ``(1,), (2, 3, 4), (5..10)``.
        """
        if not boundaries or boundaries[-1] != n_scans:
            raise ScanGroupError(f"boundaries must end at n_scans={n_scans}")
        groups: list[tuple[int, ...]] = []
        start = 1
        for boundary in boundaries:
            if boundary < start:
                raise ScanGroupError("boundaries must be strictly increasing")
            groups.append(tuple(range(start, boundary + 1)))
            start = boundary + 1
        return cls(groups=tuple(groups))

    @property
    def n_groups(self) -> int:
        """Number of scan groups."""
        return len(self.groups)

    @property
    def n_scans(self) -> int:
        """Total number of per-image scans covered."""
        return sum(len(group) for group in self.groups)

    def group_of_scan(self, scan_index: int) -> int:
        """Return the 1-based group index containing 1-based ``scan_index``."""
        for group_index, group in enumerate(self.groups, start=1):
            if scan_index in group:
                return group_index
        raise ScanGroupError(f"scan index {scan_index} not covered by policy")

    def scans_in_group(self, group_index: int) -> tuple[int, ...]:
        """Return the scan indices of 1-based ``group_index``."""
        self.validate_group(group_index)
        return self.groups[group_index - 1]

    def scans_up_to_group(self, group_index: int) -> tuple[int, ...]:
        """All scan indices contained in groups ``1..group_index``."""
        self.validate_group(group_index)
        scans: list[int] = []
        for group in self.groups[:group_index]:
            scans.extend(group)
        return tuple(scans)

    def validate_group(self, group_index: int) -> None:
        """Raise :class:`ScanGroupError` unless ``1 <= group_index <= n_groups``."""
        if not 1 <= group_index <= self.n_groups:
            raise ScanGroupError(
                f"scan group {group_index} out of range [1, {self.n_groups}]"
            )
