"""Exception hierarchy for the PCR format."""

from __future__ import annotations


class PCRError(Exception):
    """Base class for every PCR-format error."""


class PCRFormatError(PCRError):
    """A byte stream or database entry is not a valid PCR structure."""


class ScanGroupError(PCRError):
    """A scan-group index is out of range or a grouping policy is invalid."""


class MissingSampleError(PCRError, KeyError):
    """A requested sample key is not present in the dataset."""
