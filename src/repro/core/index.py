"""Record indexes and the on-disk ``.pcr`` record layout.

A ``.pcr`` record file is laid out as::

    +--------------------------------------------------------------+
    | RECORD HEADER  magic, version, n_samples, n_groups, meta len |
    | METADATA BLOCK sample keys/labels + per-image codec headers  |  <- "scan group 0"
    | SCAN GROUP 1   per-sample framed scan bytes                  |
    | SCAN GROUP 2   per-sample framed scan bytes                  |
    | ...                                                          |
    | SCAN GROUP G   per-sample framed scan bytes                  |
    +--------------------------------------------------------------+

Reading the file prefix up to the end of scan group *k* yields every sample
at quality level *k*.  The end offset of each group is recorded in a
:class:`RecordIndex`, which the writer persists in the metadata database so
the reader knows exactly how many bytes to request for a given quality — the
"offsets allow a partial read of the file" mechanism of Section 3.2.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field

from repro.core.errors import PCRFormatError, ScanGroupError
from repro.core.metadata import (
    SampleMetadata,
    parse_metadata_block,
    serialize_metadata_block,
)

RECORD_MAGIC = b"PCR1"
RECORD_VERSION = 1
_RECORD_HEADER_STRUCT = "<4sHHHI"
RECORD_HEADER_SIZE = struct.calcsize(_RECORD_HEADER_STRUCT)


@dataclass(frozen=True)
class RecordIndex:
    """Byte offsets and sample listing for one ``.pcr`` record."""

    record_name: str
    n_samples: int
    n_groups: int
    metadata_end: int
    group_end_offsets: tuple[int, ...]
    sample_keys: tuple[str, ...] = field(default_factory=tuple)

    def bytes_for_group(self, scan_group: int) -> int:
        """Bytes that must be read to obtain quality level ``scan_group``.

        ``scan_group == 0`` reads only the metadata block.
        """
        if scan_group == 0:
            return self.metadata_end
        if not 1 <= scan_group <= self.n_groups:
            raise ScanGroupError(
                f"scan group {scan_group} out of range [0, {self.n_groups}]"
            )
        return self.group_end_offsets[scan_group - 1]

    @property
    def total_bytes(self) -> int:
        """Total record size in bytes (metadata plus every scan group)."""
        return self.group_end_offsets[-1] if self.group_end_offsets else self.metadata_end

    def to_json(self) -> str:
        return json.dumps(
            {
                "record_name": self.record_name,
                "n_samples": self.n_samples,
                "n_groups": self.n_groups,
                "metadata_end": self.metadata_end,
                "group_end_offsets": list(self.group_end_offsets),
                "sample_keys": list(self.sample_keys),
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "RecordIndex":
        raw = json.loads(payload)
        return cls(
            record_name=raw["record_name"],
            n_samples=int(raw["n_samples"]),
            n_groups=int(raw["n_groups"]),
            metadata_end=int(raw["metadata_end"]),
            group_end_offsets=tuple(int(v) for v in raw["group_end_offsets"]),
            sample_keys=tuple(raw.get("sample_keys", [])),
        )


def serialize_record(
    record_name: str,
    samples: list[SampleMetadata],
    header_prefixes: list[bytes],
    grouped_scans: list[list[bytes]],
) -> tuple[bytes, RecordIndex]:
    """Serialize one record.

    Parameters
    ----------
    samples:
        Metadata for each sample, in record order.
    header_prefixes:
        Per-sample codec header prefix (SOI + SOF) bytes.
    grouped_scans:
        ``grouped_scans[g][i]`` is the concatenated scan-segment bytes of
        sample ``i`` belonging to scan group ``g + 1``.

    Returns the record bytes and its :class:`RecordIndex`.
    """
    n_samples = len(samples)
    if len(header_prefixes) != n_samples:
        raise PCRFormatError("one header prefix required per sample")
    for group in grouped_scans:
        if len(group) != n_samples:
            raise PCRFormatError("each scan group must contain one entry per sample")
    n_groups = len(grouped_scans)

    metadata_block = serialize_metadata_block(samples) + _serialize_framed(header_prefixes)
    header = struct.pack(
        _RECORD_HEADER_STRUCT,
        RECORD_MAGIC,
        RECORD_VERSION,
        n_samples,
        n_groups,
        len(metadata_block),
    )
    parts = [header, metadata_block]
    metadata_end = RECORD_HEADER_SIZE + len(metadata_block)
    offset = metadata_end
    group_end_offsets: list[int] = []
    for group in grouped_scans:
        group_bytes = _serialize_framed(group)
        parts.append(group_bytes)
        offset += len(group_bytes)
        group_end_offsets.append(offset)
    index = RecordIndex(
        record_name=record_name,
        n_samples=n_samples,
        n_groups=n_groups,
        metadata_end=metadata_end,
        group_end_offsets=tuple(group_end_offsets),
        sample_keys=tuple(sample.key for sample in samples),
    )
    return b"".join(parts), index


@dataclass
class ParsedRecordPrefix:
    """The decoded contents of a record prefix read up to some scan group."""

    samples: list[SampleMetadata]
    header_prefixes: list[bytes]
    scans_per_sample: list[list[bytes]]
    n_groups_present: int
    n_groups_total: int


def parse_record_prefix(data: bytes) -> ParsedRecordPrefix:
    """Parse a record prefix (any number of complete scan groups).

    ``data`` must contain at least the record header and metadata block; any
    complete scan groups that follow are unpacked into per-sample scan bytes.
    An incomplete trailing group (possible only if the caller read an
    arbitrary prefix rather than a group boundary) is ignored.
    """
    if len(data) < RECORD_HEADER_SIZE:
        raise PCRFormatError("record prefix shorter than the record header")
    magic, version, n_samples, n_groups, metadata_length = struct.unpack_from(
        _RECORD_HEADER_STRUCT, data, 0
    )
    if magic != RECORD_MAGIC:
        raise PCRFormatError(f"bad record magic {magic!r}")
    if version != RECORD_VERSION:
        raise PCRFormatError(f"unsupported record version {version}")
    metadata_end = RECORD_HEADER_SIZE + metadata_length
    if len(data) < metadata_end:
        raise PCRFormatError("record prefix truncated inside the metadata block")
    metadata_block = data[RECORD_HEADER_SIZE:metadata_end]
    samples = parse_metadata_block(metadata_block)
    samples_length = len(serialize_metadata_block(samples))
    header_prefixes, _ = _parse_framed(metadata_block, samples_length, n_samples)

    scans_per_sample: list[list[bytes]] = [[] for _ in range(n_samples)]
    offset = metadata_end
    groups_present = 0
    for _ in range(n_groups):
        parsed = _try_parse_framed(data, offset, n_samples)
        if parsed is None:
            break
        entries, offset = parsed
        for sample_index, entry in enumerate(entries):
            scans_per_sample[sample_index].append(entry)
        groups_present += 1
    return ParsedRecordPrefix(
        samples=samples,
        header_prefixes=header_prefixes,
        scans_per_sample=scans_per_sample,
        n_groups_present=groups_present,
        n_groups_total=n_groups,
    )


def _serialize_framed(entries: list[bytes]) -> bytes:
    parts = []
    for entry in entries:
        parts.append(struct.pack("<I", len(entry)))
        parts.append(entry)
    return b"".join(parts)


def _parse_framed(data: bytes, offset: int, count: int) -> tuple[list[bytes], int]:
    entries: list[bytes] = []
    for _ in range(count):
        if offset + 4 > len(data):
            raise PCRFormatError("framed entry truncated")
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        if offset + length > len(data):
            raise PCRFormatError("framed entry payload truncated")
        entries.append(data[offset : offset + length])
        offset += length
    return entries, offset


def _try_parse_framed(data: bytes, offset: int, count: int) -> tuple[list[bytes], int] | None:
    try:
        return _parse_framed(data, offset, count)
    except PCRFormatError:
        return None
