"""Per-sample metadata carried in the PCR metadata block (scan group 0).

The paper stores labels (or other small annotations such as bounding boxes)
ahead of the scan groups; this metadata is "typically ~100 bytes" per record
for classification labels (Figure 16 caption).  ``SampleMetadata`` holds the
sample key, its integer label, and an optional free-form attribute mapping
(e.g. bounding boxes), and serializes compactly.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SampleMetadata:
    """Metadata for one training sample."""

    key: str
    label: int
    attributes: dict[str, float] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        """Serialize as length-prefixed key + label + optional attributes."""
        key_bytes = self.key.encode("utf-8")
        attribute_bytes = (
            json.dumps(self.attributes, sort_keys=True).encode("utf-8")
            if self.attributes
            else b""
        )
        return (
            struct.pack("<HqH", len(key_bytes), self.label, len(attribute_bytes))
            + key_bytes
            + attribute_bytes
        )

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> tuple["SampleMetadata", int]:
        """Deserialize a sample written by :meth:`to_bytes`.

        Returns ``(metadata, next_offset)``.
        """
        key_length, label, attribute_length = struct.unpack_from("<HqH", data, offset)
        cursor = offset + struct.calcsize("<HqH")
        key = data[cursor : cursor + key_length].decode("utf-8")
        cursor += key_length
        attributes: dict[str, float] = {}
        if attribute_length:
            attributes = json.loads(data[cursor : cursor + attribute_length].decode("utf-8"))
        cursor += attribute_length
        return cls(key=key, label=label, attributes=attributes), cursor

    def with_label(self, label: int) -> "SampleMetadata":
        """Return a copy with a remapped label (used for task remapping)."""
        return SampleMetadata(key=self.key, label=label, attributes=dict(self.attributes))


def serialize_metadata_block(samples: list[SampleMetadata]) -> bytes:
    """Serialize the metadata of all samples in a record."""
    parts = [struct.pack("<I", len(samples))]
    parts.extend(sample.to_bytes() for sample in samples)
    return b"".join(parts)


def parse_metadata_block(data: bytes) -> list[SampleMetadata]:
    """Parse a metadata block written by :func:`serialize_metadata_block`."""
    (count,) = struct.unpack_from("<I", data, 0)
    offset = 4
    samples: list[SampleMetadata] = []
    for _ in range(count):
        sample, offset = SampleMetadata.from_bytes(data, offset)
        samples.append(sample)
    return samples
