"""The PCR format — the paper's primary contribution.

A PCR dataset is a directory containing a metadata database plus one or more
``.pcr`` record files.  Each record stores label metadata for its samples
followed by *scan groups*: the progressive scans of every image in the
record, grouped by quality level and laid out contiguously.  Reading the
record prefix up to scan group *k* yields every image in the record at
quality level *k* using purely sequential I/O.

Public entry points:

* :class:`~repro.core.writer.PCRWriter` — encode images into PCR records.
* :class:`~repro.core.reader.PCRReader` — read records at a chosen scan group.
* :class:`~repro.core.dataset.PCRDataset` — dataset-level convenience API.
* :mod:`repro.core.convert` — converters from baseline formats and cost models.
"""

from repro.core.dataset import PCRDataset
from repro.core.errors import PCRError, PCRFormatError, ScanGroupError
from repro.core.metadata import SampleMetadata
from repro.core.reader import PCRReader
from repro.core.scan_groups import ScanGroupPolicy
from repro.core.writer import PCRWriter

__all__ = [
    "PCRDataset",
    "PCRError",
    "PCRFormatError",
    "PCRReader",
    "PCRWriter",
    "SampleMetadata",
    "ScanGroupError",
    "ScanGroupPolicy",
]
