"""PCR encoder: turn images into a directory of ``.pcr`` records + metadata DB.

Given a set of images, the encoder (Section 3.2) breaks each image into
progressive scans, groups scans of the same quality across images into scan
groups, sorts the groups by quality, and serializes them after the record's
label metadata.  Scan-group byte offsets are stored in the metadata database
so readers can issue exact-length partial reads.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.codecs.image import ImageBuffer
from repro.codecs.markers import parse_frame_header
from repro.codecs.progressive import ProgressiveCodec, split_scans
from repro.core.errors import PCRError
from repro.core.index import RecordIndex, serialize_record
from repro.core.metadata import SampleMetadata
from repro.core.scan_groups import ScanGroupPolicy
from repro.kvstore.interface import LSM_BACKEND, SQLITE_BACKEND, open_store

DEFAULT_IMAGES_PER_RECORD = 64
METADATA_DB_NAME = {SQLITE_BACKEND: "metadata.db", LSM_BACKEND: "metadata.lsm"}
RECORD_NAME_TEMPLATE = "record-{:05d}.pcr"

DATASET_META_KEY = b"meta/dataset"
RECORD_KEY_PREFIX = b"record/"
SAMPLE_KEY_PREFIX = b"sample/"


@dataclass(frozen=True)
class WriteResult:
    """Summary of a completed PCR dataset write."""

    directory: Path
    n_records: int
    n_samples: int
    n_groups: int
    total_bytes: int


class PCRWriter:
    """Writes a PCR dataset directory.

    Parameters
    ----------
    output_dir:
        Directory to create the dataset in (created if missing).
    images_per_record:
        Number of samples batched into each ``.pcr`` record.
    codec:
        Progressive codec used when raw images are supplied.  Pre-encoded
        progressive streams are accepted as-is.
    policy:
        Scan-group policy; its scan count must match the codec scripts.
    backend:
        Metadata database backend, ``"sqlite"`` or ``"lsm"``.
    """

    def __init__(
        self,
        output_dir: str | Path,
        images_per_record: int = DEFAULT_IMAGES_PER_RECORD,
        codec: ProgressiveCodec | None = None,
        policy: ScanGroupPolicy | None = None,
        backend: str = SQLITE_BACKEND,
    ) -> None:
        if images_per_record < 1:
            raise ValueError("images_per_record must be >= 1")
        self.output_dir = Path(output_dir)
        self.output_dir.mkdir(parents=True, exist_ok=True)
        self.images_per_record = images_per_record
        self.codec = codec if codec is not None else ProgressiveCodec()
        self.policy = policy if policy is not None else ScanGroupPolicy.identity()
        self.backend = backend
        self._store = open_store(self.output_dir / METADATA_DB_NAME[backend], backend)
        self._pending: list[tuple[SampleMetadata, bytes]] = []
        self._record_indexes: list[RecordIndex] = []
        self._n_samples = 0
        self._total_bytes = 0
        self._closed = False

    # -- public API --------------------------------------------------------

    @property
    def pending_samples(self) -> int:
        """Samples buffered but not yet flushed into a record.

        Always ``< images_per_record`` after :meth:`add_sample` returns —
        the bound streaming converters rely on (and tests assert) for
        chunk-sized peak memory.
        """
        return len(self._pending)

    def add_sample(
        self,
        key: str,
        image: ImageBuffer | bytes,
        label: int,
        attributes: dict[str, float] | None = None,
    ) -> None:
        """Queue one sample; records are flushed when full."""
        self._assert_open()
        encoded = self._encode(image)
        metadata = SampleMetadata(key=key, label=label, attributes=attributes or {})
        self._pending.append((metadata, encoded))
        self._n_samples += 1
        if len(self._pending) >= self.images_per_record:
            self._flush_record()

    def write_dataset(
        self, samples: Iterable[tuple[str, ImageBuffer | bytes, int]]
    ) -> WriteResult:
        """Write every ``(key, image, label)`` sample and finalize the dataset."""
        for key, image, label in samples:
            self.add_sample(key, image, label)
        return self.finalize()

    def finalize(self) -> WriteResult:
        """Flush any partial record, write dataset metadata, and close the DB."""
        self._assert_open()
        if self._pending:
            self._flush_record()
        self._write_dataset_metadata()
        self._store.close()
        self._closed = True
        return WriteResult(
            directory=self.output_dir,
            n_records=len(self._record_indexes),
            n_samples=self._n_samples,
            n_groups=self.policy.n_groups,
            total_bytes=self._total_bytes,
        )

    close = finalize

    def __enter__(self) -> "PCRWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if not self._closed and exc_type is None:
            self.finalize()

    # -- internals ---------------------------------------------------------

    def _assert_open(self) -> None:
        if self._closed:
            raise PCRError("writer already finalized")

    def _encode(self, image: ImageBuffer | bytes) -> bytes:
        if isinstance(image, ImageBuffer):
            return self.codec.encode(image)
        # Pre-encoded stream: verify it parses and has the expected scan count.
        parse_frame_header(image)
        return bytes(image)

    def _flush_record(self) -> None:
        record_name = RECORD_NAME_TEMPLATE.format(len(self._record_indexes))
        samples = [metadata for metadata, _ in self._pending]
        header_prefixes: list[bytes] = []
        per_sample_scans: list[list[bytes]] = []
        for _, encoded in self._pending:
            prefix, scans = split_scans(encoded)
            if len(scans) != self.policy.n_scans:
                raise PCRError(
                    f"sample has {len(scans)} scans but the scan-group policy expects "
                    f"{self.policy.n_scans}; use a matching codec script"
                )
            header_prefixes.append(prefix)
            per_sample_scans.append(scans)

        grouped_scans: list[list[bytes]] = []
        for group_index in range(1, self.policy.n_groups + 1):
            scan_indices = self.policy.scans_in_group(group_index)
            group_entries = [
                b"".join(scans[scan - 1] for scan in scan_indices)
                for scans in per_sample_scans
            ]
            grouped_scans.append(group_entries)

        record_bytes, index = serialize_record(
            record_name, samples, header_prefixes, grouped_scans
        )
        (self.output_dir / record_name).write_bytes(record_bytes)
        self._total_bytes += len(record_bytes)
        self._record_indexes.append(index)
        self._store.put(RECORD_KEY_PREFIX + record_name.encode(), index.to_json().encode())
        for position, metadata in enumerate(samples):
            sample_entry = (
                f'{{"record": "{record_name}", "position": {position}, '
                f'"label": {metadata.label}}}'
            ).encode()
            self._store.put(SAMPLE_KEY_PREFIX + metadata.key.encode(), sample_entry)
        self._pending.clear()

    def _write_dataset_metadata(self) -> None:
        import json

        payload = {
            "version": 1,
            "backend": self.backend,
            "n_records": len(self._record_indexes),
            "n_samples": self._n_samples,
            "n_groups": self.policy.n_groups,
            "n_scans": self.policy.n_scans,
            "group_boundaries": [group[-1] for group in self.policy.groups],
            "images_per_record": self.images_per_record,
            "quality": self.codec.quality,
        }
        self._store.put(DATASET_META_KEY, json.dumps(payload).encode())
