"""PCR decoder: read records at a chosen scan group with sequential I/O.

To decode a PCR file at quality level *k*, the reader looks the record's
scan-group offsets up in the metadata database, reads the file prefix up to
the end of scan group *k* in one sequential read, re-assembles each sample's
byte stream (header prefix + its scans + EOI), and hands the streams to the
codec (Section 3.2, "Decoding").
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.codecs.image import ImageBuffer
from repro.codecs.progressive import ProgressiveCodec, assemble_partial_stream
from repro.core.errors import MissingSampleError, PCRError, ScanGroupError
from repro.core.index import RecordIndex, parse_record_prefix
from repro.core.metadata import SampleMetadata
from repro.core.writer import (
    DATASET_META_KEY,
    METADATA_DB_NAME,
    RECORD_KEY_PREFIX,
    SAMPLE_KEY_PREFIX,
)
from repro.kvstore.interface import LSM_BACKEND, SQLITE_BACKEND, open_store
from repro.obs import get_tracer


@dataclass(frozen=True)
class PCRSample:
    """One decoded (or still-encoded) sample returned by the reader."""

    metadata: SampleMetadata
    stream: bytes
    image: ImageBuffer | None = None

    @property
    def key(self) -> str:
        return self.metadata.key

    @property
    def label(self) -> int:
        return self.metadata.label


def validate_scan_group(scan_group: int, n_groups: int) -> None:
    """Raise :class:`ScanGroupError` unless ``1 <= scan_group <= n_groups``."""
    if not 1 <= scan_group <= n_groups:
        raise ScanGroupError(f"scan group {scan_group} out of range [1, {n_groups}]")


def _decode_streams(streams: list[bytes], codec: ProgressiveCodec, decode_pool) -> list:
    """Decode a minibatch of streams, through a decode pool when one is wired.

    A :class:`~repro.codecs.parallel.DecodePool` is a drop-in for the
    codec's batch API — byte-identical output, but the entropy loops run on
    worker processes and the pixels come back through shared memory.
    """
    with get_tracer().span("loader.decode", {"streams": len(streams)}):
        if decode_pool is not None:
            return decode_pool.decode_batch(streams)
        return codec.decode_batch(streams)


def assemble_samples(
    data: bytes, codec: ProgressiveCodec, decode: bool, decode_pool=None
) -> list[PCRSample]:
    """Parse a record prefix and rebuild one decodable sample per entry.

    Shared by the local reader and the network
    :class:`~repro.serving.remote_source.RemoteRecordSource`, so the
    stream-reassembly invariant lives in exactly one place.  A record is a
    natural minibatch, so decoding goes through the codec's batch API
    (:meth:`~repro.codecs.progressive.ProgressiveCodec.decode_batch`), which
    reuses pixel-stage work buffers across every sample of the record — or
    through ``decode_pool`` (a :class:`~repro.codecs.parallel.DecodePool`)
    to fan the record's streams out across worker processes.
    """
    parsed = parse_record_prefix(data)
    streams = [
        assemble_partial_stream(prefix, scans)
        for prefix, scans in zip(parsed.header_prefixes, parsed.scans_per_sample)
    ]
    images = _decode_streams(streams, codec, decode_pool) if decode else [None] * len(streams)
    return [
        PCRSample(metadata=metadata, stream=stream, image=image)
        for metadata, stream, image in zip(parsed.samples, streams, images)
    ]


def assemble_samples_batch(
    blobs: list[bytes], codec: ProgressiveCodec, decode: bool, decode_pool=None
) -> list[list[PCRSample]]:
    """:func:`assemble_samples` over several record prefixes at once.

    All streams of all records decode through one batch-API call, so the
    pixel-stage scratch buffers are shared across the *whole* fetch — the
    shape a pipelined multi-record read (``RemoteRecordSource.
    read_record_batch``) hands the codec — and a wired ``decode_pool``
    parallelizes that whole fetch across its worker processes.  Results are
    bitwise identical to per-record assembly.
    """
    parsed_records = [parse_record_prefix(data) for data in blobs]
    streams: list[bytes] = []
    boundaries: list[int] = []
    for parsed in parsed_records:
        streams.extend(
            assemble_partial_stream(prefix, scans)
            for prefix, scans in zip(parsed.header_prefixes, parsed.scans_per_sample)
        )
        boundaries.append(len(streams))
    images = _decode_streams(streams, codec, decode_pool) if decode else [None] * len(streams)
    out: list[list[PCRSample]] = []
    start = 0
    for parsed, end in zip(parsed_records, boundaries):
        out.append(
            [
                PCRSample(metadata=metadata, stream=stream, image=image)
                for metadata, stream, image in zip(
                    parsed.samples, streams[start:end], images[start:end]
                )
            ]
        )
        start = end
    return out


@dataclass
class ReadStats:
    """Aggregate I/O accounting for a reader instance."""

    bytes_read: int = 0
    records_read: int = 0
    samples_decoded: int = 0

    def reset(self) -> None:
        self.bytes_read = 0
        self.records_read = 0
        self.samples_decoded = 0


class PCRReader:
    """Reads a PCR dataset directory produced by :class:`PCRWriter`.

    One reader may be shared by many threads (``DataLoader`` workers, record
    server handler threads): the index cache, the I/O counters, and metadata
    store access are guarded by an internal lock, and record files are opened
    per-read so no file position is shared across threads.  Decoding happens
    outside the lock — the codec is stateless — so concurrent reads still
    overlap where it matters.
    """

    def __init__(
        self, directory: str | Path, decode: bool = True, decode_pool=None
    ) -> None:
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise PCRError(f"{self.directory} is not a PCR dataset directory")
        self._store = self._open_store()
        meta_raw = self._store.get(DATASET_META_KEY)
        if meta_raw is None:
            raise PCRError("metadata database has no dataset entry; was the writer finalized?")
        self.dataset_meta = json.loads(meta_raw.decode())
        self.n_groups: int = int(self.dataset_meta["n_groups"])
        self.decode_by_default = decode
        self._codec = ProgressiveCodec(quality=int(self.dataset_meta.get("quality", 90)))
        self._decode_pool = decode_pool
        self._indexes: dict[str, RecordIndex] = {}
        self._lock = threading.Lock()
        self.stats = ReadStats()

    def set_decode_pool(self, pool) -> None:
        """Install (or remove, with ``None``) a parallel decode engine.

        All subsequent decoding reads route their minibatch decode through
        the :class:`~repro.codecs.parallel.DecodePool`.  The reader does not
        own the pool — the caller (typically the ``DataLoader``) manages its
        lifecycle.
        """
        self._decode_pool = pool

    def _open_store(self):
        for backend in (SQLITE_BACKEND, LSM_BACKEND):
            path = self.directory / METADATA_DB_NAME[backend]
            if path.exists():
                return open_store(path, backend)
        raise PCRError(f"no metadata database found in {self.directory}")

    # -- dataset structure ---------------------------------------------------

    @property
    def record_names(self) -> list[str]:
        """Names of every record in the dataset, in write order."""
        with self._lock:
            names = [
                key[len(RECORD_KEY_PREFIX) :].decode()
                for key, _ in self._store.scan(RECORD_KEY_PREFIX)
            ]
        return sorted(names)

    @property
    def n_samples(self) -> int:
        """Total number of samples in the dataset."""
        return int(self.dataset_meta["n_samples"])

    def record_index(self, record_name: str) -> RecordIndex:
        """Return the offset index of one record (cached)."""
        with self._lock:
            index = self._indexes.get(record_name)
            if index is None:
                raw = self._store.get(RECORD_KEY_PREFIX + record_name.encode())
                if raw is None:
                    raise PCRError(f"record {record_name!r} not found in the metadata database")
                index = RecordIndex.from_json(raw.decode())
                self._indexes[record_name] = index
        return index

    def bytes_for_group(self, record_name: str, scan_group: int) -> int:
        """Bytes a reader must fetch to get ``record_name`` at ``scan_group``."""
        return self.record_index(record_name).bytes_for_group(scan_group)

    def dataset_bytes_for_group(self, scan_group: int) -> int:
        """Total bytes read per epoch at the given scan group."""
        return sum(self.bytes_for_group(name, scan_group) for name in self.record_names)

    # -- reading -------------------------------------------------------------

    def read_record_bytes(self, record_name: str, scan_group: int) -> bytes:
        """Sequentially read the record prefix up to ``scan_group``."""
        self._validate_group(scan_group)
        index = self.record_index(record_name)
        length = index.bytes_for_group(scan_group)
        path = self.directory / record_name
        # A fresh file handle per read: concurrent readers never share a
        # file position, so the lock only needs to cover the counters.
        with get_tracer().span("loader.fetch", {"record": record_name}):
            with open(path, "rb") as handle:
                data = handle.read(length)
        if len(data) != length:
            raise PCRError(f"short read on {record_name}: got {len(data)} of {length} bytes")
        with self._lock:
            self.stats.bytes_read += length
            self.stats.records_read += 1
        return data

    def read_record(
        self, record_name: str, scan_group: int, decode: bool | None = None
    ) -> list[PCRSample]:
        """Read and reassemble every sample in a record at ``scan_group``.

        When ``decode`` is true the samples carry decoded
        :class:`~repro.codecs.image.ImageBuffer` pixels; otherwise only the
        reassembled (partial) codec streams are returned, which is what a
        data-loading pipeline that defers decoding to worker threads uses.
        """
        decode = self.decode_by_default if decode is None else decode
        data = self.read_record_bytes(record_name, scan_group)
        samples = assemble_samples(data, self._codec, decode, decode_pool=self._decode_pool)
        if decode:
            with self._lock:
                self.stats.samples_decoded += len(samples)
        return samples

    def read_sample(self, key: str, scan_group: int, decode: bool | None = None) -> PCRSample:
        """Random access to a single sample by key.

        Note that PCRs are optimized for whole-record sequential access; a
        single-sample read still fetches the record prefix.
        """
        with self._lock:
            raw = self._store.get(SAMPLE_KEY_PREFIX + key.encode())
        if raw is None:
            raise MissingSampleError(key)
        entry = json.loads(raw.decode())
        samples = self.read_record(entry["record"], scan_group, decode=decode)
        return samples[entry["position"]]

    def iter_samples(
        self, scan_group: int, decode: bool | None = None
    ):
        """Yield every sample in the dataset at the given scan group."""
        for record_name in self.record_names:
            yield from self.read_record(record_name, scan_group, decode=decode)

    def close(self) -> None:
        """Close the metadata database."""
        with self._lock:
            self._store.close()

    def __enter__(self) -> "PCRReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _validate_group(self, scan_group: int) -> None:
        validate_scan_group(scan_group, self.n_groups)
