"""Dataset-level convenience API over the PCR reader/writer.

``PCRDataset`` is the object most examples and the data-loading pipeline
interact with: it owns a reader, tracks the *current* scan group (which can
be switched at any time — the lightweight quality switch PCRs enable), and
optionally remaps labels so the same stored dataset can serve different
training tasks (Section 4.3).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from pathlib import Path

from repro.codecs.image import ImageBuffer
from repro.codecs.progressive import ProgressiveCodec
from repro.core.reader import PCRReader, PCRSample
from repro.core.scan_groups import ScanGroupPolicy
from repro.core.writer import PCRWriter, WriteResult

LabelMapper = Callable[[int], int]


class PCRDataset:
    """A PCR dataset directory viewed at a (switchable) scan group."""

    def __init__(
        self,
        directory: str | Path,
        scan_group: int | None = None,
        decode: bool = True,
        label_mapper: LabelMapper | None = None,
    ) -> None:
        self.reader = PCRReader(directory, decode=decode)
        self._scan_group = scan_group if scan_group is not None else self.reader.n_groups
        self.reader._validate_group(self._scan_group)
        self._label_mapper = label_mapper

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        samples: Iterable[tuple[str, ImageBuffer | bytes, int]],
        directory: str | Path,
        images_per_record: int = 64,
        quality: int = 90,
        policy: ScanGroupPolicy | None = None,
        backend: str = "sqlite",
    ) -> "PCRDataset":
        """Encode ``(key, image, label)`` samples into a new PCR dataset."""
        writer = PCRWriter(
            directory,
            images_per_record=images_per_record,
            codec=ProgressiveCodec(quality=quality),
            policy=policy,
            backend=backend,
        )
        writer.write_dataset(samples)
        return cls(directory)

    @classmethod
    def build_and_report(
        cls,
        samples: Iterable[tuple[str, ImageBuffer | bytes, int]],
        directory: str | Path,
        **writer_kwargs: object,
    ) -> tuple["PCRDataset", WriteResult]:
        """Like :meth:`build` but also returns the writer's summary."""
        writer = PCRWriter(directory, **writer_kwargs)  # type: ignore[arg-type]
        result = writer.write_dataset(samples)
        return cls(directory), result

    # -- quality control -----------------------------------------------------

    @property
    def scan_group(self) -> int:
        """The scan group used by iteration and sample reads."""
        return self._scan_group

    def set_scan_group(self, scan_group: int) -> None:
        """Switch the data quality used for subsequent reads.

        This is the lightweight runtime switch PCRs provide: no re-encoding,
        no extra copies — only the number of bytes read per record changes.
        """
        self.reader._validate_group(scan_group)
        self._scan_group = scan_group

    @property
    def n_groups(self) -> int:
        """Number of scan groups available."""
        return self.reader.n_groups

    # -- parallel decode -----------------------------------------------------

    def set_decode_pool(self, pool) -> None:
        """Route record decoding through a :class:`~repro.codecs.parallel.DecodePool`.

        Pass ``None`` to return to in-process decoding.  Label-mapper views
        share the underlying reader, so they see the same pool.
        """
        self.reader.set_decode_pool(pool)

    # -- label remapping -----------------------------------------------------

    def with_label_mapper(self, mapper: LabelMapper) -> "PCRDataset":
        """Return a view of this dataset with remapped labels.

        The underlying storage is shared; only the labels visible to the
        consumer change — the mechanism behind the Cars "Make-Only" and
        "Is-Corvette" tasks.
        """
        view = PCRDataset.__new__(PCRDataset)
        view.reader = self.reader
        view._scan_group = self._scan_group
        view._label_mapper = mapper
        return view

    def _map_label(self, label: int) -> int:
        return self._label_mapper(label) if self._label_mapper else label

    # -- access ---------------------------------------------------------------

    @property
    def record_names(self) -> list[str]:
        """Record names, in write order."""
        return self.reader.record_names

    def __len__(self) -> int:
        return self.reader.n_samples

    def read_record(self, record_name: str, decode: bool | None = None) -> list[PCRSample]:
        """Read one record at the current scan group."""
        samples = self.reader.read_record(record_name, self._scan_group, decode=decode)
        if self._label_mapper is None:
            return samples
        return [
            PCRSample(
                metadata=sample.metadata.with_label(self._map_label(sample.label)),
                stream=sample.stream,
                image=sample.image,
            )
            for sample in samples
        ]

    def __iter__(self) -> Iterator[PCRSample]:
        for record_name in self.record_names:
            yield from self.read_record(record_name)

    def epoch_bytes(self) -> int:
        """Bytes read from storage per epoch at the current scan group."""
        return self.reader.dataset_bytes_for_group(self._scan_group)

    def epoch_bytes_by_group(self) -> dict[int, int]:
        """Bytes per epoch for every scan group (Figure 16 data)."""
        return {
            group: self.reader.dataset_bytes_for_group(group)
            for group in range(1, self.n_groups + 1)
        }

    def mean_sample_bytes(self, scan_group: int | None = None) -> float:
        """Average bytes per sample at a scan group (drives the speedup model)."""
        group = self._scan_group if scan_group is None else scan_group
        return self.reader.dataset_bytes_for_group(group) / max(1, len(self))

    def close(self) -> None:
        """Close the underlying reader."""
        self.reader.close()

    def __enter__(self) -> "PCRDataset":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
