"""Converters between formats and the conversion-cost accounting of §A.4.

The paper compares two ways to prepare a dataset for multi-quality training:

* the *static* approach — re-encode the dataset at several fixed JPEG
  qualities, producing one record copy per quality (Figure 15, and the
  Progressive-GAN example of §A.4 with its 1.5–40x space amplification); and
* the *PCR* approach — one lossless transcode to progressive form plus a
  single record conversion.

``convert_to_pcr`` and ``build_static_copies`` implement the two pipelines
over any iterable of samples; :class:`ConversionReport` captures the timing
and size information Figure 15 and the space-amplification discussion plot.

Both converters *stream*: samples are pulled from the input iterable in
bounded chunks of ``chunk_size`` images, each chunk is batch-encoded (on the
fused float32 forward path, optionally across an
:class:`~repro.codecs.parallel.EncodePool` worker fleet) and written out
before the next chunk is pulled.  Peak memory is therefore bounded by the
chunk size plus the record writer's pending buffer — never by the dataset
size — so a generator over a multi-TB corpus converts in constant space.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.codecs.image import ImageBuffer
from repro.codecs.parallel import EncodePool
from repro.codecs.progressive import ProgressiveCodec, encode_progressive_batch
from repro.core.scan_groups import ScanGroupPolicy
from repro.core.writer import PCRWriter, WriteResult
from repro.obs import get_registry, get_tracer
from repro.records.tfrecord import TFRecordWriter

Sample = tuple[str, ImageBuffer, int]

#: The static re-encoding qualities used in Figure 15.
STATIC_QUALITIES = (50, 75, 90, 95)

#: Images pulled from the sample iterable (and batch-encoded) at a time.
#: Large enough that the batched forward path and pool chunking amortize
#: well, small enough that a chunk of typical training images is tens of MB.
DEFAULT_CHUNK_SIZE = 256


def _iter_chunks(samples: Iterable[Sample], chunk_size: int) -> Iterator[list[Sample]]:
    """Yield lists of up to ``chunk_size`` samples, pulling lazily."""
    chunk: list[Sample] = []
    for sample in samples:
        chunk.append(sample)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _encode_chunk(
    images: list[ImageBuffer],
    quality: int,
    layout: str,
    pool: EncodePool | None,
) -> list[bytes]:
    """Batch-encode one chunk, through the pool when one is wired."""
    if pool is not None:
        return pool.encode_batch(images, quality=quality, layout=layout)
    return encode_progressive_batch(images, quality=quality, layout=layout)


@dataclass
class ConversionReport:
    """Timing and size accounting for one conversion pipeline."""

    approach: str
    jpeg_conversion_seconds: float = 0.0
    record_creation_seconds: float = 0.0
    output_bytes: int = 0
    n_copies: int = 1
    per_copy_bytes: dict[str, int] = field(default_factory=dict)
    n_images: int = 0
    n_chunks: int = 0
    chunk_size: int = 0
    encode_workers: int = 0

    @property
    def total_seconds(self) -> float:
        """Total conversion time (JPEG conversion + record creation)."""
        return self.jpeg_conversion_seconds + self.record_creation_seconds

    @property
    def images_per_second(self) -> float:
        """End-to-end conversion throughput (0.0 before any work)."""
        if self.total_seconds <= 0.0 or self.n_images == 0:
            return 0.0
        return self.n_images / self.total_seconds

    def space_amplification(self, reference_bytes: int) -> float:
        """Output size relative to a single-copy reference dataset."""
        if reference_bytes <= 0:
            raise ValueError("reference_bytes must be positive")
        return self.output_bytes / reference_bytes


def convert_to_pcr(
    samples: Iterable[Sample],
    output_dir: str | Path,
    images_per_record: int = 64,
    quality: int = 90,
    policy: ScanGroupPolicy | None = None,
    backend: str = "sqlite",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    encode_workers: int = 0,
    encode_pool: EncodePool | None = None,
) -> tuple[WriteResult, ConversionReport]:
    """Encode samples once into a PCR dataset, timing each stage.

    Stage 1 (the ``jpegtran`` role) batch-encodes every image to a baseline
    stream and losslessly transcodes it to progressive form (the ``"pcr"``
    encode layout, byte-equivalent to ``transcode_to_progressive(
    BaselineCodec.encode(image))``); stage 2 groups scans and writes the
    ``.pcr`` records.  Samples are pulled in ``chunk_size`` batches and
    flushed to the writer before the next batch is pulled, so peak memory
    follows the chunk size, not the dataset size.

    ``encode_workers > 1`` runs stage 1 on an :class:`EncodePool` worker
    fleet (created here and closed on return); pass an ``encode_pool`` to
    reuse a fleet across several conversions instead.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    report = ConversionReport(
        approach="pcr",
        chunk_size=chunk_size,
        encode_workers=encode_pool.n_workers if encode_pool is not None else encode_workers,
    )
    registry = get_registry()
    tracer = get_tracer()

    pool = encode_pool
    own_pool = False
    if pool is None and encode_workers > 1:
        pool = EncodePool(encode_workers, warmup_quality=quality)
        own_pool = True

    writer = PCRWriter(
        output_dir,
        images_per_record=images_per_record,
        codec=ProgressiveCodec(quality=quality),
        policy=policy,
        backend=backend,
    )
    try:
        for chunk in _iter_chunks(samples, chunk_size):
            with tracer.span(
                "ingest.convert_chunk", {"images": len(chunk), "approach": "pcr"}
            ):
                start = time.perf_counter()
                streams = _encode_chunk(
                    [image for _, image, _ in chunk], quality, "pcr", pool
                )
                encode_seconds = time.perf_counter() - start
                start = time.perf_counter()
                for (key, _, label), stream in zip(chunk, streams):
                    writer.add_sample(key, stream, label)
                write_seconds = time.perf_counter() - start
            report.jpeg_conversion_seconds += encode_seconds
            report.record_creation_seconds += write_seconds
            report.n_images += len(chunk)
            report.n_chunks += 1
            registry.counter("ingest.chunks_total").inc()
            registry.histogram("ingest.convert_encode_seconds").observe(encode_seconds)
            registry.histogram("ingest.convert_write_seconds").observe(write_seconds)
        start = time.perf_counter()
        result = writer.finalize()
        report.record_creation_seconds += time.perf_counter() - start
    finally:
        if own_pool:
            pool.close()
    report.output_bytes = result.total_bytes
    report.per_copy_bytes["pcr"] = result.total_bytes
    return result, report


def build_static_copies(
    samples: Iterable[Sample],
    output_dir: str | Path,
    qualities: tuple[int, ...] = STATIC_QUALITIES,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    encode_workers: int = 0,
    encode_pool: EncodePool | None = None,
) -> ConversionReport:
    """Re-encode the dataset at several static qualities (the baseline pipeline).

    Each quality level produces its own TFRecord-style record file; the cost
    of every level is paid, and the copies' sizes add up — the behaviour the
    paper contrasts with a single PCR conversion.  All per-quality writers
    stay open across the streamed chunks, so each sample is pulled (and held)
    exactly once however many qualities are built.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    report = ConversionReport(
        approach="static",
        n_copies=len(qualities),
        chunk_size=chunk_size,
        encode_workers=encode_pool.n_workers if encode_pool is not None else encode_workers,
    )
    registry = get_registry()
    tracer = get_tracer()

    pool = encode_pool
    own_pool = False
    if pool is None and encode_workers > 1:
        pool = EncodePool(encode_workers, warmup_quality=max(qualities, default=90))
        own_pool = True

    record_paths = {q: output_dir / f"static-q{q}.tfrecord" for q in qualities}
    writers = {q: TFRecordWriter(record_paths[q], quality=q) for q in qualities}
    try:
        for chunk in _iter_chunks(samples, chunk_size):
            with tracer.span(
                "ingest.convert_chunk", {"images": len(chunk), "approach": "static"}
            ):
                images = [image for _, image, _ in chunk]
                for quality in qualities:
                    start = time.perf_counter()
                    encoded = _encode_chunk(images, quality, "sequential", pool)
                    encode_seconds = time.perf_counter() - start
                    start = time.perf_counter()
                    for (key, _, label), stream in zip(chunk, encoded):
                        writers[quality].add_sample(key, stream, label)
                    write_seconds = time.perf_counter() - start
                    report.jpeg_conversion_seconds += encode_seconds
                    report.record_creation_seconds += write_seconds
                    registry.histogram("ingest.convert_encode_seconds").observe(
                        encode_seconds
                    )
                    registry.histogram("ingest.convert_write_seconds").observe(
                        write_seconds
                    )
            report.n_images += len(chunk)
            report.n_chunks += 1
            registry.counter("ingest.chunks_total").inc()
    finally:
        for quality_writer in writers.values():
            quality_writer.close()
        if own_pool:
            pool.close()
    for quality in qualities:
        copy_bytes = record_paths[quality].stat().st_size
        report.per_copy_bytes[f"q{quality}"] = copy_bytes
        report.output_bytes += copy_bytes
    return report


def reference_record_bytes(samples: Iterable[Sample], output_dir: str | Path, quality: int = 90) -> int:
    """Size of a single-quality record copy (the space-amplification reference)."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    record_path = output_dir / "reference.tfrecord"
    writer = TFRecordWriter(record_path, quality=quality)
    writer.write_dataset(samples)
    return record_path.stat().st_size
