"""Converters between formats and the conversion-cost accounting of §A.4.

The paper compares two ways to prepare a dataset for multi-quality training:

* the *static* approach — re-encode the dataset at several fixed JPEG
  qualities, producing one record copy per quality (Figure 15, and the
  Progressive-GAN example of §A.4 with its 1.5–40x space amplification); and
* the *PCR* approach — one lossless transcode to progressive form plus a
  single record conversion.

``convert_to_pcr`` and ``build_static_copies`` implement the two pipelines
over any iterable of samples; :class:`ConversionReport` captures the timing
and size information Figure 15 and the space-amplification discussion plot.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.codecs.baseline import BaselineCodec
from repro.codecs.image import ImageBuffer
from repro.codecs.progressive import ProgressiveCodec
from repro.codecs.transcode import transcode_to_progressive
from repro.core.scan_groups import ScanGroupPolicy
from repro.core.writer import PCRWriter, WriteResult
from repro.records.tfrecord import TFRecordWriter

Sample = tuple[str, ImageBuffer, int]

#: The static re-encoding qualities used in Figure 15.
STATIC_QUALITIES = (50, 75, 90, 95)


@dataclass
class ConversionReport:
    """Timing and size accounting for one conversion pipeline."""

    approach: str
    jpeg_conversion_seconds: float = 0.0
    record_creation_seconds: float = 0.0
    output_bytes: int = 0
    n_copies: int = 1
    per_copy_bytes: dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total conversion time (JPEG conversion + record creation)."""
        return self.jpeg_conversion_seconds + self.record_creation_seconds

    def space_amplification(self, reference_bytes: int) -> float:
        """Output size relative to a single-copy reference dataset."""
        if reference_bytes <= 0:
            raise ValueError("reference_bytes must be positive")
        return self.output_bytes / reference_bytes


def convert_to_pcr(
    samples: Iterable[Sample],
    output_dir: str | Path,
    images_per_record: int = 64,
    quality: int = 90,
    policy: ScanGroupPolicy | None = None,
    backend: str = "sqlite",
) -> tuple[WriteResult, ConversionReport]:
    """Encode samples once into a PCR dataset, timing each stage.

    Stage 1 (the ``jpegtran`` role) encodes every image to a baseline stream
    and losslessly transcodes it to progressive form; stage 2 groups scans
    and writes the ``.pcr`` records.
    """
    baseline_codec = BaselineCodec(quality=quality)
    report = ConversionReport(approach="pcr")

    progressive_streams: list[tuple[str, bytes, int]] = []
    start = time.perf_counter()
    for key, image, label in samples:
        baseline_bytes = baseline_codec.encode(image)
        progressive_streams.append((key, transcode_to_progressive(baseline_bytes), label))
    report.jpeg_conversion_seconds = time.perf_counter() - start

    writer = PCRWriter(
        output_dir,
        images_per_record=images_per_record,
        codec=ProgressiveCodec(quality=quality),
        policy=policy,
        backend=backend,
    )
    start = time.perf_counter()
    result = writer.write_dataset(progressive_streams)
    report.record_creation_seconds = time.perf_counter() - start
    report.output_bytes = result.total_bytes
    report.per_copy_bytes["pcr"] = result.total_bytes
    return result, report


def build_static_copies(
    samples: Iterable[Sample],
    output_dir: str | Path,
    qualities: tuple[int, ...] = STATIC_QUALITIES,
) -> ConversionReport:
    """Re-encode the dataset at several static qualities (the baseline pipeline).

    Each quality level produces its own TFRecord-style record file; the cost
    of every level is paid, and the copies' sizes add up — the behaviour the
    paper contrasts with a single PCR conversion.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    materialized = list(samples)
    report = ConversionReport(approach="static", n_copies=len(qualities))

    for quality in qualities:
        codec = BaselineCodec(quality=quality)
        start = time.perf_counter()
        encoded = [(key, codec.encode(image), label) for key, image, label in materialized]
        report.jpeg_conversion_seconds += time.perf_counter() - start

        record_path = output_dir / f"static-q{quality}.tfrecord"
        start = time.perf_counter()
        writer = TFRecordWriter(record_path, quality=quality)
        writer.write_dataset(encoded)
        report.record_creation_seconds += time.perf_counter() - start

        copy_bytes = record_path.stat().st_size
        report.per_copy_bytes[f"q{quality}"] = copy_bytes
        report.output_bytes += copy_bytes
    return report


def reference_record_bytes(samples: Iterable[Sample], output_dir: str | Path, quality: int = 90) -> int:
    """Size of a single-quality record copy (the space-amplification reference)."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    record_path = output_dir / "reference.tfrecord"
    writer = TFRecordWriter(record_path, quality=quality)
    writer.write_dataset(samples)
    return record_path.stat().st_size
