"""The online adaptive-fidelity control loop (``repro.control``).

Covers the pure policy dynamics (AIMD bounds, cooldown, hysteresis under
noise), the telemetry store and wire op, the cache's group-level counters
and admission bias, the controller's step mechanics against a fake plane,
the cluster plane, and — the acceptance scenario — a real bandwidth-capped
loader that converges down to a smaller scan group and back up when the
cap lifts, with a bounded number of direction changes.
"""

from __future__ import annotations

import time

import pytest

from repro.control import (
    AdaptiveScanGroupSource,
    BandwidthBudgetPolicy,
    ClientControlState,
    ClientTelemetry,
    ControlDecision,
    FidelityController,
    ScanGroupHint,
    StallTargetPolicy,
    TelemetryStore,
)
from repro.obs import MetricsRegistry, get_registry
from repro.pipeline import BandwidthThrottle, DataLoader, LoaderConfig
from repro.serving.client import PCRClient
from repro.serving.cluster.client import ClusterClient
from repro.serving.cluster.coordinator import ClusterCoordinator
from repro.serving.remote_source import RemoteRecordSource
from repro.serving.server import PCRRecordServer, ScanPrefixCache


def _telemetry(
    scan_group: int,
    stall: float,
    n_groups: int = 10,
    client_id: str = "c0",
    **extra,
) -> ClientTelemetry:
    """A report whose stall fraction is exactly ``stall`` over a 1s window."""
    return ClientTelemetry(
        client_id=client_id,
        scan_group=scan_group,
        n_groups=n_groups,
        window_seconds=1.0,
        wait_seconds=stall,
        compute_seconds=1.0 - stall,
        **extra,
    )


def _seed(policy, state, group: int, n_groups: int = 10) -> None:
    """Consume the first-report seeding hold so the next decide() is live."""
    decision = policy.decide(_telemetry(group, 0.0, n_groups), state, 0)
    assert decision.direction == "hold"
    assert state.group == group


# ---------------------------------------------------------------------------
# telemetry dataclasses and store


class TestTelemetry:
    def test_payload_round_trip(self):
        report = ClientTelemetry(
            client_id="worker-1",
            scan_group=4,
            n_groups=10,
            window_seconds=2.0,
            wait_seconds=0.5,
            compute_seconds=1.5,
            bytes_read=1_000_000,
            records_read=12,
            samples=96,
            bytes_per_sample_by_group={1: 200.0, 10: 1200.0},
        )
        restored = ClientTelemetry.from_payload(report.to_payload())
        assert restored.client_id == "worker-1"
        assert restored.bytes_per_sample_by_group == {1: 200.0, 10: 1200.0}
        assert restored.stall_fraction == pytest.approx(0.25)
        assert restored.throughput_bytes_per_s == pytest.approx(500_000.0)
        assert restored.samples_per_s == pytest.approx(48.0)

    def test_zero_window_properties_are_zero(self):
        report = _telemetry(3, 0.0)
        empty = ClientTelemetry(client_id="c", scan_group=1, n_groups=2)
        assert empty.stall_fraction == 0.0
        assert empty.throughput_bytes_per_s == 0.0
        assert report.samples_per_s == 0.0  # no samples reported

    def test_hint_round_trip(self):
        hint = ScanGroupHint(scan_group=3, reason="because", decision_id=7)
        assert ScanGroupHint.from_payload(hint.to_payload()) == hint

    def test_store_update_returns_standing_hint(self):
        store = TelemetryStore()
        assert store.update(_telemetry(5, 0.1)) is None
        store.set_hint("c0", ScanGroupHint(scan_group=2, reason="steer"))
        hint = store.update(_telemetry(5, 0.1))
        assert hint is not None and hint.scan_group == 2
        assert store.reports_received == 2
        assert store.hints_served == 1
        assert len(store) == 1

    def test_store_prunes_stale_clients(self):
        store = TelemetryStore(max_report_age=0.05)
        store.update(_telemetry(5, 0.1, client_id="old"))
        store.set_hint("old", ScanGroupHint(scan_group=1))
        time.sleep(0.08)
        store.update(_telemetry(5, 0.1, client_id="fresh"))
        latest = store.latest()
        assert set(latest) == {"fresh"}
        assert store.hint_for("old") is None


# ---------------------------------------------------------------------------
# policies


class TestStallTargetPolicy:
    def test_multiplicative_decrease_on_overload(self):
        policy = StallTargetPolicy(target_stall_fraction=0.2, cooldown_intervals=0)
        state = ClientControlState("c0")
        _seed(policy, state, 10)
        decision = policy.decide(_telemetry(10, 0.9), state, 1)
        assert decision.direction == "down"
        assert decision.chosen_group == 5
        assert decision.previous_group == 10
        assert "multiplicative decrease" in decision.reason

    def test_additive_increase_on_headroom(self):
        policy = StallTargetPolicy(target_stall_fraction=0.2, cooldown_intervals=0)
        state = ClientControlState("c0")
        _seed(policy, state, 4)
        decision = policy.decide(_telemetry(4, 0.0), state, 1)
        assert decision.direction == "up"
        assert decision.chosen_group == 5

    def test_decrease_bounded_by_min_group(self):
        policy = StallTargetPolicy(
            target_stall_fraction=0.2, cooldown_intervals=0, min_group=1
        )
        state = ClientControlState("c0")
        _seed(policy, state, 1)
        decision = policy.decide(_telemetry(1, 1.0), state, 1)
        assert decision.direction == "hold"
        assert "floor" in decision.reason
        assert state.group == 1

    def test_increase_bounded_by_n_groups(self):
        policy = StallTargetPolicy(target_stall_fraction=0.2, cooldown_intervals=0)
        state = ClientControlState("c0")
        _seed(policy, state, 10)
        decision = policy.decide(_telemetry(10, 0.0), state, 1)
        assert decision.direction == "hold"
        assert "ceiling" in decision.reason
        assert state.group == 10

    def test_cooldown_respected_after_switch(self):
        policy = StallTargetPolicy(target_stall_fraction=0.2, cooldown_intervals=2)
        state = ClientControlState("c0")
        _seed(policy, state, 8)
        assert policy.decide(_telemetry(8, 0.9), state, 1).direction == "down"
        # The client applies the hint; the next two overloaded reports at the
        # new group must be cooldown holds, the third may act again.
        for interval in (2, 3):
            held = policy.decide(_telemetry(4, 0.9), state, interval)
            assert held.direction == "hold"
            assert "cooldown" in held.reason
        assert policy.decide(_telemetry(4, 0.9), state, 4).direction == "down"

    def test_awaiting_apply_holds_on_stale_group(self):
        policy = StallTargetPolicy(target_stall_fraction=0.2, cooldown_intervals=0)
        state = ClientControlState("c0")
        _seed(policy, state, 8)
        assert policy.decide(_telemetry(8, 0.9), state, 1).direction == "down"
        # Telemetry still taken at group 8: the client has not applied yet.
        held = policy.decide(_telemetry(8, 0.9), state, 2)
        assert held.direction == "hold"
        assert "awaiting" in held.reason
        assert state.group == 4

    def test_hysteresis_deadband_absorbs_noise(self):
        policy = StallTargetPolicy(
            target_stall_fraction=0.2, hysteresis=0.5, cooldown_intervals=0
        )
        state = ClientControlState("c0")
        _seed(policy, state, 5)
        # Deadband is [0.1, 0.3]: noisy stall readings inside it never move
        # the group — this is what prevents oscillation around the target.
        for interval, stall in enumerate((0.12, 0.28, 0.19, 0.25, 0.11), start=1):
            decision = policy.decide(_telemetry(5, stall), state, interval)
            assert decision.direction == "hold"
            assert "deadband" in decision.reason
        assert state.group == 5
        assert state.direction_changes == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StallTargetPolicy(decrease_factor=1.0)
        with pytest.raises(ValueError):
            StallTargetPolicy(increase_step=0)

    def test_decision_payload_and_changed(self):
        decision = ControlDecision(
            chosen_group=3,
            probe_metrics={"stall_fraction": 0.5},
            epoch=2,
            client_id="c0",
            previous_group=6,
            direction="down",
            reason="r",
        )
        assert decision.changed
        payload = decision.to_payload()
        assert payload["chosen_group"] == 3
        assert payload["previous_group"] == 6
        assert payload["interval"] == 2
        assert payload["inputs"] == {"stall_fraction": 0.5}


class TestBandwidthBudgetPolicy:
    SIZES = {1: 100.0, 2: 200.0, 5: 500.0, 10: 1000.0}

    def _report(self, group: int, link_bytes_per_s: float, samples_per_s: float = 10.0):
        return _telemetry(
            group,
            0.5,
            bytes_read=int(link_bytes_per_s),
            samples=int(samples_per_s),
            bytes_per_sample_by_group=self.SIZES,
        )

    def test_picks_largest_fitting_group(self):
        policy = BandwidthBudgetPolicy(link_bytes_per_s=5000.0, headroom=1.0,
                                       cooldown_intervals=0)
        state = ClientControlState("c0")
        _seed(policy, state, 10)
        decision = policy.decide(self._report(10, 5000.0), state, 1)
        # 10 samples/s * 500 B = 5000 B/s fits; group 10 would need 10000.
        assert decision.chosen_group == 5
        assert decision.direction == "down"

    def test_falls_back_to_min_group_when_nothing_fits(self):
        policy = BandwidthBudgetPolicy(link_bytes_per_s=10.0, headroom=1.0,
                                       cooldown_intervals=0)
        state = ClientControlState("c0")
        _seed(policy, state, 10)
        decision = policy.decide(self._report(10, 10.0), state, 1)
        assert decision.chosen_group == 1

    def test_measured_throughput_used_without_explicit_link(self):
        policy = BandwidthBudgetPolicy(headroom=1.0, cooldown_intervals=0)
        state = ClientControlState("c0")
        _seed(policy, state, 1)
        # Demonstrated 2000 B/s at 10 samples/s → group 2 (200 B/sample) fits.
        decision = policy.decide(self._report(1, 2000.0), state, 1)
        assert decision.chosen_group == 2
        assert decision.direction == "up"

    def test_holds_without_size_data(self):
        policy = BandwidthBudgetPolicy(link_bytes_per_s=1000.0, cooldown_intervals=0)
        state = ClientControlState("c0")
        _seed(policy, state, 5)
        decision = policy.decide(_telemetry(5, 0.5), state, 1)
        assert decision.direction == "hold"


# ---------------------------------------------------------------------------
# cache: group-level counters and admission bias


class TestCacheGroupCountersAndBias:
    def test_per_group_admissions_and_evictions(self):
        cache = ScanPrefixCache(capacity_bytes=250)
        cache.put("a", 3, b"x" * 100)
        cache.put("b", 3, b"y" * 100)
        cache.put("c", 1, b"z" * 100)  # evicts "a" (LRU)
        stats = cache.stats()
        assert stats["admissions"] == 3
        assert stats["admissions_by_group"] == {"1": 1, "3": 2}
        assert stats["evictions"] == 1
        assert stats["evictions_by_group"] == {"3": 1}

    def test_group_counters_exported_to_registry(self):
        registry = MetricsRegistry()
        cache = ScanPrefixCache(capacity_bytes=1000, registry=registry)
        cache.put("a", 2, b"x" * 10)
        assert cache.get("a", 1, 5) is not None
        assert cache.get("b", 3, 5) is None
        cache.sync_registry()
        counters = registry.snapshot()["counters"]
        assert counters["serving.cache.group.2.admissions_total"] == 1
        assert counters["serving.cache.group.1.hits_total"] == 1
        assert counters["serving.cache.group.1.bytes_served_total"] == 5
        assert counters["serving.cache.group.3.misses_total"] == 1
        assert counters["serving.cache.admissions_total"] == 1

    def test_admission_bias_skips_higher_groups_under_pressure(self):
        cache = ScanPrefixCache(capacity_bytes=200)
        cache.put("a", 2, b"x" * 100)  # occupancy 100/200: at the threshold
        cache.set_admission_bias({2})
        cache.put("b", 5, b"y" * 50)  # above the steered set → skipped
        assert len(cache) == 1
        assert cache.bias_skips == 1
        assert cache.get("b", 5, 50) is None or True  # "b" was never admitted
        # At or below the steered ceiling admission is unaffected.
        cache.put("c", 1, b"z" * 10)
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["bias_skips"] == 1
        assert stats["admission_bias"] == [2]

    def test_admission_bias_inactive_when_cache_empty_or_cleared(self):
        cache = ScanPrefixCache(capacity_bytes=1000)
        cache.set_admission_bias({1})
        cache.put("a", 9, b"x" * 10)  # cache nearly empty: admit anyway
        assert len(cache) == 1
        cache.set_admission_bias(None)
        cache.put("b", 9, b"y" * 600)
        cache.put("c", 9, b"z" * 10)
        assert cache.bias_skips == 0


# ---------------------------------------------------------------------------
# client-side instrumentation (satellite: scan-group switch visibility)


class TestScanGroupSwitchMetrics:
    def test_switch_records_gauge_and_counter(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            with RemoteRecordSource(port=server.port) as source:
                registry = get_registry()
                before = registry.snapshot()["counters"].get(
                    "serving.client.scan_group_switches_total", 0
                )
                assert (
                    registry.snapshot()["gauges"]["serving.client.scan_group"]
                    == source.n_groups
                )
                source.set_scan_group(2)
                source.set_scan_group(2)  # no-op: same group, no switch
                source.set_scan_group(5)
                snapshot = registry.snapshot()
                assert snapshot["gauges"]["serving.client.scan_group"] == 5
                after = snapshot["counters"]["serving.client.scan_group_switches_total"]
                assert after - before == 2


# ---------------------------------------------------------------------------
# wire op


class TestReportTelemetryWire:
    def test_report_and_ack_without_controller(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            with PCRClient(port=server.port) as client:
                ack = client.report_telemetry(_telemetry(5, 0.4).to_payload())
                assert ack == {"controller_active": False, "hint": None}
                reports = server.telemetry.latest()
                assert reports["c0"].scan_group == 5
                assert reports["c0"].stall_fraction == pytest.approx(0.4)
                snapshot = server.metrics_snapshot()["registry"]
                assert snapshot["counters"]["serving.telemetry.reports_total"] == 1
                assert (
                    snapshot["counters"]["serving.requests.report_telemetry_total"] == 1
                )
                assert snapshot["gauges"]["serving.telemetry.clients"] == 1

    def test_ack_carries_standing_hint(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            server.telemetry.set_hint("c0", ScanGroupHint(scan_group=2, reason="steer"))
            with PCRClient(port=server.port) as client:
                ack = client.report_telemetry(_telemetry(9, 0.8).to_payload())
                assert ack["hint"]["scan_group"] == 2
                assert ack["hint"]["reason"] == "steer"

    def test_malformed_report_is_protocol_error(self, pcr_dataset):
        from repro.serving.protocol import RemoteError

        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            with PCRClient(port=server.port) as client:
                with pytest.raises(RemoteError):
                    client.report_telemetry({"not": "telemetry"})
                # The connection survives the error frame.
                assert client.report_telemetry(_telemetry(1, 0.0).to_payload())


# ---------------------------------------------------------------------------
# controller mechanics (fake plane, fully deterministic)


class _FakePlane:
    def __init__(self):
        self.registry = MetricsRegistry()
        self.reports: dict[str, ClientTelemetry] = {}
        self.hints: dict[str, ScanGroupHint] = {}
        self.bias_history: list[set[int] | None] = []
        self.snapshots_served = 0

    def poll(self):
        return dict(self.reports)

    def publish(self, client_id, hint):
        self.hints[client_id] = hint

    def set_admission_bias(self, groups):
        self.bias_history.append(groups)

    def fleet_snapshot(self):
        self.snapshots_served += 1
        return {"counters": {}, "gauges": {}, "histograms": {}}


class TestFidelityController:
    def _controller(self, **policy_kwargs):
        plane = _FakePlane()
        policy = StallTargetPolicy(
            target_stall_fraction=0.2, cooldown_intervals=0, **policy_kwargs
        )
        return plane, FidelityController(plane, policy, interval=60.0)

    def test_step_publishes_hint_and_updates_metrics(self):
        plane, controller = self._controller()
        plane.reports["c0"] = _telemetry(10, 0.9)
        controller.step()  # seeding interval
        decisions = controller.step()
        assert decisions[0].direction == "down"
        assert plane.hints["c0"].scan_group == 5
        assert "multiplicative decrease" in plane.hints["c0"].reason
        counters = plane.registry.snapshot()["counters"]
        assert counters["control.intervals_total"] == 2
        assert counters["control.decisions_total"] == 2
        assert counters["control.steps_down_total"] == 1
        assert counters["control.holds_total"] == 1
        gauges = plane.registry.snapshot()["gauges"]
        assert gauges["control.client.c0.scan_group"] == 5
        assert gauges["control.clients_tracked"] == 1

    def test_bias_follows_steered_groups(self):
        plane, controller = self._controller()
        plane.reports["c0"] = _telemetry(10, 0.9)
        controller.step()
        assert plane.bias_history[-1] == {10}
        controller.step()
        assert plane.bias_history[-1] == {5}

    def test_departed_clients_are_forgotten(self):
        plane, controller = self._controller()
        plane.reports["c0"] = _telemetry(10, 0.9)
        plane.reports["c1"] = _telemetry(4, 0.1)
        controller.step()
        assert set(controller.states()) == {"c0", "c1"}
        del plane.reports["c1"]
        controller.step()
        assert set(controller.states()) == {"c0"}
        assert plane.registry.snapshot()["gauges"]["control.clients_tracked"] == 1

    def test_decision_log_and_switch_log(self):
        plane, controller = self._controller()
        plane.reports["c0"] = _telemetry(10, 0.9)
        controller.step()
        controller.step()
        log = controller.decision_log("c0")
        assert len(log) == 2
        assert [entry["direction"] for entry in log] == ["hold", "down"]
        switches = controller.switch_log()
        assert len(switches) == 1
        assert switches[0]["chosen_group"] == 5
        assert switches[0]["inputs"]["stall_fraction"] == pytest.approx(0.9)

    def test_fleet_scrape_cadence(self):
        plane, controller = self._controller()
        controller.fleet_scrape_intervals = 2
        for _ in range(4):
            controller.step()
        assert plane.snapshots_served == 2  # intervals 0 and 2
        assert controller.last_fleet_snapshot is not None

    def test_thread_lifecycle(self):
        plane, controller = self._controller()
        plane.reports["c0"] = _telemetry(10, 0.9)
        controller.interval = 0.01
        with controller:
            assert controller.running
            deadline = time.monotonic() + 2.0
            while controller.intervals < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert not controller.running
        assert controller.intervals >= 3


# ---------------------------------------------------------------------------
# server- and cluster-owned controllers


class TestOwnedControllers:
    def test_server_controller_closes_loop_over_the_wire(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            controller = server.start_controller(
                policy=StallTargetPolicy(target_stall_fraction=0.2, cooldown_intervals=0),
                auto_start=False,
            )
            assert server.controller is controller
            with pytest.raises(RuntimeError):
                server.start_controller()
            with PCRClient(port=server.port) as client:
                ack = client.report_telemetry(_telemetry(10, 0.9).to_payload())
                assert ack["controller_active"] is True
                controller.step()  # seeds
                controller.step()  # steers down
                ack = client.report_telemetry(_telemetry(10, 0.9).to_payload())
                assert ack["hint"]["scan_group"] == 5
                # control.* metrics ride the same registry GET_METRICS serves.
                scraped = client.metrics()["registry"]["counters"]
                assert scraped["control.steps_down_total"] == 1
            # The admission bias followed the steer onto the server cache.
            assert server.cache.stats()["admission_bias"] == [5]

    def test_cluster_controller_merges_and_publishes_fleet_wide(self, pcr_dataset):
        with ClusterCoordinator(
            pcr_dataset.reader.directory, n_shards=2, n_replicas=1
        ) as cluster:
            controller = cluster.start_controller(
                policy=StallTargetPolicy(target_stall_fraction=0.2, cooldown_intervals=0),
                auto_start=False,
            )
            with ClusterClient(cluster.shard_map) as client:
                ack = client.report_telemetry(_telemetry(10, 0.9).to_payload())
                assert ack["controller_active"] in (True, False)  # replica-local flag
                controller.step()
                controller.step()
                # The hint was published to every replica: whichever shard
                # answers the next report must return it.
                ack = client.report_telemetry(_telemetry(10, 0.9).to_payload())
                assert ack["hint"]["scan_group"] == 5
            # Every replica's cache got the fleet bias.
            for managed in cluster._replicas.values():
                assert managed.server.cache.stats()["admission_bias"] == [5]
            # The fleet snapshot rides the GET_METRICS/merge machinery.
            assert controller.last_fleet_snapshot is not None
            merged = cluster.cluster_stats()["merged"]["counters"]
            assert merged["serving.telemetry.reports_total"] == 2


# ---------------------------------------------------------------------------
# adaptive source + end-to-end convergence


class TestAdaptiveSource:
    def test_delegation_and_identity(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            with AdaptiveScanGroupSource(
                RemoteRecordSource(port=server.port), client_id="me"
            ) as source:
                assert source.client_id == "me"
                assert source.n_groups == 10
                assert len(source) == source.n_samples == 20
                assert source.record_names == source.source.record_names
                source.set_scan_group(3)
                assert source.scan_group == 3
                samples = source.read_record(source.record_names[0])
                assert len(samples) == 8

    def test_report_now_ships_window_and_applies_hint(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            controller = server.start_controller(
                policy=StallTargetPolicy(target_stall_fraction=0.2, cooldown_intervals=0),
                auto_start=False,
            )
            with AdaptiveScanGroupSource(
                RemoteRecordSource(port=server.port), client_id="c0"
            ) as source:
                from repro.pipeline.stall import StallTracker

                stalls = StallTracker(registry=MetricsRegistry())
                source.bind_stall_tracker(stalls)
                source.read_record(source.record_names[0])
                stalls.record_wait(0.9)
                stalls.record_compute(0.1)
                assert source.report_now() is None  # no hint yet: seeding step pending
                report = server.telemetry.latest()["c0"]
                assert report.stall_fraction == pytest.approx(0.9)
                assert report.records_read == 1
                assert report.bytes_read > 0
                assert report.bytes_per_sample_by_group[10] > report.bytes_per_sample_by_group[1]
                controller.step()
                stalls.record_wait(0.9)
                stalls.record_compute(0.1)
                hint = source.report_now()
                controller.step()
                stalls.record_wait(0.9)
                stalls.record_compute(0.1)
                hint = source.report_now()
                assert hint is not None and hint.scan_group == 5
                assert source.scan_group == 5  # applied through set_scan_group
                assert source.hints_applied == 1

    def test_auto_apply_off_surfaces_but_does_not_apply(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            server.telemetry.set_hint("c0", ScanGroupHint(scan_group=2))
            with AdaptiveScanGroupSource(
                RemoteRecordSource(port=server.port),
                client_id="c0",
                auto_apply=False,
            ) as source:
                hint = source.report_now()
                assert hint is not None and hint.scan_group == 2
                assert source.scan_group == source.n_groups
                assert source.last_hint == hint
                assert source.hints_applied == 0

    def test_time_based_auto_report_at_fetch_boundaries(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            with AdaptiveScanGroupSource(
                RemoteRecordSource(port=server.port),
                client_id="auto",
                report_interval=0.0,  # every fetch boundary is a window edge
            ) as source:
                source.read_record(source.record_names[0])
                source.read_record(source.record_names[1])
                assert source.reports_sent >= 1
                assert "auto" in server.telemetry.latest()

    def test_report_errors_are_swallowed(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            source = AdaptiveScanGroupSource(
                RemoteRecordSource(port=server.port), client_id="c0"
            )
        # Server stopped: reporting must not raise, only count the error.
        assert source.report_now() is None
        source.close()


class TestClosedLoopEndToEnd:
    """The acceptance scenario: cap the link, converge down; lift, converge up."""

    def _run_interval(self, loader, source, controller, compute_seconds=0.05):
        for _ in loader.epoch():
            time.sleep(compute_seconds)
        source.report_now()
        controller.step()
        source.report_now()  # pick up the hint the step just published

    def test_capped_link_converges_down_then_back_up(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            controller = server.start_controller(
                policy=StallTargetPolicy(
                    target_stall_fraction=0.2, hysteresis=0.5, cooldown_intervals=0
                ),
                auto_start=False,
            )
            throttle = BandwidthThrottle(40_000)  # a heavily capped link
            with AdaptiveScanGroupSource(
                RemoteRecordSource(port=server.port),
                client_id="trainer",
                report_interval=3600.0,  # reporting is explicit, per interval
                throttle=throttle,
            ) as source:
                loader = DataLoader(
                    source, LoaderConfig(batch_size=8, n_workers=1, shuffle=False)
                )
                n_groups = source.n_groups
                assert source.scan_group == n_groups
                trajectory = [source.scan_group]
                # Convergence down must happen within a bounded number of
                # control intervals: multiplicative decrease halves the group
                # every interval, so ceil(log2(n_groups)) + seeding suffices.
                for _ in range(6):
                    self._run_interval(loader, source, controller)
                    trajectory.append(source.scan_group)
                converged_down = source.scan_group
                assert converged_down < n_groups
                assert trajectory[1:] == sorted(trajectory[1:], reverse=True), (
                    f"no oscillation while capped: {trajectory}"
                )
                # Lift the cap: the loop must converge back up to full
                # fidelity without oscillating.
                throttle.set_rate(None)
                for _ in range(n_groups + 4):
                    self._run_interval(loader, source, controller)
                    trajectory.append(source.scan_group)
                    if source.scan_group == n_groups:
                        break
                assert source.scan_group == n_groups, trajectory
                # Decision-log bound: after the capped phase's convergence,
                # the switch directions form at most two runs (downs, then
                # ups) — ≤ 1 direction change across the whole scenario.
                directions = [s["direction"] for s in controller.switch_log()]
                changes = sum(
                    1 for a, b in zip(directions, directions[1:]) if a != b
                )
                assert changes <= 1, directions
                assert directions[0] == "down"
                assert directions[-1] == "up"