"""Tests for static tuning, dynamic controllers, mixtures, and schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.training.loop import Trainer
from repro.training.models import LinearProbe
from repro.training.optim import SGD
from repro.tuning.dynamic import GradientCosineController, LossPlateauController
from repro.tuning.mixture import MixturePolicy
from repro.tuning.schedule import ConstantSchedule, CyclicSchedule, StepSchedule
from repro.tuning.static import StaticTuner


class TestStaticTuner:
    def test_report_structure(self, pcr_dataset):
        tuner = StaticTuner(pcr_dataset, sample_limit=4)
        report = tuner.analyze()
        assert set(report.mssim_by_group) == set(range(1, 11))
        assert report.mssim_by_group[10] == pytest.approx(1.0, abs=1e-6)
        assert report.recommended_group is not None
        assert report.speedup_by_group[10] == pytest.approx(1.0)
        assert report.speedup_by_group[1] > 1.5

    def test_mssim_monotone_enough(self, pcr_dataset):
        report = StaticTuner(pcr_dataset, sample_limit=4).analyze()
        assert report.mssim_by_group[1] < report.mssim_by_group[5] <= report.mssim_by_group[10] + 1e-9

    def test_recommendation_respects_threshold(self, pcr_dataset):
        strict = StaticTuner(pcr_dataset, mssim_threshold=0.999, sample_limit=4)
        lenient = StaticTuner(pcr_dataset, mssim_threshold=0.2, sample_limit=4)
        assert strict.analyze().recommended_group >= lenient.analyze().recommended_group

    def test_impossible_threshold_falls_back_to_baseline(self, pcr_dataset):
        tuner = StaticTuner(pcr_dataset, mssim_threshold=1.5, sample_limit=2)
        assert tuner.analyze().recommended_group == pcr_dataset.n_groups

    def test_summary_rows(self, pcr_dataset):
        report = StaticTuner(pcr_dataset, sample_limit=2).analyze()
        rows = report.summary_rows()
        assert len(rows) == 10
        assert rows[0][0] == 1 and rows[-1][0] == 10


class TestLossPlateauController:
    def test_plateau_detection(self):
        controller = LossPlateauController(candidate_groups=[1, 5], plateau_patience=2)
        assert not controller.observe_loss(1.0)
        assert not controller.observe_loss(0.8)
        assert not controller.observe_loss(0.6)
        # losses stop improving
        controller.observe_loss(0.6)
        assert controller.observe_loss(0.6)

    def test_tune_rolls_model_back_and_picks_a_group(self, pcr_dataset):
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=8, n_workers=1, seed=3))
        model = LinearProbe(n_classes=4, input_size=32)
        trainer = Trainer(model, SGD(learning_rate=0.05))
        state_before = trainer.checkpoint()
        controller = LossPlateauController(candidate_groups=[1, 5], probe_batches=1, loss_slack=10.0)
        decision = controller.tune(trainer, pcr_dataset, loader, epoch=3)
        assert decision.chosen_group in {1, 5, 10}
        assert pcr_dataset.scan_group == decision.chosen_group
        # the probing updates were rolled back
        for layer_state, layer_now in zip(state_before, trainer.checkpoint()):
            for name in layer_state:
                assert np.allclose(layer_state[name], layer_now[name])
        pcr_dataset.set_scan_group(10)

    def test_generous_slack_prefers_smallest_group(self, pcr_dataset):
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=8, n_workers=1, seed=4))
        trainer = Trainer(LinearProbe(n_classes=4, input_size=32), SGD(learning_rate=0.01))
        controller = LossPlateauController(candidate_groups=[1, 5], probe_batches=1, loss_slack=100.0)
        decision = controller.tune(trainer, pcr_dataset, loader, epoch=0)
        assert decision.chosen_group == 1
        pcr_dataset.set_scan_group(10)


class TestGradientCosineController:
    def test_threshold_controls_choice(self, pcr_dataset):
        trainer = Trainer(LinearProbe(n_classes=4, input_size=32))
        lenient = GradientCosineController(candidate_groups=[1, 5, 10], similarity_threshold=0.0, max_samples=8)
        decision = lenient.tune(trainer, pcr_dataset, epoch=0)
        assert decision.chosen_group == 1
        strict = GradientCosineController(candidate_groups=[1, 5, 10], similarity_threshold=0.999999, max_samples=8)
        decision = strict.tune(trainer, pcr_dataset, epoch=1)
        assert decision.chosen_group >= 5
        assert decision.probe_metrics[10] == pytest.approx(1.0, abs=1e-9)
        pcr_dataset.set_scan_group(10)

    def test_decisions_are_recorded(self, pcr_dataset):
        trainer = Trainer(LinearProbe(n_classes=4, input_size=32))
        controller = GradientCosineController(candidate_groups=[1, 10], similarity_threshold=0.9, max_samples=8)
        controller.tune(trainer, pcr_dataset, epoch=0)
        controller.tune(trainer, pcr_dataset, epoch=5)
        assert len(controller.decisions) == 2
        pcr_dataset.set_scan_group(10)


class TestMixturePolicy:
    def test_point_mass(self):
        policy = MixturePolicy.point_mass(3, 10)
        assert policy.selection_probability(3) == 1.0
        assert policy.selection_probability(1) == 0.0

    def test_weighted_probabilities_match_paper(self):
        # weight 10 over 10 groups -> selected probability 10/19 (~50%)
        policy_50 = MixturePolicy.weighted(1, 10, selected_weight=10.0)
        assert policy_50.selection_probability(1) == pytest.approx(10 / 19)
        # weight ~100 -> ~85-92%
        policy_85 = MixturePolicy.weighted(1, 10, selected_weight=100.0)
        assert policy_85.selection_probability(1) > 0.85

    def test_uniform(self):
        policy = MixturePolicy.uniform(5)
        assert policy.selection_probability(2) == pytest.approx(0.2)

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            MixturePolicy((0.5, 0.6))
        with pytest.raises(ValueError):
            MixturePolicy((1.5, -0.5))
        with pytest.raises(ValueError):
            MixturePolicy.weighted(0, 10)

    def test_sampling_frequencies(self):
        rng = np.random.default_rng(0)
        policy = MixturePolicy.weighted(2, 10, selected_weight=10.0)
        draws = [policy.sample_group(rng) for _ in range(3000)]
        frequency = draws.count(2) / len(draws)
        assert abs(frequency - 10 / 19) < 0.05
        assert set(draws) <= set(range(1, 11))

    def test_expected_bytes_is_continuous_control(self):
        sizes = {group: group * 10_000.0 for group in range(1, 11)}
        low = MixturePolicy.weighted(1, 10, 100.0).expected_bytes(sizes)
        high = MixturePolicy.weighted(10, 10, 100.0).expected_bytes(sizes)
        uniform = MixturePolicy.uniform(10).expected_bytes(sizes)
        assert low < uniform < high


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(group=5)
        assert schedule.group_for_epoch(0) == schedule.group_for_epoch(99) == 5

    def test_step_schedule(self):
        schedule = StepSchedule(milestones=((0, 10), (5, 2), (20, 5)))
        assert schedule.group_for_epoch(0) == 10
        assert schedule.group_for_epoch(4) == 10
        assert schedule.group_for_epoch(5) == 2
        assert schedule.group_for_epoch(25) == 5

    def test_step_schedule_validation(self):
        with pytest.raises(ValueError):
            StepSchedule(milestones=())
        with pytest.raises(ValueError):
            StepSchedule(milestones=((5, 1), (0, 2)))

    def test_cyclic_schedule(self):
        schedule = CyclicSchedule(groups=(1, 5, 10), epochs_per_group=2)
        assert [schedule.group_for_epoch(e) for e in range(8)] == [1, 1, 5, 5, 10, 10, 1, 1]

    def test_cyclic_validation(self):
        with pytest.raises(ValueError):
            CyclicSchedule(groups=())
        with pytest.raises(ValueError):
            CyclicSchedule(groups=(1,), epochs_per_group=0)
