"""Shared fixtures: deterministic synthetic images and small PCR datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.image import ImageBuffer
from repro.core.dataset import PCRDataset
from repro.datasets.synthetic import SyntheticImageGenerator, SyntheticImageSpec


def make_structured_image(size: int = 48, seed: int = 0, color: bool = True) -> ImageBuffer:
    """A deterministic image with both low- and high-frequency content."""
    rng = np.random.default_rng(seed)
    coordinates = np.linspace(0, 1, size)
    xx, yy = np.meshgrid(coordinates, coordinates)
    base = 128 + 80 * np.sin(4 * np.pi * xx) * np.cos(2 * np.pi * yy)
    texture = 30 * np.sin(24 * np.pi * (xx + 0.3 * yy))
    noise = rng.normal(0, 4, size=(size, size))
    luma = base + texture + noise
    if not color:
        return ImageBuffer.from_array(luma)
    rgb = np.stack([luma, 0.7 * luma + 40.0, 220.0 - 0.5 * luma], axis=-1)
    return ImageBuffer.from_array(rgb)


@pytest.fixture(scope="session")
def color_image() -> ImageBuffer:
    return make_structured_image(48, seed=1, color=True)


@pytest.fixture(scope="session")
def gray_image() -> ImageBuffer:
    return make_structured_image(48, seed=2, color=False)


@pytest.fixture(scope="session")
def odd_sized_image() -> ImageBuffer:
    return make_structured_image(37, seed=3, color=True)


@pytest.fixture(scope="session")
def tiny_samples() -> list[tuple[str, ImageBuffer, int]]:
    """Twenty small labelled images used to build PCR datasets in tests."""
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=32, n_coarse_groups=2), seed=7
    )
    return generator.generate_batch(20, seed=7)


@pytest.fixture(scope="session")
def pcr_dataset(tmp_path_factory, tiny_samples) -> PCRDataset:
    """A session-scoped PCR dataset built from :func:`tiny_samples`."""
    directory = tmp_path_factory.mktemp("pcr-session")
    return PCRDataset.build(tiny_samples, directory, images_per_record=8, quality=90)
