"""Tests for scan groups, metadata, and the record serialization layer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import PCRFormatError, ScanGroupError
from repro.core.index import (
    RECORD_HEADER_SIZE,
    RecordIndex,
    parse_record_prefix,
    serialize_record,
)
from repro.core.metadata import (
    SampleMetadata,
    parse_metadata_block,
    serialize_metadata_block,
)
from repro.core.scan_groups import ScanGroupPolicy


class TestScanGroupPolicy:
    def test_identity_policy(self):
        policy = ScanGroupPolicy.identity(10)
        assert policy.n_groups == 10
        assert policy.n_scans == 10
        assert policy.scans_in_group(3) == (3,)
        assert policy.group_of_scan(7) == 7

    def test_clustered_policy(self):
        policy = ScanGroupPolicy.clustered([1, 4, 10], n_scans=10)
        assert policy.n_groups == 3
        assert policy.scans_in_group(2) == (2, 3, 4)
        assert policy.scans_up_to_group(2) == (1, 2, 3, 4)
        assert policy.group_of_scan(9) == 3

    def test_clustered_must_end_at_n_scans(self):
        with pytest.raises(ScanGroupError):
            ScanGroupPolicy.clustered([1, 4], n_scans=10)

    def test_non_contiguous_groups_rejected(self):
        with pytest.raises(ScanGroupError):
            ScanGroupPolicy(groups=((1,), (3,)))

    def test_empty_group_rejected(self):
        with pytest.raises(ScanGroupError):
            ScanGroupPolicy(groups=((1,), ()))

    def test_group_out_of_range(self):
        policy = ScanGroupPolicy.identity(5)
        with pytest.raises(ScanGroupError):
            policy.scans_in_group(6)
        with pytest.raises(ScanGroupError):
            policy.scans_in_group(0)

    def test_scan_not_covered(self):
        policy = ScanGroupPolicy.identity(5)
        with pytest.raises(ScanGroupError):
            policy.group_of_scan(6)

    @given(st.lists(st.integers(1, 12), min_size=1, max_size=5, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_clustered_boundaries_property(self, raw_boundaries):
        boundaries = sorted(raw_boundaries)
        n_scans = boundaries[-1]
        policy = ScanGroupPolicy.clustered(boundaries, n_scans=n_scans)
        assert policy.n_scans == n_scans
        assert policy.scans_up_to_group(policy.n_groups) == tuple(range(1, n_scans + 1))


class TestSampleMetadata:
    def test_roundtrip_without_attributes(self):
        metadata = SampleMetadata(key="img-001", label=42)
        restored, offset = SampleMetadata.from_bytes(metadata.to_bytes())
        assert restored == metadata
        assert offset == len(metadata.to_bytes())

    def test_roundtrip_with_attributes(self):
        metadata = SampleMetadata(key="x", label=-3, attributes={"bbox_x": 1.5, "bbox_y": 2.0})
        restored, _ = SampleMetadata.from_bytes(metadata.to_bytes())
        assert restored.attributes == {"bbox_x": 1.5, "bbox_y": 2.0}
        assert restored.label == -3

    def test_unicode_keys(self):
        metadata = SampleMetadata(key="图像-42", label=1)
        restored, _ = SampleMetadata.from_bytes(metadata.to_bytes())
        assert restored.key == "图像-42"

    def test_block_roundtrip(self):
        samples = [SampleMetadata(key=f"k{i}", label=i) for i in range(5)]
        assert parse_metadata_block(serialize_metadata_block(samples)) == samples

    def test_empty_block(self):
        assert parse_metadata_block(serialize_metadata_block([])) == []

    def test_with_label(self):
        metadata = SampleMetadata(key="a", label=7, attributes={"w": 1.0})
        remapped = metadata.with_label(1)
        assert remapped.label == 1
        assert remapped.key == "a"
        assert remapped.attributes == {"w": 1.0}

    def test_metadata_is_small(self):
        # The paper: label metadata is ~a bit per label / ~100 bytes per record.
        metadata = SampleMetadata(key="img-000001", label=3)
        assert len(metadata.to_bytes()) < 32


class TestRecordSerialization:
    def _build(self, n_samples=3, n_groups=4):
        samples = [SampleMetadata(key=f"s{i}", label=i % 2) for i in range(n_samples)]
        prefixes = [bytes([i]) * 10 for i in range(n_samples)]
        groups = [
            [bytes([group * 16 + i]) * (group + 1) * 5 for i in range(n_samples)]
            for group in range(n_groups)
        ]
        return samples, prefixes, groups

    def test_roundtrip_full_record(self):
        samples, prefixes, groups = self._build()
        data, index = serialize_record("rec", samples, prefixes, groups)
        parsed = parse_record_prefix(data)
        assert parsed.samples == samples
        assert parsed.header_prefixes == prefixes
        assert parsed.n_groups_present == 4
        assert parsed.n_groups_total == 4
        for sample_index in range(3):
            assert parsed.scans_per_sample[sample_index] == [
                groups[g][sample_index] for g in range(4)
            ]
        assert index.total_bytes == len(data)

    def test_prefix_reads_stop_at_group_boundaries(self):
        samples, prefixes, groups = self._build()
        data, index = serialize_record("rec", samples, prefixes, groups)
        for group_number in range(1, 5):
            prefix = data[: index.bytes_for_group(group_number)]
            parsed = parse_record_prefix(prefix)
            assert parsed.n_groups_present == group_number

    def test_metadata_only_prefix(self):
        samples, prefixes, groups = self._build()
        data, index = serialize_record("rec", samples, prefixes, groups)
        parsed = parse_record_prefix(data[: index.bytes_for_group(0)])
        assert parsed.n_groups_present == 0
        assert parsed.samples == samples

    def test_bytes_for_group_monotone(self):
        samples, prefixes, groups = self._build(n_groups=6)
        _, index = serialize_record("rec", samples, prefixes, groups)
        sizes = [index.bytes_for_group(g) for g in range(0, 7)]
        assert sizes == sorted(sizes)
        assert sizes[0] > RECORD_HEADER_SIZE

    def test_group_count_mismatch_rejected(self):
        samples, prefixes, groups = self._build()
        groups[1] = groups[1][:-1]
        with pytest.raises(PCRFormatError):
            serialize_record("rec", samples, prefixes, groups)

    def test_prefix_count_mismatch_rejected(self):
        samples, prefixes, groups = self._build()
        with pytest.raises(PCRFormatError):
            serialize_record("rec", samples, prefixes[:-1], groups)

    def test_bad_magic_rejected(self):
        samples, prefixes, groups = self._build()
        data, _ = serialize_record("rec", samples, prefixes, groups)
        with pytest.raises(PCRFormatError):
            parse_record_prefix(b"XXXX" + data[4:])

    def test_truncated_metadata_rejected(self):
        samples, prefixes, groups = self._build()
        data, index = serialize_record("rec", samples, prefixes, groups)
        with pytest.raises(PCRFormatError):
            parse_record_prefix(data[: index.metadata_end - 3])

    def test_index_json_roundtrip(self):
        samples, prefixes, groups = self._build()
        _, index = serialize_record("rec", samples, prefixes, groups)
        restored = RecordIndex.from_json(index.to_json())
        assert restored == index

    def test_bytes_for_group_out_of_range(self):
        samples, prefixes, groups = self._build()
        _, index = serialize_record("rec", samples, prefixes, groups)
        with pytest.raises(ScanGroupError):
            index.bytes_for_group(99)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, n_samples, n_groups):
        samples, prefixes, groups = self._build(n_samples, n_groups)
        data, index = serialize_record("rec", samples, prefixes, groups)
        parsed = parse_record_prefix(data)
        assert parsed.n_groups_present == n_groups
        assert len(parsed.samples) == n_samples
        assert index.group_end_offsets[-1] == len(data)
