"""Differential and lifecycle tests for the process-parallel decode engine.

The contract under test: :class:`repro.codecs.parallel.DecodePool` output is
*byte-identical* to in-process fast-path decoding — across scan groups,
colour modes, odd dimensions, worker counts, and every failure path (worker
kill mid-batch, dead fleet, closed pool) — and a pool never leaks worker
processes or shared-memory segments.
"""

from __future__ import annotations

import gc
import glob
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.codecs.markers import EOI, CodecFormatError, find_scan_segments, write_scan_segment
from repro.codecs.parallel import DecodePool, _chunk_by_bytes
from repro.codecs.progressive import (
    ProgressiveCodec,
    assemble_partial_stream,
    decode_progressive_batch,
    split_scans,
)
from tests.conftest import make_structured_image

N_GROUPS = 10


def _live_slabs() -> list[str]:
    return glob.glob("/dev/shm/pcrslab_*")


def _assert_identical(expected, actual) -> None:
    assert len(expected) == len(actual)
    for index, (ref, out) in enumerate(zip(expected, actual)):
        assert ref.pixels.dtype == out.pixels.dtype == np.uint8
        assert ref.pixels.shape == out.pixels.shape, f"image {index}"
        assert np.array_equal(ref.pixels, out.pixels), f"image {index} differs"


@pytest.fixture(scope="module")
def streams() -> list[bytes]:
    """Full 10-scan streams over gray/colour and even/odd dimensions."""
    codec = ProgressiveCodec(quality=90)
    images = [
        make_structured_image(48, seed=1, color=True),
        make_structured_image(48, seed=2, color=False),
        make_structured_image(37, seed=3, color=True),  # odd dims, colour
        make_structured_image(21, seed=4, color=False),  # odd dims, gray
        make_structured_image(40, seed=5, color=True),
    ]
    return [codec.encode(image) for image in images]


@pytest.fixture(scope="module")
def group_payloads(streams) -> dict[int, list[bytes]]:
    """The same streams truncated to every scan-group prefix 1..10."""
    split = [split_scans(stream) for stream in streams]
    return {
        group: [assemble_partial_stream(prefix, scans[:group]) for prefix, scans in split]
        for group in range(1, N_GROUPS + 1)
    }


# -- chunking ---------------------------------------------------------------


class TestChunking:
    @pytest.mark.parametrize(
        "sizes,n_chunks",
        [
            ([5] * 10, 8),
            ([1000, 1, 1, 1, 1], 4),
            ([1, 1, 1, 1, 1000], 4),
            ([7], 8),
            ([3, 3], 1),
            (list(range(1, 30)), 6),
        ],
    )
    def test_partition_invariants(self, sizes, n_chunks):
        chunks = _chunk_by_bytes(sizes, n_chunks)
        # Every index exactly once, in order, no empty chunk, bounded count.
        assert [i for chunk in chunks for i in chunk] == list(range(len(sizes)))
        assert all(chunks)
        assert len(chunks) <= max(1, min(n_chunks, len(sizes)))

    def test_uneven_sizes_get_split(self):
        # A huge stream must not drag the whole tail into one chunk.
        chunks = _chunk_by_bytes([1000] + [10] * 8, 4)
        assert len(chunks) >= 3


# -- differential decoding --------------------------------------------------


class TestDifferentialDecode:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_byte_identical_across_scan_groups(self, group_payloads, n_workers):
        with DecodePool(n_workers) as pool:
            for group in range(1, N_GROUPS + 1):
                payloads = group_payloads[group]
                expected = decode_progressive_batch(payloads)
                _assert_identical(expected, pool.decode_batch(payloads))

    def test_max_scans_forwarded(self, streams):
        with DecodePool(2) as pool:
            expected = decode_progressive_batch(streams, max_scans=3)
            _assert_identical(expected, pool.decode_batch(streams, max_scans=3))

    def test_empty_and_single(self, streams):
        with DecodePool(2) as pool:
            assert pool.decode_batch([]) == []
            _assert_identical(
                decode_progressive_batch(streams[:1]), pool.decode_batch(streams[:1])
            )

    def test_single_worker_runs_in_process(self, streams):
        pool = DecodePool(1)
        assert pool._state is None  # no processes, no shared memory
        _assert_identical(decode_progressive_batch(streams), pool.decode_batch(streams))
        pool.close()

    def test_garbage_payload_raises(self, streams):
        with DecodePool(2) as pool:
            with pytest.raises(CodecFormatError):
                pool.decode_batch([b"not a stream"])
            # Pool unharmed.
            _assert_identical(decode_progressive_batch(streams), pool.decode_batch(streams))

    def test_worker_decode_error_surfaces_in_process(self, streams):
        # A stream whose first scan payload is truncated decodes to EOFError;
        # the worker reports it, the pool restarts the fleet and re-decodes
        # in-process, and the caller sees the genuine exception.
        stream = streams[0]
        prefix, _ = split_scans(stream)
        segment = find_scan_segments(stream)[0]
        body = stream[segment.payload_start : segment.end]
        bad = prefix + write_scan_segment(segment.header, body[:-8]) + EOI
        with DecodePool(2) as pool:
            with pytest.raises(EOFError):
                pool.decode_batch([bad])
            assert pool.stats.fallback_batches == 1
            # The fleet comes back for the next batch.
            _assert_identical(decode_progressive_batch(streams), pool.decode_batch(streams))
            assert pool.stats.parallel_batches >= 1


# -- zero-copy slab views ---------------------------------------------------


class TestSlabViews:
    def test_views_are_shared_memory_backed_and_frozen(self, streams):
        with DecodePool(2) as pool:
            out = pool.decode_batch(streams)
            assert any(type(img.pixels).__name__ == "_SlabView" for img in out)
            for img in out:
                if type(img.pixels).__name__ == "_SlabView":
                    assert not img.pixels.flags.writeable

    def test_slab_reused_after_views_die(self, streams):
        with DecodePool(2) as pool:
            out = pool.decode_batch(streams)
            del out
            gc.collect()
            pool.decode_batch(streams)
            assert pool.stats.slabs_created == 1

    def test_outstanding_views_pin_slab_across_batches(self, streams):
        # Holding batch-1 frames while decoding batch 2 must not corrupt
        # them: the leased slab is not reused until the views die.
        with DecodePool(2) as pool:
            first = pool.decode_batch(streams)
            snapshots = [img.pixels.copy() for img in first]
            pool.decode_batch(list(reversed(streams)))
            for img, snap in zip(first, snapshots):
                assert np.array_equal(img.pixels, snap)
            assert pool.stats.slabs_created == 2


# -- failure and fallback ---------------------------------------------------


class TestFailurePaths:
    def test_dead_fleet_falls_back_in_process(self, streams):
        pool = DecodePool(2)
        try:
            state = pool._state
            for worker in state.workers:
                worker.terminate()
            for worker in state.workers:
                worker.join(timeout=5.0)
            state.respawn = False  # pin the fallback path deterministically
            expected = decode_progressive_batch(streams)
            _assert_identical(expected, pool.decode_batch(streams))
            assert pool.stats.fallback_batches == 1
            assert pool.stats.fleet_restarts == 1
            # Re-enable respawn: the next batch runs parallel again.
            state.respawn = True
            _assert_identical(expected, pool.decode_batch(streams))
            assert pool.stats.workers_started == 4  # 2 initial + 2 respawned
        finally:
            pool.close()

    def test_worker_kill_mid_batch(self, streams):
        payloads = streams * 20
        expected = decode_progressive_batch(payloads)
        pool = DecodePool(2)
        try:
            state = pool._state

            def assassin():
                time.sleep(0.01)
                for worker in list(state.workers):
                    worker.terminate()

            killer = threading.Thread(target=assassin)
            killer.start()
            out = pool.decode_batch(payloads)
            killer.join()
            _assert_identical(expected, out)
            # Whatever the interleaving, the next batch must also be exact.
            _assert_identical(decode_progressive_batch(streams), pool.decode_batch(streams))
        finally:
            pool.close()

    def test_closed_pool_decodes_in_process(self, streams):
        pool = DecodePool(2)
        pool.close()
        _assert_identical(decode_progressive_batch(streams), pool.decode_batch(streams))

    def test_scalar_toggle_does_not_leak_into_pool_output(self, streams):
        """Pool output is pinned to fast-path decode on *every* path.

        Workers force the fast path on, so the in-process degradations
        (n_workers<=1, closed pool, dead-fleet fallback) must pin it too —
        otherwise a crash under ``use_fastpath(False)`` could return a batch
        whose chunks differ by the float32-vs-float64 pixel paths' ±1 LSB.
        """
        from repro.codecs import config

        expected = decode_progressive_batch(streams)  # fast path (default on)
        with config.use_fastpath(False):
            single = DecodePool(1)
            _assert_identical(expected, single.decode_batch(streams))
            single.close()
            pool = DecodePool(2)
            _assert_identical(expected, pool.decode_batch(streams))
            state = pool._state
            for worker in state.workers:
                worker.terminate()
            for worker in state.workers:
                worker.join(timeout=5.0)
            state.respawn = False
            _assert_identical(expected, pool.decode_batch(streams))  # fallback
            pool.close()
            _assert_identical(expected, pool.decode_batch(streams))  # closed


# -- lifecycle / leak hygiene ----------------------------------------------


class TestLifecycle:
    def test_close_reaps_workers_and_slabs(self, streams):
        pool = DecodePool(2)
        out = pool.decode_batch(streams)
        workers = list(pool._state.workers)
        del out
        gc.collect()
        pool.close()
        assert all(not worker.is_alive() for worker in workers)
        assert _live_slabs() == []

    def test_close_with_outstanding_views_defers_slab_unlink(self, streams):
        pool = DecodePool(2)
        out = pool.decode_batch(streams)
        pool.close()
        # Views still readable after close (slab alive until they die)...
        _assert_identical(decode_progressive_batch(streams), out)
        del out
        gc.collect()
        # ...and the slab is unlinked the moment the last view is collected.
        assert _live_slabs() == []

    def test_double_close_is_idempotent(self):
        pool = DecodePool(2)
        pool.close()
        pool.close()

    def test_resource_tracker_stays_quiet(self, tmp_path):
        """End-to-end child run: no leaked shm, no resource_tracker noise.

        The child exercises both shutdown paths — an explicitly closed pool
        and an abandoned one cleaned up by GC finalizers at interpreter
        exit — with frame views still outstanding.
        """
        script = """
import sys
from repro.codecs.parallel import DecodePool
from repro.codecs.progressive import ProgressiveCodec
from tests.conftest import make_structured_image

codec = ProgressiveCodec(quality=90)
streams = [codec.encode(make_structured_image(32, seed=s, color=True)) for s in range(3)]
explicit = DecodePool(2)
held = explicit.decode_batch(streams)
explicit.close()
abandoned = DecodePool(2)
held2 = abandoned.decode_batch(streams)
sys.exit(0)
"""
        repo_root = Path(__file__).resolve().parent.parent
        before = set(_live_slabs())
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=repo_root,
            env={
                "PYTHONPATH": f"{repo_root / 'src'}:{repo_root}",
                "PATH": "/usr/bin:/bin",
            },
        )
        assert result.returncode == 0, result.stderr
        assert "resource_tracker" not in result.stderr, result.stderr
        assert "leaked" not in result.stderr, result.stderr
        assert set(_live_slabs()) <= before
