"""Cross-module integration tests: the full PCR workflow end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import PCRDataset
from repro.datasets.labels import is_corvette_mapper, make_only_mapper
from repro.datasets.registry import CARS_SPEC, generate_dataset
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.simulate.trainer_sim import ClusterSpec, TrainingSimulator
from repro.storage.cluster import StorageCluster
from repro.training.loop import Trainer
from repro.training.models import LinearProbe
from repro.training.optim import SGD
from repro.tuning.static import StaticTuner


@pytest.fixture(scope="module")
def cars_dataset(tmp_path_factory):
    """A small Cars-like PCR dataset (fine-grained labels with coarse groups)."""
    from dataclasses import replace

    spec = replace(CARS_SPEC, n_samples=48, image_size=32, n_classes=6, n_coarse_groups=3)
    directory = tmp_path_factory.mktemp("cars-like")
    samples = list(generate_dataset(spec, seed=11))
    return PCRDataset.build(samples, directory, images_per_record=12, quality=spec.jpeg_quality), spec


class TestTaskDifficulty:
    def test_coarse_tasks_tolerate_low_scan_groups_better(self, cars_dataset):
        """The Figure 6/29/30 effect: remapping labels to a coarser task closes
        the accuracy gap between scan group 1 and the baseline."""
        dataset, spec = cars_dataset

        def final_accuracy(view, n_classes, scan_group, epochs=6, seed=0):
            view.set_scan_group(scan_group)
            loader = DataLoader(view, LoaderConfig(batch_size=12, n_workers=1, seed=seed))
            trainer = Trainer(
                LinearProbe(n_classes=n_classes, input_size=spec.image_size, seed=seed),
                SGD(learning_rate=0.2, momentum=0.9, weight_decay=0.0),
            )
            trainer.fit(loader, n_epochs=epochs)
            accuracy = trainer.evaluate(loader)
            view.set_scan_group(view.n_groups)
            return accuracy

        fine_low = final_accuracy(dataset, spec.n_classes, scan_group=1)
        fine_high = final_accuracy(dataset, spec.n_classes, scan_group=10)

        binary_view = dataset.with_label_mapper(is_corvette_mapper(spec.n_coarse_groups))
        binary_low = final_accuracy(binary_view, 2, scan_group=1)
        binary_high = final_accuracy(binary_view, 2, scan_group=10)

        fine_gap = fine_high - fine_low
        binary_gap = binary_high - binary_low
        # The binary task's gap is no larger than the fine-grained task's gap
        # (with generous slack for the tiny training budget).
        assert binary_gap <= fine_gap + 0.15
        assert binary_high >= 0.5

    def test_make_only_mapper_reduces_class_count(self, cars_dataset):
        dataset, spec = cars_dataset
        view = dataset.with_label_mapper(make_only_mapper(spec.n_coarse_groups))
        labels = {sample.label for sample in view}
        assert len(labels) <= spec.n_coarse_groups


class TestStorageIntegration:
    def test_pcr_partial_reads_on_simulated_cluster(self, pcr_dataset):
        """Store PCR records as cluster objects and compare simulated read time
        for scan group 1 vs the full records.

        The tiny test records are inflated so that transfer time, not the
        per-operation setup cost, dominates — the regime the paper's cluster
        operates in (megabyte-scale records on a bandwidth-bound store).
        """
        from repro.storage.device import SSD_PROFILE

        inflation = 64
        cluster = StorageCluster(n_osds=3, profile=SSD_PROFILE, stripe_bytes=1 << 18)
        for name in pcr_dataset.record_names:
            path = pcr_dataset.reader.directory / name
            cluster.put_object(name, path.read_bytes() * inflation)

        def epoch_latency(scan_group):
            total = 0.0
            for name in pcr_dataset.record_names:
                length = pcr_dataset.reader.bytes_for_group(name, scan_group) * inflation
                _, latency = cluster.read_object(name, length=length)
                total += latency
            return total

        low = epoch_latency(1)
        full = epoch_latency(10)
        assert full > 1.5 * low

    def test_static_tuner_then_training(self, pcr_dataset):
        """Static tuning picks a group; training on it still converges."""
        report = StaticTuner(pcr_dataset, sample_limit=4).analyze()
        group = report.recommended_group
        pcr_dataset.set_scan_group(group)
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=10, n_workers=1, seed=5))
        trainer = Trainer(
            LinearProbe(n_classes=4, input_size=32), SGD(learning_rate=0.2, momentum=0.9)
        )
        trainer.fit(loader, n_epochs=12)
        accuracy = trainer.evaluate(loader)
        pcr_dataset.set_scan_group(pcr_dataset.n_groups)
        assert accuracy > 0.3  # clearly above the 0.25 chance level


class TestSimulatorCalibration:
    def test_measured_sizes_drive_published_shape(self, pcr_dataset):
        """Feed measured per-group byte sizes into the cluster simulator and
        check the headline claim: roughly 2x speedup at half the bytes."""
        n_samples = len(pcr_dataset)
        sizes = {
            group: total / n_samples for group, total in pcr_dataset.epoch_bytes_by_group().items()
        }
        # Rescale to ImageNet-like absolute sizes (110 kB at full quality) so the
        # published bandwidth/compute numbers apply.
        scale = 110_000 / sizes[10]
        scaled = {group: size * scale for group, size in sizes.items()}
        simulator = TrainingSimulator(ClusterSpec.paper_shufflenet(), n_train_images=1_281_167)
        speedups = simulator.speedup_table(scaled)
        assert speedups[10] == pytest.approx(1.0)
        # Some group roughly halves the bytes; its speedup should be ~1.5-2.1x.
        halfish = min(scaled, key=lambda g: abs(scaled[g] - 55_000))
        assert 1.3 < speedups[halfish] <= 2.2
