"""Differential suite for the batched float32 forward (encode) path.

The forward twin of ``tests/test_codecs_pixelpath.py``: the fused
RGB→YCbCr+level-shift matmul, strided 4:2:0 downsample, and fused
quantize+forward-DCT sgemm must match the scalar float64 reference within
the documented error budget (at most ±1 quant step, at a rate at most
``MAX_MISMATCH_RATE``, with decoded-image PSNR at least
``MIN_PARITY_PSNR_DB`` — see :mod:`repro.codecs.encodepath`).  Everything
*past* the forward transform — entropy coding, batch encoding, the
:class:`~repro.codecs.parallel.EncodePool`, streamed conversion — is exact
and is pinned to equality here.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.codecs import config as codec_config
from repro.codecs.baseline import BaselineCodec
from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.encodepath import MAX_MISMATCH_RATE, MIN_PARITY_PSNR_DB
from repro.codecs.image import ImageBuffer
from repro.codecs.markers import SUBSAMPLING_420, SUBSAMPLING_NONE
from repro.codecs.parallel import EncodePool
from repro.codecs.progressive import (
    ProgressiveCodec,
    ScanScript,
    decode_coefficients,
    decode_progressive_batch,
    encode_progressive_batch,
    image_to_coefficients,
)
from repro.codecs.transcode import transcode_to_progressive
from repro.obs import get_registry


def _test_image(rng: np.random.Generator, height: int, width: int, color: bool) -> ImageBuffer:
    """Structured-plus-noise content: smooth gradients with texture, so both
    low- and high-frequency coefficients (and rounding ties) get exercised."""
    yy, xx = np.mgrid[0:height, 0:width]
    base = 96.0 + 48.0 * np.sin(yy / 9.0) + 52.0 * np.cos(xx / 7.0)
    if color:
        channels = [base, np.flipud(base), base.T[:height, :width] if base.T.shape == (height, width) else np.fliplr(base)]
        stacked = np.stack(channels, axis=-1)
        noise = rng.normal(0.0, 14.0, size=(height, width, 3))
    else:
        stacked = base
        noise = rng.normal(0.0, 14.0, size=(height, width))
    return ImageBuffer(np.clip(stacked + noise, 0, 255).astype(np.uint8))


def _psnr(a: np.ndarray, b: np.ndarray) -> float:
    mse = float(np.mean((a.astype(np.float64) - b.astype(np.float64)) ** 2))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)


def _assert_plane_parity(fast, scalar) -> None:
    """Coefficient planes agree within the documented ±1-step budget.

    ``MAX_MISMATCH_RATE`` is a *corpus* rate (enforced exactly by
    ``test_mismatch_rate_over_corpus``); a single small image gets 4x
    slack plus an absolute floor so Poisson noise on a few thousand
    coefficients can't flake the per-config checks.
    """
    assert len(fast.planes) == len(scalar.planes)
    total = 0
    mismatched = 0
    for fast_plane, scalar_plane in zip(fast.planes, scalar.planes):
        assert fast_plane.shape == scalar_plane.shape
        delta = np.abs(fast_plane.astype(np.int64) - scalar_plane.astype(np.int64))
        assert int(delta.max(initial=0)) <= 1
        total += delta.size
        mismatched += int(np.count_nonzero(delta))
    assert mismatched <= max(8, int(total * 4 * MAX_MISMATCH_RATE))


class TestForwardParity:
    """Fused forward transform vs the scalar float64 reference."""

    @pytest.mark.parametrize("height,width", [(64, 64), (61, 47), (17, 24), (128, 96)])
    @pytest.mark.parametrize("subsampling", [SUBSAMPLING_420, SUBSAMPLING_NONE])
    @pytest.mark.parametrize("quality", [50, 90])
    def test_color_planes(self, height, width, subsampling, quality):
        image = _test_image(np.random.default_rng(height * width), height, width, True)
        with codec_config.use_fastpath(True):
            fast = image_to_coefficients(image, quality, subsampling)
        with codec_config.use_fastpath(False):
            scalar = image_to_coefficients(image, quality, subsampling)
        _assert_plane_parity(fast, scalar)

    @pytest.mark.parametrize("height,width", [(64, 64), (61, 47), (8, 8), (9, 25)])
    def test_grayscale_planes(self, height, width):
        image = _test_image(np.random.default_rng(height + width), height, width, False)
        with codec_config.use_fastpath(True):
            fast = image_to_coefficients(image, 90)
        with codec_config.use_fastpath(False):
            scalar = image_to_coefficients(image, 90)
        assert fast.header.subsampling == SUBSAMPLING_NONE
        _assert_plane_parity(fast, scalar)

    def test_mismatch_rate_over_corpus(self):
        """The off-by-one *rate* across a corpus stays within budget."""
        rng = np.random.default_rng(7)
        total = 0
        mismatched = 0
        for index in range(12):
            image = _test_image(rng, 48 + index, 56 + 3 * index, index % 3 != 0)
            with codec_config.use_fastpath(True):
                fast = image_to_coefficients(image, 75)
            with codec_config.use_fastpath(False):
                scalar = image_to_coefficients(image, 75)
            for fp, sp in zip(fast.planes, scalar.planes):
                delta = np.abs(fp.astype(np.int64) - sp.astype(np.int64))
                assert int(delta.max(initial=0)) <= 1
                total += delta.size
                mismatched += int(np.count_nonzero(delta))
        assert mismatched / total <= MAX_MISMATCH_RATE

    def test_decode_psnr_across_scan_groups(self):
        """Decodes of the two encodes agree to >= MIN_PARITY_PSNR_DB at
        every scan-prefix depth (every scan group serves equivalent pixels)."""
        image = _test_image(np.random.default_rng(11), 72, 88, True)
        with codec_config.use_fastpath(True):
            fast_stream = ProgressiveCodec(quality=90).encode(image)
        with codec_config.use_fastpath(False):
            scalar_stream = ProgressiveCodec(quality=90).encode(image)
        n_scans = len(ScanScript.default_for(3).scans)
        with codec_config.use_fastpath(True):
            for max_scans in list(range(1, n_scans + 1)) + [None]:
                fast_image, scalar_image = decode_progressive_batch(
                    [fast_stream, scalar_stream], max_scans=max_scans
                )
                assert _psnr(fast_image.pixels, scalar_image.pixels) >= MIN_PARITY_PSNR_DB


class TestEntropyStage:
    """Past the forward transform everything is exact."""

    def test_entropy_bytes_identical_given_same_planes(self):
        """Scalar vs vectorized entropy coders emit identical streams for
        identical coefficient planes (a large image exercises the
        write_many_array >=256-item dispatch)."""
        from repro.codecs.progressive import encode_coefficients

        image = _test_image(np.random.default_rng(3), 160, 200, True)
        with codec_config.use_fastpath(False):
            coefficients = image_to_coefficients(image, 90)
            scalar_stream = encode_coefficients(coefficients, ScanScript.default_for(3))
        with codec_config.use_fastpath(True):
            fast_stream = encode_coefficients(coefficients, ScanScript.default_for(3))
        assert scalar_stream == fast_stream

    @pytest.mark.parametrize("seed", range(4))
    def test_write_many_array_differential(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4000))
        widths = rng.integers(1, 25, size=n).astype(np.int64)
        values = np.array(
            [int(rng.integers(0, 1 << w)) for w in widths], dtype=np.int64
        )
        reference = BitWriter()
        vectorized = BitWriter()
        # Pre-seed both with unaligned bits so the pending-bit fold runs.
        lead = int(rng.integers(0, 8))
        reference.write_bits((1 << lead) - 1, lead)
        vectorized.write_bits((1 << lead) - 1, lead)
        reference.write_many(values.tolist(), widths.tolist())
        vectorized.write_many_array(values, widths)
        # Continue writing after the batch: accumulator state must match.
        reference.write_bits(0b101, 3)
        vectorized.write_bits(0b101, 3)
        assert reference.getvalue() == vectorized.getvalue()

    def test_write_many_array_multi_slice(self, monkeypatch):
        """Force several internal slices (incl. off-byte-boundary refolds)."""
        monkeypatch.setattr(BitWriter, "_PACK_SLICE_BITS", 1 << 10)
        rng = np.random.default_rng(99)
        widths = rng.integers(1, 13, size=5000).astype(np.int64)
        values = np.array(
            [int(rng.integers(0, 1 << w)) for w in widths], dtype=np.int64
        )
        reference = BitWriter()
        reference.write_many(values.tolist(), widths.tolist())
        vectorized = BitWriter()
        vectorized.write_many_array(values, widths)
        assert reference.getvalue() == vectorized.getvalue()
        reader = BitReader(vectorized.getvalue())
        for value, width in zip(values.tolist(), widths.tolist()):
            assert reader.read_bits(int(width)) == value


class TestBatchEncode:
    """encode_progressive_batch: batching is pure buffer reuse."""

    def _images(self):
        rng = np.random.default_rng(5)
        return [
            _test_image(rng, 48, 64, True),
            _test_image(rng, 61, 47, True),
            _test_image(rng, 33, 40, False),
            _test_image(rng, 64, 64, True),
        ]

    def test_batch_matches_single_image_encodes(self):
        images = self._images()
        with codec_config.use_fastpath(True):
            batch = encode_progressive_batch(images)
            singles = [ProgressiveCodec(quality=90).encode(image) for image in images]
        assert batch == singles

    def test_sequential_layout_matches_baseline_codec(self):
        images = self._images()
        with codec_config.use_fastpath(True):
            batch = encode_progressive_batch(images, layout="sequential")
            singles = [BaselineCodec(quality=90).encode(image) for image in images]
        assert batch == singles

    def test_pcr_layout_matches_baseline_transcode(self):
        images = self._images()
        with codec_config.use_fastpath(True):
            batch = encode_progressive_batch(images, layout="pcr")
            singles = [
                transcode_to_progressive(BaselineCodec(quality=90).encode(image))
                for image in images
            ]
        assert batch == singles

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="unknown encode layout"):
            encode_progressive_batch(self._images()[:1], layout="interleaved")

    def test_codec_encode_batch_methods(self):
        images = self._images()
        with codec_config.use_fastpath(True):
            assert ProgressiveCodec(quality=90).encode_batch(images) == [
                ProgressiveCodec(quality=90).encode(image) for image in images
            ]
            assert BaselineCodec(quality=90).encode_batch(images) == [
                BaselineCodec(quality=90).encode(image) for image in images
            ]

    def test_ingest_metrics_emitted(self):
        registry = get_registry()
        registry.reset()
        images = self._images()
        with codec_config.use_fastpath(True):
            streams = encode_progressive_batch(images)
        assert registry.counter("ingest.images_total").value == len(images)
        assert registry.counter("ingest.pixel_bytes_total").value == sum(
            image.pixels.nbytes for image in images
        )
        assert registry.counter("ingest.encoded_bytes_total").value == sum(
            len(stream) for stream in streams
        )
        assert registry.histogram("ingest.encode_batch_seconds").count == 1


class TestEncodePool:
    """EncodePool output is identical to in-process fast-path encoding."""

    def _images(self):
        rng = np.random.default_rng(13)
        return [
            _test_image(rng, 64, 96, True),
            _test_image(rng, 61, 47, True),
            _test_image(rng, 33, 40, False),
            _test_image(rng, 96, 96, True),
            _test_image(rng, 40, 56, False),
            _test_image(rng, 80, 48, True),
        ]

    @pytest.mark.parametrize("layout", ["progressive", "pcr"])
    def test_pool_matches_inprocess(self, layout):
        images = self._images()
        with codec_config.use_fastpath(True):
            expected = encode_progressive_batch(images, layout=layout)
        with EncodePool(2) as pool:
            assert pool.encode_batch(images, layout=layout) == expected
            assert pool.stats.parallel_batches == 1
            assert pool.stats.images_encoded == len(images)

    def test_inprocess_pool_under_scalar_toggle(self):
        """n_workers<=1 pools pin the fast path even when the caller has the
        scalar reference enabled globally — same contract as DecodePool."""
        images = self._images()[:2]
        with codec_config.use_fastpath(True):
            expected = encode_progressive_batch(images)
        with codec_config.use_fastpath(False):
            with EncodePool(1) as pool:
                assert pool.encode_batch(images) == expected

    def test_dead_fleet_falls_back_in_process(self):
        images = self._images()
        with codec_config.use_fastpath(True):
            expected = encode_progressive_batch(images)
        with EncodePool(2) as pool:
            state = pool._state
            for worker in state.workers:
                worker.terminate()
            for worker in state.workers:
                worker.join()
            state.respawn = False  # pin the fallback path deterministically
            assert pool.encode_batch(images) == expected
            assert pool.stats.fallback_batches >= 1

    def test_mid_batch_worker_kill_recovers(self):
        images = self._images() * 3
        with codec_config.use_fastpath(True):
            expected = encode_progressive_batch(images)
        with EncodePool(2) as pool:
            state = pool._state

            def assassin():
                time.sleep(0.01)
                for worker in list(state.workers):
                    if worker.is_alive():
                        worker.terminate()

            killer = threading.Thread(target=assassin)
            killer.start()
            out = pool.encode_batch(images)
            killer.join()
            assert out == expected
            # Whether the assassin won the race or not, the streams match;
            # a lost fleet must have been restarted for the next batch.
            assert pool.encode_batch(images[:2]) == expected[:2]

    def test_closed_pool_encodes_in_process(self):
        images = self._images()[:2]
        with codec_config.use_fastpath(True):
            expected = encode_progressive_batch(images)
        pool = EncodePool(2)
        pool.close()
        assert pool.encode_batch(images) == expected


class TestStreamingConversion:
    """convert_to_pcr peak memory is bounded by chunk_size, not dataset size."""

    def test_chunked_streaming_bounds_pulls(self, tmp_path, monkeypatch):
        import repro.core.convert as convert_mod

        rng = np.random.default_rng(2)
        n_samples, chunk_size = 10, 4
        pulled = 0

        def samples():
            nonlocal pulled
            for index in range(n_samples):
                pulled += 1
                yield (f"img-{index}", _test_image(rng, 40, 48, True), index % 3)

        pulls_at_encode: list[int] = []
        batch_sizes: list[int] = []
        real_encode = convert_mod.encode_progressive_batch

        def probing_encode(images, **kwargs):
            pulls_at_encode.append(pulled)
            batch_sizes.append(len(images))
            return real_encode(images, **kwargs)

        monkeypatch.setattr(convert_mod, "encode_progressive_batch", probing_encode)
        result, report = convert_mod.convert_to_pcr(
            samples(), tmp_path / "pcr", images_per_record=4, chunk_size=chunk_size
        )
        # The first encode ran after exactly one chunk was pulled — the
        # whole dataset was never materialized.
        assert pulls_at_encode[0] == chunk_size
        assert all(size <= chunk_size for size in batch_sizes)
        assert sum(batch_sizes) == n_samples
        assert result.n_samples == n_samples
        assert report.n_images == n_samples
        assert report.n_chunks == 3
        assert report.images_per_second > 0.0

    def test_writer_pending_stays_bounded(self, tmp_path):
        from repro.core.writer import PCRWriter

        writer = PCRWriter(tmp_path / "pcr", images_per_record=3)
        rng = np.random.default_rng(4)
        with codec_config.use_fastpath(True):
            for index in range(8):
                writer.add_sample(f"img-{index}", _test_image(rng, 24, 24, True), 0)
                assert writer.pending_samples < 3
        writer.finalize()

    def test_convert_with_pool_matches_serial(self, tmp_path):
        from repro.core.convert import convert_to_pcr

        rng = np.random.default_rng(6)
        images = [_test_image(rng, 40, 48, True) for _ in range(6)]
        serial_samples = [(f"img-{i}", image, 0) for i, image in enumerate(images)]
        with codec_config.use_fastpath(True):
            serial, _ = convert_to_pcr(
                serial_samples, tmp_path / "serial", images_per_record=4, chunk_size=3
            )
            pooled, report = convert_to_pcr(
                serial_samples,
                tmp_path / "pooled",
                images_per_record=4,
                chunk_size=3,
                encode_workers=2,
            )
        assert pooled.n_samples == serial.n_samples
        assert pooled.total_bytes == serial.total_bytes
        assert report.encode_workers == 2

    def test_conversion_chunk_metrics(self, tmp_path):
        from repro.core.convert import convert_to_pcr

        registry = get_registry()
        registry.reset()
        rng = np.random.default_rng(8)
        samples = [(f"img-{i}", _test_image(rng, 32, 32, True), 0) for i in range(5)]
        convert_to_pcr(samples, tmp_path / "pcr", chunk_size=2)
        assert registry.counter("ingest.chunks_total").value == 3
        assert registry.histogram("ingest.convert_encode_seconds").count == 3
        assert registry.histogram("ingest.convert_write_seconds").count == 3


def test_decode_coefficients_roundtrip_of_batch_stream():
    """A batch-encoded stream decodes to exactly its own coefficients."""
    image = _test_image(np.random.default_rng(21), 56, 72, True)
    with codec_config.use_fastpath(True):
        coefficients = image_to_coefficients(image, 90)
        stream = encode_progressive_batch([image])[0]
        decoded, n_scans = decode_coefficients(stream)
    assert n_scans == len(ScanScript.default_for(3).scans)
    for original, roundtripped in zip(coefficients.planes, decoded.planes):
        assert np.array_equal(original, roundtripped)
