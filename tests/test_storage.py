"""Tests for the simulated storage substrate: devices, cache, filesystem, cluster."""

from __future__ import annotations

import pytest

from repro.storage.cache import CachedDevice, PageCache
from repro.storage.cluster import StorageCluster
from repro.storage.device import HDD_PROFILE, MEMORY_PROFILE, SSD_PROFILE, BlockDevice, DeviceProfile
from repro.storage.filesystem import SimulatedFilesystem
from repro.storage.io_stats import IOStats


class TestDeviceProfile:
    def test_sequential_access_skips_seek(self):
        profile = DeviceProfile("test", bandwidth_bytes_per_second=1e6, seek_seconds=0.01)
        assert profile.access_time(1000, sequential=True) == pytest.approx(0.001)
        assert profile.access_time(1000, sequential=False) == pytest.approx(0.011)

    def test_hdd_seek_dominates_small_random_reads(self):
        small = 100 * 1024
        random_time = HDD_PROFILE.access_time(small, sequential=False)
        sequential_time = HDD_PROFILE.access_time(small, sequential=True)
        assert random_time > 10 * sequential_time

    def test_ssd_less_seek_sensitive_than_hdd(self):
        ratio_hdd = HDD_PROFILE.access_time(4096, False) / HDD_PROFILE.access_time(4096, True)
        ratio_ssd = SSD_PROFILE.access_time(4096, False) / SSD_PROFILE.access_time(4096, True)
        assert ratio_hdd > ratio_ssd


class TestBlockDevice:
    def test_write_read_roundtrip(self):
        device = BlockDevice(MEMORY_PROFILE)
        offset = device.allocate(11)
        device.write(offset, b"hello world")
        data, _ = device.read(offset, 11)
        assert data == b"hello world"

    def test_partial_read_of_extent(self):
        device = BlockDevice(MEMORY_PROFILE)
        offset = device.allocate(10)
        device.write(offset, b"0123456789")
        data, _ = device.read(offset, 4)
        assert data == b"0123"

    def test_read_spanning_extents(self):
        device = BlockDevice(MEMORY_PROFILE)
        first = device.allocate(4)
        device.write(first, b"abcd")
        second = device.allocate(4)
        device.write(second, b"efgh")
        data, _ = device.read(first, 8)
        assert data == b"abcdefgh"

    def test_sequential_reads_avoid_seeks(self):
        device = BlockDevice(HDD_PROFILE)
        offset = device.allocate(2048)
        device.write(offset, b"x" * 2048)
        device.reset_position()
        seeks_before = device.stats.seeks
        device.read(offset, 1024)
        device.read(offset + 1024, 1024)  # continues from previous position
        assert device.stats.seeks - seeks_before == 1  # only the first read seeks

    def test_random_reads_all_seek(self):
        device = BlockDevice(HDD_PROFILE)
        offsets = []
        for _ in range(4):
            offset = device.allocate(512)
            device.write(offset, b"y" * 512)
            offsets.append(offset)
        device.reset_position()
        seeks_before = device.stats.seeks
        for offset in reversed(offsets):
            device.read(offset, 512)
        assert device.stats.seeks - seeks_before == 4

    def test_out_of_space(self):
        device = BlockDevice(MEMORY_PROFILE, capacity_bytes=100)
        with pytest.raises(IOError):
            device.allocate(101)

    def test_clock_advances(self):
        device = BlockDevice(HDD_PROFILE)
        offset = device.allocate(1 << 20)
        device.write(offset, b"z" * (1 << 20))
        before = device.clock_seconds
        device.read(offset, 1 << 20)
        assert device.clock_seconds > before


class TestIOStats:
    def test_throughput(self):
        stats = IOStats()
        stats.record_read(1000, 0.5, seek=True)
        stats.record_read(1000, 0.5, seek=False)
        assert stats.read_throughput_bytes_per_second() == pytest.approx(2000.0)
        assert stats.seeks == 1
        assert stats.mean_latency == pytest.approx(0.5)

    def test_reset(self):
        stats = IOStats()
        stats.record_write(10, 0.1, seek=True)
        stats.reset()
        assert stats.bytes_written == 0
        assert stats.busy_seconds == 0.0
        assert stats.per_op_latencies == []


class TestPageCache:
    def test_hit_and_miss_accounting(self):
        cache = PageCache(capacity_bytes=4 * 4096)
        assert cache.lookup(0) is None
        cache.insert(0, b"p" * 4096)
        assert cache.lookup(0) is not None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        cache = PageCache(capacity_bytes=2 * 4096)
        cache.insert(0, b"a")
        cache.insert(1, b"b")
        cache.lookup(0)  # page 0 becomes most recently used
        cache.insert(2, b"c")  # evicts page 1
        assert cache.lookup(1) is None
        assert cache.lookup(0) is not None

    def test_zero_capacity_never_caches(self):
        cache = PageCache(capacity_bytes=0)
        cache.insert(0, b"x")
        assert len(cache) == 0


class TestCachedDevice:
    def _device_with_file(self):
        device = BlockDevice(SSD_PROFILE)
        offset = device.allocate(64 * 1024)
        device.write(offset, bytes(range(256)) * 256)
        return CachedDevice(device, cache_bytes=1 << 20), offset

    def test_cached_reread_is_faster(self):
        cached, offset = self._device_with_file()
        _, first_latency = cached.read(offset, 16 * 1024)
        _, second_latency = cached.read(offset, 16 * 1024)
        assert second_latency < first_latency / 10

    def test_direct_io_bypasses_cache(self):
        cached, offset = self._device_with_file()
        cached.read(offset, 8192, direct_io=True)
        assert cached.cache.hits == 0
        assert len(cached.cache) == 0

    def test_cached_data_matches_device(self):
        cached, offset = self._device_with_file()
        direct, _ = cached.read(offset, 4096, direct_io=True)
        via_cache, _ = cached.read(offset, 4096)
        assert direct == via_cache

    def test_write_invalidates_cache(self):
        cached, offset = self._device_with_file()
        cached.read(offset, 4096)
        cached.write(offset, b"\xff" * 4096)
        data, _ = cached.read(offset, 4096)
        assert data == b"\xff" * 4096


class TestSimulatedFilesystem:
    def test_write_and_read_file(self):
        filesystem = SimulatedFilesystem(BlockDevice(MEMORY_PROFILE))
        filesystem.write_file("a.rec", b"payload")
        data, _ = filesystem.read_file("a.rec")
        assert data == b"payload"
        assert filesystem.file_size("a.rec") == 7

    def test_prefix_read(self):
        filesystem = SimulatedFilesystem(BlockDevice(MEMORY_PROFILE))
        filesystem.write_file("rec", b"0123456789")
        data, _ = filesystem.read_file("rec", length=4)
        assert data == b"0123"

    def test_duplicate_name_rejected(self):
        filesystem = SimulatedFilesystem(BlockDevice(MEMORY_PROFILE))
        filesystem.write_file("x", b"1")
        with pytest.raises(FileExistsError):
            filesystem.write_file("x", b"2")

    def test_missing_file(self):
        filesystem = SimulatedFilesystem(BlockDevice(MEMORY_PROFILE))
        with pytest.raises(FileNotFoundError):
            filesystem.read_file("nope")

    def test_scattered_files_cost_more_to_read_than_one_record(self):
        # File-per-Image (many small scattered files) vs one contiguous record
        # holding the same bytes: the record wins on an HDD.
        payload = b"i" * (64 * 1024)
        scattered_fs = SimulatedFilesystem(BlockDevice(HDD_PROFILE), scatter_stride_bytes=1 << 20)
        record_fs = SimulatedFilesystem(BlockDevice(HDD_PROFILE))
        for index in range(16):
            scattered_fs.write_file(f"img-{index}", payload)
        record_fs.write_file("record", payload * 16)
        scattered_fs.device.reset_position()
        record_fs.device.reset_position()
        scattered_time = sum(scattered_fs.read_file(f"img-{i}")[1] for i in range(16))
        _, record_time = record_fs.read_file("record")
        assert scattered_time > 2 * record_time


class TestStorageCluster:
    def test_put_and_read_object(self):
        cluster = StorageCluster(n_osds=3, stripe_bytes=1024)
        payload = bytes(range(256)) * 20  # 5120 bytes -> 5 stripes
        cluster.put_object("record-0", payload)
        data, latency = cluster.read_object("record-0")
        assert data == payload
        assert latency > 0

    def test_prefix_read_touches_fewer_stripes(self):
        cluster = StorageCluster(n_osds=4, stripe_bytes=1024)
        cluster.put_object("obj", b"s" * 8192)
        full, full_latency = cluster.read_object("obj")
        prefix, prefix_latency = cluster.read_object("obj", length=1024)
        assert len(prefix) == 1024
        assert prefix_latency <= full_latency
        assert cluster.mds_lookups == 2

    def test_striping_spreads_across_osds(self):
        cluster = StorageCluster(n_osds=4, stripe_bytes=512)
        cluster.put_object("obj", b"t" * 4096)
        location = cluster._objects["obj"]
        used_osds = {osd for osd, _, _ in location.stripes}
        assert len(used_osds) == 4

    def test_aggregate_bandwidth(self):
        cluster = StorageCluster(n_osds=5)
        per_osd = cluster.osds[0].profile.bandwidth_bytes_per_second
        assert cluster.aggregate_bandwidth_bytes_per_second() == pytest.approx(5 * per_osd)

    def test_duplicate_object_rejected(self):
        cluster = StorageCluster(n_osds=2)
        cluster.put_object("a", b"1")
        with pytest.raises(FileExistsError):
            cluster.put_object("a", b"2")

    def test_missing_object(self):
        cluster = StorageCluster(n_osds=2)
        with pytest.raises(FileNotFoundError):
            cluster.read_object("missing")

    def test_empty_object(self):
        cluster = StorageCluster(n_osds=2)
        cluster.put_object("empty", b"")
        data, _ = cluster.read_object("empty")
        assert data == b""


class TestDeterministicPlacement:
    """OSD placement must not depend on PYTHONHASHSEED (reproducible latencies)."""

    def test_placement_matches_crc32(self):
        import zlib

        from repro.storage.cluster import placement_osd

        for name in ("record-00000.pcr", "record-00041.pcr", "obj", ""):
            assert placement_osd(name, 5) == zlib.crc32(name.encode("utf-8")) % 5

    def test_identical_clusters_place_identically(self):
        payloads = {f"record-{i:05d}.pcr": bytes([i % 251]) * (1500 + 700 * i) for i in range(12)}

        def build() -> StorageCluster:
            cluster = StorageCluster(n_osds=4, stripe_bytes=1024)
            for name, data in sorted(payloads.items()):
                cluster.put_object(name, data)
            return cluster

        first, second = build(), build()
        for name in payloads:
            assert first._objects[name].stripes == second._objects[name].stripes
        # Simulated read latencies are therefore reproducible run to run.
        for name in payloads:
            _, latency_a = first.read_object(name)
            _, latency_b = second.read_object(name)
            assert latency_a == pytest.approx(latency_b)
