"""Tests for the sharded serving cluster: map, views, coordinator, client, e2e."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.errors import PCRError
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.serving import protocol
from repro.serving.cluster import (
    ClusterClient,
    ClusterCoordinator,
    ShardMap,
    ShardViewReader,
    ShardedRemoteRecordSource,
    default_shard_ids,
)


@pytest.fixture(scope="module")
def cluster(pcr_dataset):
    """A 4-shard x 2-replica cluster over the shared session dataset."""
    with ClusterCoordinator(
        pcr_dataset.reader.directory, n_shards=4, n_replicas=2
    ) as running:
        yield running


# -- shard map ----------------------------------------------------------------


class TestShardMap:
    def _map(self, n_shards: int = 4, n_replicas: int = 2) -> ShardMap:
        return ShardMap(
            {
                shard_id: [("127.0.0.1", 9000 + 10 * i + j) for j in range(n_replicas)]
                for i, shard_id in enumerate(default_shard_ids(n_shards))
            }
        )

    def test_routing_is_deterministic(self):
        first, second = self._map(), self._map()
        for i in range(50):
            name = f"record-{i:05d}.pcr"
            assert first.shard_for(name) == second.shard_for(name)
            assert first.owners(name) == second.owners(name)

    def test_owners_are_the_owning_shards_replicas(self):
        shard_map = self._map(n_shards=3, n_replicas=3)
        for i in range(20):
            name = f"record-{i:05d}.pcr"
            owners = shard_map.owners(name)
            assert len(owners) == 3
            assert {o.shard_id for o in owners} == {shard_map.shard_for(name)}
            assert sorted(o.replica_index for o in owners) == [0, 1, 2]

    def test_replica_preference_rotates_across_records(self):
        shard_map = self._map(n_shards=2, n_replicas=3)
        preferred = {
            shard_map.owners(f"record-{i:05d}.pcr")[0].replica_index for i in range(60)
        }
        assert preferred == {0, 1, 2}  # load spreads over replicas

    def test_partition_covers_every_record_once(self):
        shard_map = self._map()
        names = [f"record-{i:05d}.pcr" for i in range(40)]
        parts = shard_map.partition(names)
        assert sorted(name for part in parts.values() for name in part) == names
        for shard_id, part in parts.items():
            assert all(shard_map.shard_for(name) == shard_id for name in part)

    def test_topology_change_is_incremental(self):
        names = [f"record-{i:05d}.pcr" for i in range(200)]
        four, five = self._map(4), self._map(5)
        moved = four.moved_records(five, names)
        assert 0 < len(moved) < len(names) // 2

    def test_rejects_empty_topologies(self):
        with pytest.raises(ValueError):
            ShardMap({})
        with pytest.raises(ValueError):
            ShardMap({"shard-0": []})


# -- shard-filtered view ------------------------------------------------------


class TestShardViewReader:
    def test_view_restricts_to_owned_records(self, pcr_dataset):
        reader = pcr_dataset.reader
        names = reader.record_names
        owned, foreign = names[:2], names[2]
        view = ShardViewReader(reader, owned, "shard-x")
        assert view.record_names == sorted(owned)
        assert view.n_samples == sum(reader.record_index(n).n_samples for n in owned)
        assert view.read_record_bytes(owned[0], 1) == reader.read_record_bytes(owned[0], 1)
        with pytest.raises(PCRError, match="not owned"):
            view.read_record_bytes(foreign, 1)
        with pytest.raises(PCRError, match="not owned"):
            view.record_index(foreign)

    def test_view_meta_carries_shard_id(self, pcr_dataset):
        view = ShardViewReader(pcr_dataset.reader, pcr_dataset.record_names[:1], "shard-7")
        assert view.dataset_meta["shard_id"] == "shard-7"

    def test_view_rejects_unknown_assignment(self, pcr_dataset):
        with pytest.raises(PCRError, match="missing from the dataset"):
            ShardViewReader(pcr_dataset.reader, ["no-such-record.pcr"], "shard-0")


# -- coordinator --------------------------------------------------------------


class TestClusterCoordinator:
    def test_topology_matches_request(self, cluster):
        shard_map = cluster.shard_map
        assert shard_map.n_shards == 4
        for shard_id in shard_map.shard_ids:
            assert len(shard_map.replicas(shard_id)) == 2
        assert len(cluster.live_replicas()) == 8

    def test_assignment_partitions_the_dataset(self, cluster, pcr_dataset):
        assigned = [
            name for shard_id in cluster.shard_map.shard_ids
            for name in cluster.assignment(shard_id)
        ]
        assert sorted(assigned) == pcr_dataset.record_names

    def test_wrong_shard_returns_not_found(self, cluster, pcr_dataset):
        """A record routed to a non-owning shard must fail loudly."""
        shard_map = cluster.shard_map
        name = pcr_dataset.record_names[0]
        owner = shard_map.shard_for(name)
        other = next(s for s in shard_map.shard_ids if s != owner)
        from repro.serving.client import PCRClient

        replica = shard_map.replicas(other)[0]
        with PCRClient(host=replica.host, port=replica.port) as direct:
            with pytest.raises(protocol.RemoteError) as info:
                direct.get_record_bytes(name, 1)
        assert info.value.code == protocol.ERR_NOT_FOUND

    def test_stats_aggregate_per_shard(self, cluster):
        stats = cluster.stats()
        assert set(stats["shards"]) == set(cluster.shard_map.shard_ids)
        assert stats["cluster"]["total_replicas"] == 8
        assert stats["topology"]["n_shards"] == 4

    def test_stop_restart_replica_cycle(self, pcr_dataset):
        with ClusterCoordinator(
            pcr_dataset.reader.directory, n_shards=2, n_replicas=2
        ) as small:
            shard_id = small.shard_map.shard_ids[0]
            port = small.shard_map.replicas(shard_id)[0].port
            small.stop_replica(shard_id, 0)
            assert len(small.live_replicas()) == 3
            assert small.stats()["shards"][shard_id]["replicas"]["0"] == {"running": False}
            small.restart_replica(shard_id, 0)
            assert len(small.live_replicas()) == 4
            assert small.shard_map.replicas(shard_id)[0].port == port
            restarted = small.stats()["shards"][shard_id]["replicas"]["0"]
            assert restarted["running"] and restarted["restarts"] == 1

    def test_drain_and_restart_shard(self, pcr_dataset):
        with ClusterCoordinator(
            pcr_dataset.reader.directory, n_shards=2, n_replicas=2
        ) as small:
            shard_id = small.shard_map.shard_ids[1]
            small.drain_shard(shard_id)
            live_shards = {replica.shard_id for replica in small.live_replicas()}
            assert shard_id not in live_shards
            small.restart_shard(shard_id)
            assert len(small.live_replicas()) == 4


# -- cluster client -----------------------------------------------------------


class TestClusterClient:
    def test_records_match_local_reader(self, cluster, pcr_dataset):
        reader = pcr_dataset.reader
        with ClusterClient(cluster.shard_map) as client:
            for name in reader.record_names:
                for group in (1, reader.n_groups):
                    assert client.get_record_bytes(name, group) == (
                        reader.read_record_bytes(name, group)
                    )

    def test_batch_spans_shards_in_request_order(self, cluster, pcr_dataset):
        reader = pcr_dataset.reader
        names = reader.record_names
        requests = [(name, 1 + (i % reader.n_groups)) for i, name in enumerate(names)]
        with ClusterClient(cluster.shard_map) as client:
            blobs = client.get_record_batch(requests)
        assert len(blobs) == len(requests)
        for (name, group), blob in zip(requests, blobs):
            assert blob == reader.read_record_bytes(name, group)

    def test_dataset_meta_reaggregates_the_whole_dataset(self, cluster, pcr_dataset):
        with ClusterClient(cluster.shard_map) as client:
            meta = client.dataset_meta()
        assert meta["record_names"] == pcr_dataset.record_names
        assert meta["n_samples"] == len(pcr_dataset)
        assert meta["n_groups"] == pcr_dataset.n_groups
        assert meta["n_shards"] == 4
        assert "shard_id" not in meta["dataset"]

    def test_get_index_routes_to_owner(self, cluster, pcr_dataset):
        name = pcr_dataset.record_names[0]
        with ClusterClient(cluster.shard_map) as client:
            assert client.get_index(name) == pcr_dataset.reader.record_index(name)

    def test_semantic_errors_do_not_fail_over(self, cluster):
        with ClusterClient(cluster.shard_map) as client:
            with pytest.raises(protocol.RemoteError):
                client.get_record_bytes("no-such-record.pcr", 1)
            assert client.failovers == 0

    def test_failover_to_replica_on_dead_primary(self, pcr_dataset):
        reader = pcr_dataset.reader
        with ClusterCoordinator(
            reader.directory, n_shards=2, n_replicas=2
        ) as small:
            with ClusterClient(small.shard_map, cooldown_seconds=30.0) as client:
                # Kill exactly the replica the map prefers for one record, so
                # fetching that record is guaranteed to exercise failover.
                shard_id = max(
                    small.shard_map.shard_ids, key=lambda s: len(small.assignment(s))
                )
                name = small.assignment(shard_id)[0]
                preferred = small.shard_map.owners(name)[0]
                small.stop_replica(preferred.shard_id, preferred.replica_index)
                assert client.get_record_bytes(name, 1) == (
                    reader.read_record_bytes(name, 1)
                )
                assert client.failovers > 0
                stats = client.stats()
                assert stats["client"]["failovers"] == client.failovers
                reachable = [
                    replica["reachable"]
                    for replica in stats["shards"][shard_id]["replicas"].values()
                ]
                assert reachable.count(False) == 1

    def test_all_replicas_down_raises_connection_error(self, pcr_dataset):
        with ClusterCoordinator(
            pcr_dataset.reader.directory, n_shards=2, n_replicas=1
        ) as small:
            shard_id = small.shard_map.shard_ids[0]
            names = small.assignment(shard_id)
            small.drain_shard(shard_id)
            with ClusterClient(
                small.shard_map, failover_rounds=2, backoff_seconds=0.01
            ) as client:
                with pytest.raises(ConnectionError, match="every replica"):
                    client.get_record_bytes(names[0], 1)


# -- end-to-end: the acceptance-criteria scenario -----------------------------


class TestShardedRemoteRecordSource:
    def test_epoch_byte_identical_at_two_scan_groups(self, cluster, pcr_dataset):
        """4x2 cluster serves a full DataLoader epoch byte-identical to a
        direct PCRReader read, at two different scan groups."""
        # One worker: record processing order (and so batch order) is
        # deterministic, making remote and local epochs comparable 1:1.
        config = LoaderConfig(batch_size=8, n_workers=1, shuffle=False, seed=123)
        try:
            with ShardedRemoteRecordSource(shard_map=cluster.shard_map) as source:
                for group in (pcr_dataset.n_groups, 1):
                    source.set_scan_group(group)
                    pcr_dataset.set_scan_group(group)
                    remote = list(DataLoader(source, config).epoch())
                    local = list(DataLoader(pcr_dataset, config).epoch())
                    assert len(remote) == len(local) > 0
                    for mine, theirs in zip(remote, local):
                        assert np.array_equal(mine.images, theirs.images)
                        assert np.array_equal(mine.labels, theirs.labels)
        finally:
            pcr_dataset.set_scan_group(pcr_dataset.n_groups)

    def test_parallel_decode_epoch_byte_identical(self, cluster, pcr_dataset):
        """Cluster fetch + DecodePool workers: network saturation and all
        local cores, still byte-identical to a direct in-process read."""
        remote_config = LoaderConfig(
            batch_size=8, n_workers=1, shuffle=False, seed=123, decode_workers=2
        )
        local_config = LoaderConfig(batch_size=8, n_workers=1, shuffle=False, seed=123)
        with ShardedRemoteRecordSource(shard_map=cluster.shard_map) as source:
            remote_loader = DataLoader(source, remote_config)
            try:
                remote = list(remote_loader.epoch())
                pool = remote_loader._decode_pool
                assert pool is not None and pool.stats.parallel_batches > 0
            finally:
                remote_loader.close()
            local = list(DataLoader(pcr_dataset, local_config).epoch())
        assert len(remote) == len(local) > 0
        for mine, theirs in zip(remote, local):
            assert np.array_equal(mine.images, theirs.images)
            assert np.array_equal(mine.labels, theirs.labels)

    def test_raw_bytes_match_direct_reader(self, cluster, pcr_dataset):
        reader = pcr_dataset.reader
        with ShardedRemoteRecordSource(shard_map=cluster.shard_map, decode=False) as src:
            for group in (1, reader.n_groups):
                src.set_scan_group(group)
                for name in reader.record_names:
                    remote = src.read_record(name, decode=False)
                    local = reader.read_record(name, group, decode=False)
                    assert [s.stream for s in remote] == [s.stream for s in local]

    def test_runtime_scan_group_switch_changes_epoch_bytes(self, cluster, pcr_dataset):
        with ShardedRemoteRecordSource(shard_map=cluster.shard_map) as source:
            source.set_scan_group(pcr_dataset.n_groups)
            high = source.epoch_bytes()
            source.set_scan_group(1)
            low = source.epoch_bytes()
        assert low < high
        assert low == pcr_dataset.reader.dataset_bytes_for_group(1)

    def test_epoch_survives_mid_epoch_shard_kill(self, tmp_path, tiny_samples):
        """The acceptance scenario: one shard replica dies mid-epoch and the
        epoch still completes, rerouted to the surviving replica."""
        from repro.core.dataset import PCRDataset

        dataset = PCRDataset.build(
            tiny_samples, tmp_path, images_per_record=2, quality=90
        )
        n_samples = len(dataset)
        dataset.close()
        with ClusterCoordinator(tmp_path, n_shards=4, n_replicas=2) as doomed:
            with ShardedRemoteRecordSource(shard_map=doomed.shard_map) as source:
                # One slow worker, no shuffle: records are read in sorted
                # order and the worker runs at most a couple of records ahead
                # of consumption.  Killing the replica preferred for the
                # *last* record right after the first batch guarantees the
                # kill lands mid-epoch, before that record is fetched.
                config = LoaderConfig(
                    batch_size=2, n_workers=1, prefetch_batches=1,
                    shuffle=False, seed=5,
                )
                last_record = sorted(source.record_names)[-1]
                victim = doomed.shard_map.owners(last_record)[0]
                killed = threading.Event()
                batches = []
                for batch in DataLoader(source, config).epoch():
                    batches.append(batch)
                    if not killed.is_set():
                        doomed.stop_replica(victim.shard_id, victim.replica_index)
                        killed.set()
                assert killed.is_set()
                assert sum(batch.images.shape[0] for batch in batches) == n_samples
                assert source.cluster_client.failovers > 0
                stats = source.cluster_stats()
                assert stats["client"]["failovers"] > 0

    def test_requires_map_or_client(self):
        with pytest.raises(ValueError, match="shard_map or a cluster_client"):
            ShardedRemoteRecordSource()
