"""Tests for bit I/O, Huffman coding, and run-length symbol coding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.huffman import HuffmanTable
from repro.codecs.rle import (
    EOB_SYMBOL,
    ZRL_SYMBOL,
    ac_band_symbols,
    dc_symbols,
    decode_magnitude,
    magnitude_bits,
    magnitude_category,
    read_ac_band,
    read_dc_values,
    write_symbols,
)


class TestBitIO:
    def test_roundtrip_bits(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0b1, 1)
        writer.write_bits(0b000111, 6)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bit() == 1
        assert reader.read_bits(6) == 0b000111

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.getvalue() == b""

    def test_padding_with_ones(self):
        writer = BitWriter()
        writer.write_bits(0b1, 1)
        assert writer.getvalue() == bytes([0b10111111 | 0b01111111 & 0xFF]) or writer.getvalue()[0] & 0x7F == 0x7F

    def test_value_too_large_raises(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_reader_eof(self):
        reader = BitReader(b"")
        assert reader.exhausted
        with pytest.raises(EOFError):
            reader.read_bit()

    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16)), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, pairs):
        writer = BitWriter()
        clipped = [(value % (1 << bits), bits) for value, bits in pairs]
        for value, bits in clipped:
            writer.write_bits(value, bits)
        reader = BitReader(writer.getvalue())
        for value, bits in clipped:
            assert reader.read_bits(bits) == value

    def test_peek_does_not_consume(self):
        reader = BitReader(bytes([0b10110001, 0b01000000]))
        assert reader.peek_bits(4) == 0b1011
        assert reader.peek_bits(4) == 0b1011
        assert reader.read_bits(4) == 0b1011
        assert reader.peek_bits(8) == 0b00010100

    def test_peek_past_end_pads_with_ones(self):
        reader = BitReader(bytes([0b10100000]))
        assert reader.peek_bits(16) == (0b10100000 << 8) | 0xFF

    def test_skip_bits(self):
        reader = BitReader(bytes([0b11001010, 0b11110000]))
        reader.skip_bits(3)
        assert reader.read_bits(5) == 0b01010
        assert reader.bits_remaining() == 8
        with pytest.raises(EOFError):
            reader.skip_bits(9)

    def test_bits_remaining_and_exhausted(self):
        reader = BitReader(b"\xab")
        assert reader.bits_remaining() == 8
        assert not reader.exhausted
        reader.read_bits(8)
        assert reader.bits_remaining() == 0
        assert reader.exhausted

    def test_write_many_matches_write_bits(self):
        pairs = [(0b1, 1), (0b1011, 4), (0, 3), (0xFFFF, 16), (0b10, 2)]
        one_by_one = BitWriter()
        for value, width in pairs:
            one_by_one.write_bits(value, width)
        batched = BitWriter()
        batched.write_many(
            [value for value, _ in pairs], [width for _, width in pairs]
        )
        assert batched.getvalue() == one_by_one.getvalue()

    @given(st.lists(st.tuples(st.integers(0, 2**20 - 1), st.integers(1, 20)), max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_write_many_property(self, pairs):
        clipped = [(value % (1 << bits), bits) for value, bits in pairs]
        one_by_one = BitWriter()
        for value, width in clipped:
            one_by_one.write_bits(value, width)
        batched = BitWriter()
        batched.write_many(
            [value for value, _ in clipped], [width for _, width in clipped]
        )
        assert batched.getvalue() == one_by_one.getvalue()

    def test_large_stream_flushes_incrementally(self):
        writer = BitWriter()
        for index in range(4096):
            writer.write_bits(index & 0x7F, 7)
        data = writer.getvalue()
        assert len(data) == (4096 * 7 + 7) // 8
        reader = BitReader(data)
        for index in range(4096):
            assert reader.read_bits(7) == index & 0x7F


class TestHuffman:
    def test_single_symbol_table(self):
        table = HuffmanTable.from_symbols([7, 7, 7])
        writer = BitWriter()
        table.encode_symbol(7, writer)
        reader = BitReader(writer.getvalue())
        assert table.decode_symbol(reader) == 7

    def test_empty_symbol_list_gives_usable_table(self):
        table = HuffmanTable.from_symbols([])
        assert table.code_lengths

    def test_frequent_symbols_get_short_codes(self):
        symbols = [1] * 100 + [2] * 10 + [3]
        table = HuffmanTable.from_symbols(symbols)
        assert table.code_length(1) <= table.code_length(2) <= table.code_length(3)

    def test_roundtrip_many_symbols(self):
        import random

        rng = random.Random(0)
        symbols = [rng.randint(0, 40) for _ in range(500)]
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        for symbol in symbols:
            table.encode_symbol(symbol, writer)
        reader = BitReader(writer.getvalue())
        decoded = [table.decode_symbol(reader) for _ in symbols]
        assert decoded == symbols

    def test_serialization_roundtrip(self):
        table = HuffmanTable.from_symbols([0, 0, 1, 1, 1, 2, 3, 3, 3, 3, 4])
        payload = table.to_bytes()
        restored, consumed = HuffmanTable.from_bytes(payload + b"extra")
        assert consumed == len(payload)
        assert restored.code_lengths == table.code_lengths

    def test_unknown_symbol_raises(self):
        table = HuffmanTable.from_symbols([1, 2, 3])
        with pytest.raises(KeyError):
            table.encode_symbol(99, BitWriter())

    def test_truncated_payload_raises(self):
        with pytest.raises(ValueError):
            HuffmanTable.from_bytes(b"\x00\x01")

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, symbols):
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        for symbol in symbols:
            table.encode_symbol(symbol, writer)
        reader = BitReader(writer.getvalue())
        assert [table.decode_symbol(reader) for _ in symbols] == symbols

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_serialized_table_decodes_stream(self, symbols):
        table = HuffmanTable.from_symbols(symbols)
        restored, _ = HuffmanTable.from_bytes(table.to_bytes())
        writer = BitWriter()
        for symbol in symbols:
            table.encode_symbol(symbol, writer)
        reader = BitReader(writer.getvalue())
        assert [restored.decode_symbol(reader) for _ in symbols] == symbols

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_lut_decode_matches_dict_decode(self, symbols):
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        for symbol in symbols:
            table.encode_symbol(symbol, writer)
        data = writer.getvalue()
        dict_decoded = []
        reader = BitReader(data)
        for _ in symbols:
            dict_decoded.append(table.decode_symbol(reader))
        lut_decoded = []
        reader = BitReader(data)
        for _ in symbols:
            lut_decoded.append(table.decode_symbol_fast(reader))
        assert lut_decoded == dict_decoded == symbols

    def test_lut_rejects_invalid_prefix(self):
        # A single-symbol table assigns only code "0" (length 1); every bit
        # pattern starting with "1" hits an unfilled primary slot and must
        # be rejected, exactly as the dict probe rejects it.
        table = HuffmanTable(code_lengths={7: 1})
        with pytest.raises(ValueError, match="invalid Huffman code"):
            table.decode_symbol_fast(BitReader(b"\xff\xff"))
        with pytest.raises(ValueError, match="invalid Huffman code"):
            table.decode_symbol(BitReader(b"\xff\xff"))
        # A complete code (every prefix decodable) leaves no empty slots.
        complete = HuffmanTable.from_symbols([1, 1, 1, 2])
        lut, _ = complete.decode_tables()
        assert all(entry != 0 for entry in lut)

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_from_counts_matches_from_symbols(self, symbols):
        from collections import Counter

        by_symbols = HuffmanTable.from_symbols(symbols)
        by_counts = HuffmanTable.from_counts(Counter(symbols))
        assert by_symbols.code_lengths == by_counts.code_lengths

    def test_from_counts_ignores_zero_counts(self):
        table = HuffmanTable.from_counts({1: 5, 2: 0, 3: 2})
        assert set(table.code_lengths) == {1, 3}

    def test_from_counts_empty_and_singleton(self):
        assert HuffmanTable.from_counts({}).code_lengths == {0: 1}
        assert HuffmanTable.from_counts({9: 4}).code_lengths == {9: 1}

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_encode_symbols_matches_encode_symbol(self, symbols):
        table = HuffmanTable.from_symbols(symbols)
        extras = [(0, 0)] * len(symbols)
        one_by_one = BitWriter()
        for symbol in symbols:
            table.encode_symbol(symbol, one_by_one)
        batched = BitWriter()
        table.encode_symbols(symbols, extras, batched)
        assert batched.getvalue() == one_by_one.getvalue()

    def test_encode_symbols_unknown_symbol_raises(self):
        table = HuffmanTable.from_symbols([1, 2, 3])
        with pytest.raises(KeyError):
            table.encode_symbols([99], [(0, 0)], BitWriter())

    def test_cached_from_bytes_returns_equivalent_table(self):
        table = HuffmanTable.from_symbols([0, 0, 1, 1, 1, 2, 3, 3, 3, 3, 4])
        payload = table.to_bytes()
        first, consumed_first = HuffmanTable.cached_from_bytes(payload + b"tail")
        second, consumed_second = HuffmanTable.cached_from_bytes(payload + b"liat")
        assert consumed_first == consumed_second == len(payload)
        assert first.code_lengths == table.code_lengths
        assert first is second  # served from the payload cache


class TestMagnitudeCoding:
    def test_categories(self):
        assert magnitude_category(0) == 0
        assert magnitude_category(1) == 1
        assert magnitude_category(-1) == 1
        assert magnitude_category(255) == 8
        assert magnitude_category(-128) == 8

    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 7, -7, 31, -31, 1000, -1000])
    def test_magnitude_roundtrip(self, value):
        category = magnitude_category(value)
        bits = magnitude_bits(value, category)
        assert decode_magnitude(bits, category) == value

    @given(st.integers(-(2**14), 2**14))
    @settings(max_examples=100, deadline=None)
    def test_magnitude_roundtrip_property(self, value):
        category = magnitude_category(value)
        assert decode_magnitude(magnitude_bits(value, category), category) == value


class TestRunLengthCoding:
    def test_dc_roundtrip(self):
        values = [10, 12, 12, 8, -3, 0, 5]
        symbols, extras = dc_symbols(values)
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        write_symbols(symbols, extras, table, writer)
        reader = BitReader(writer.getvalue())
        assert read_dc_values(reader, table, len(values)) == values

    def test_ac_band_roundtrip(self):
        band = [0, 5, 0, 0, -2, 0, 0, 0, 0, 0, 1, 0, 0]
        symbols, extras = ac_band_symbols(band)
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        write_symbols(symbols, extras, table, writer)
        reader = BitReader(writer.getvalue())
        assert read_ac_band(reader, table, len(band)) == band

    def test_all_zero_band_is_single_eob(self):
        symbols, extras = ac_band_symbols([0] * 20)
        assert symbols == [EOB_SYMBOL]
        assert extras == [(0, 0)]

    def test_long_zero_run_uses_zrl(self):
        band = [0] * 20 + [3]
        symbols, _ = ac_band_symbols(band)
        assert ZRL_SYMBOL in symbols

    def test_trailing_nonzero_has_no_eob(self):
        band = [0, 0, 4]
        symbols, _ = ac_band_symbols(band)
        assert symbols[-1] != EOB_SYMBOL

    @given(st.lists(st.integers(-300, 300), min_size=1, max_size=63))
    @settings(max_examples=60, deadline=None)
    def test_ac_band_roundtrip_property(self, band):
        symbols, extras = ac_band_symbols(band)
        table = HuffmanTable.from_symbols(symbols if symbols else [EOB_SYMBOL])
        writer = BitWriter()
        write_symbols(symbols, extras, table, writer)
        reader = BitReader(writer.getvalue())
        assert read_ac_band(reader, table, len(band)) == band

    @given(st.lists(st.integers(-2000, 2000), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_dc_roundtrip_property(self, values):
        symbols, extras = dc_symbols(values)
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        write_symbols(symbols, extras, table, writer)
        reader = BitReader(writer.getvalue())
        assert read_dc_values(reader, table, len(values)) == values


class TestSuperscalarTables:
    """Structural invariants of the lazily built superscalar pair/walk LUTs."""

    @staticmethod
    def _table():
        # Skewed AC-style symbol mix so the code has short and long codes.
        symbols = (
            [EOB_SYMBOL] * 120
            + [0x11] * 60
            + [0x21] * 25
            + [0x12] * 10
            + [ZRL_SYMBOL] * 4
            + [0x53, 0x04, 0x81]
        )
        return HuffmanTable.from_symbols(symbols)

    def test_pair_table_shapes(self):
        import numpy as np
        from repro.codecs.huffman import SUPER_BITS

        tables = self._table().scan_tables()
        ac_pair, dc_pair = tables.superscalar_tables()
        assert len(ac_pair) == 2 << SUPER_BITS
        assert len(dc_pair) == 2 << SUPER_BITS
        slots1, slots2, pairbits = tables.walk_tables()
        assert len(slots1) == len(slots2) == len(pairbits) == 1 << SUPER_BITS
        assert slots1.dtype == np.int32
        assert slots2.dtype == np.int32
        assert pairbits.dtype == np.uint8
        # The walk slots are the de-interleaved AC pair table.
        interleaved = np.frombuffer(bytes(ac_pair), dtype=np.int32)
        assert np.array_equal(slots1, interleaved[0::2])
        assert np.array_equal(slots2, interleaved[1::2])

    def test_pairbits_is_sum_of_fitting_consumes(self):
        import numpy as np

        slots1, slots2, pairbits = self._table().scan_tables().walk_tables()
        valid = slots1 > 0
        # Stride of one walk step == first consume + second consume (when a
        # second symbol fit); escape windows (invalid prefix / fallback)
        # must have stride 0 so the walk stalls and the scalar path takes
        # over at exactly that bit offset.
        expected = (slots1 & 31) + np.where(slots2 != 0, slots2 & 31, 0)
        assert np.array_equal(pairbits[valid], expected[valid].astype(np.uint8))
        assert not pairbits[~valid].any()
        # A second symbol never appears without a committed first symbol,
        # and a committed pair always fits the probe window.
        assert not slots2[~valid].any()

    def test_pair_windows_fit_in_window(self):
        from repro.codecs.huffman import SUPER_BITS

        slots1, slots2, pairbits = self._table().scan_tables().walk_tables()
        assert int(pairbits.max()) <= SUPER_BITS

    def test_deep_code_table_builds_fallback_windows(self):
        import numpy as np

        # A complete canonical code with 16-bit leaves: windows whose first
        # code + magnitude exceed the probe width must carry the -1
        # fallback sentinel with a zero stride, not crash the build.
        lengths = {}
        symbols = iter(range(1, 250))
        for length in range(1, 15):
            lengths[next(symbols)] = length
        lengths[next(symbols)] = 15
        lengths[next(symbols)] = 16
        lengths[next(symbols)] = 16
        table = HuffmanTable(code_lengths=lengths)
        slots1, slots2, pairbits = table.scan_tables().walk_tables()
        fallback = slots1 == -1
        assert fallback.any()
        assert not pairbits[fallback].any()
        assert not slots2[fallback].any()
        assert np.all(slots1[slots1 > 0] < (1 << 29))


class TestHuffmanTableCaches:
    """Byte-bounded LRU caches behind the table build path."""

    def test_super_build_recharges_lut_cache(self):
        from repro.codecs.huffman import SUPER_TABLE_NBYTES, _TABLE_CACHE
        from repro.obs import get_registry

        # A code-length set no other test uses, so the first build is cold.
        table = HuffmanTable(
            code_lengths={0x00: 1, 0xA3: 2, 0xB7: 3, 0xC9: 4, 0xD1: 4}
        )
        tables = table.scan_tables()
        gauge = get_registry().gauge("codec.table_cache.luts.bytes")
        before = gauge.value
        assert before == _TABLE_CACHE.resident_bytes
        tables.superscalar_tables()
        assert gauge.value == before + SUPER_TABLE_NBYTES
        # The lazy build runs once; further calls return the cached arrays.
        tables.walk_tables()
        assert gauge.value == before + SUPER_TABLE_NBYTES

    def test_cached_from_bytes_hits_payload_cache(self):
        from repro.obs import get_registry

        table = HuffmanTable(
            code_lengths={0x00: 1, 0x15: 2, 0x2A: 3, 0x3F: 4, 0x4B: 4}
        )
        payload = table.to_bytes()
        registry = get_registry()
        first, consumed = HuffmanTable.cached_from_bytes(payload + b"tail")
        hits_before = registry.counter(
            "codec.table_cache.payload.hits_total"
        ).value
        second, consumed2 = HuffmanTable.cached_from_bytes(payload)
        assert second is first
        assert consumed == consumed2 == len(payload)
        assert (
            registry.counter("codec.table_cache.payload.hits_total").value
            == hits_before + 1
        )

    def test_lru_eviction_respects_byte_budget(self):
        from repro.codecs.huffman import _LRUByteCache

        cache = _LRUByteCache("testonly", max_bytes=100)
        cache.put("a", 1, 40)
        cache.put("b", 2, 40)
        cache.put("c", 3, 40)
        assert cache.resident_bytes <= 100
        assert len(cache) == 2
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("c") == 3

    def test_lru_keeps_most_recent_even_over_budget(self):
        from repro.codecs.huffman import _LRUByteCache

        cache = _LRUByteCache("testonly", max_bytes=10)
        cache.put("big", 1, 500)
        assert len(cache) == 1
        assert cache.get("big") == 1

    def test_recharge_grows_accounting_and_can_evict(self):
        from repro.codecs.huffman import _LRUByteCache

        cache = _LRUByteCache("testonly", max_bytes=100)
        cache.put("a", 1, 30)
        cache.put("b", 2, 30)
        cache.recharge("b", 60)
        assert cache.resident_bytes <= 100
        assert cache.get("a") is None  # pushed out by the recharge
        assert cache.get("b") == 2
        cache.recharge("missing", 10)  # evicted/unknown keys are a no-op
        assert cache.resident_bytes == 90

    def test_from_bytes_rejects_count_mismatch(self):
        table = HuffmanTable.from_symbols([1, 2, 3, 4])
        payload = bytearray(table.to_bytes())
        payload[0] += 1  # claim one more symbol than the counts describe
        with pytest.raises(ValueError):
            HuffmanTable.from_bytes(bytes(payload) + b"\x00")

    def test_from_bytes_rejects_duplicate_symbols(self):
        table = HuffmanTable.from_symbols([1, 1, 2, 2, 3])
        payload = bytearray(table.to_bytes())
        payload[-1] = payload[-2]  # repeat a symbol in the symbol list
        with pytest.raises(ValueError):
            HuffmanTable.from_bytes(bytes(payload))
