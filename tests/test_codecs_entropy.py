"""Tests for bit I/O, Huffman coding, and run-length symbol coding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.huffman import HuffmanTable
from repro.codecs.rle import (
    EOB_SYMBOL,
    ZRL_SYMBOL,
    ac_band_symbols,
    dc_symbols,
    decode_magnitude,
    magnitude_bits,
    magnitude_category,
    read_ac_band,
    read_dc_values,
    write_symbols,
)


class TestBitIO:
    def test_roundtrip_bits(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0b1, 1)
        writer.write_bits(0b000111, 6)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bit() == 1
        assert reader.read_bits(6) == 0b000111

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.getvalue() == b""

    def test_padding_with_ones(self):
        writer = BitWriter()
        writer.write_bits(0b1, 1)
        assert writer.getvalue() == bytes([0b10111111 | 0b01111111 & 0xFF]) or writer.getvalue()[0] & 0x7F == 0x7F

    def test_value_too_large_raises(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_reader_eof(self):
        reader = BitReader(b"")
        assert reader.exhausted
        with pytest.raises(EOFError):
            reader.read_bit()

    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16)), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, pairs):
        writer = BitWriter()
        clipped = [(value % (1 << bits), bits) for value, bits in pairs]
        for value, bits in clipped:
            writer.write_bits(value, bits)
        reader = BitReader(writer.getvalue())
        for value, bits in clipped:
            assert reader.read_bits(bits) == value


class TestHuffman:
    def test_single_symbol_table(self):
        table = HuffmanTable.from_symbols([7, 7, 7])
        writer = BitWriter()
        table.encode_symbol(7, writer)
        reader = BitReader(writer.getvalue())
        assert table.decode_symbol(reader) == 7

    def test_empty_symbol_list_gives_usable_table(self):
        table = HuffmanTable.from_symbols([])
        assert table.code_lengths

    def test_frequent_symbols_get_short_codes(self):
        symbols = [1] * 100 + [2] * 10 + [3]
        table = HuffmanTable.from_symbols(symbols)
        assert table.code_length(1) <= table.code_length(2) <= table.code_length(3)

    def test_roundtrip_many_symbols(self):
        import random

        rng = random.Random(0)
        symbols = [rng.randint(0, 40) for _ in range(500)]
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        for symbol in symbols:
            table.encode_symbol(symbol, writer)
        reader = BitReader(writer.getvalue())
        decoded = [table.decode_symbol(reader) for _ in symbols]
        assert decoded == symbols

    def test_serialization_roundtrip(self):
        table = HuffmanTable.from_symbols([0, 0, 1, 1, 1, 2, 3, 3, 3, 3, 4])
        payload = table.to_bytes()
        restored, consumed = HuffmanTable.from_bytes(payload + b"extra")
        assert consumed == len(payload)
        assert restored.code_lengths == table.code_lengths

    def test_unknown_symbol_raises(self):
        table = HuffmanTable.from_symbols([1, 2, 3])
        with pytest.raises(KeyError):
            table.encode_symbol(99, BitWriter())

    def test_truncated_payload_raises(self):
        with pytest.raises(ValueError):
            HuffmanTable.from_bytes(b"\x00\x01")

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, symbols):
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        for symbol in symbols:
            table.encode_symbol(symbol, writer)
        reader = BitReader(writer.getvalue())
        assert [table.decode_symbol(reader) for _ in symbols] == symbols

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_serialized_table_decodes_stream(self, symbols):
        table = HuffmanTable.from_symbols(symbols)
        restored, _ = HuffmanTable.from_bytes(table.to_bytes())
        writer = BitWriter()
        for symbol in symbols:
            table.encode_symbol(symbol, writer)
        reader = BitReader(writer.getvalue())
        assert [restored.decode_symbol(reader) for _ in symbols] == symbols


class TestMagnitudeCoding:
    def test_categories(self):
        assert magnitude_category(0) == 0
        assert magnitude_category(1) == 1
        assert magnitude_category(-1) == 1
        assert magnitude_category(255) == 8
        assert magnitude_category(-128) == 8

    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 7, -7, 31, -31, 1000, -1000])
    def test_magnitude_roundtrip(self, value):
        category = magnitude_category(value)
        bits = magnitude_bits(value, category)
        assert decode_magnitude(bits, category) == value

    @given(st.integers(-(2**14), 2**14))
    @settings(max_examples=100, deadline=None)
    def test_magnitude_roundtrip_property(self, value):
        category = magnitude_category(value)
        assert decode_magnitude(magnitude_bits(value, category), category) == value


class TestRunLengthCoding:
    def test_dc_roundtrip(self):
        values = [10, 12, 12, 8, -3, 0, 5]
        symbols, extras = dc_symbols(values)
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        write_symbols(symbols, extras, table, writer)
        reader = BitReader(writer.getvalue())
        assert read_dc_values(reader, table, len(values)) == values

    def test_ac_band_roundtrip(self):
        band = [0, 5, 0, 0, -2, 0, 0, 0, 0, 0, 1, 0, 0]
        symbols, extras = ac_band_symbols(band)
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        write_symbols(symbols, extras, table, writer)
        reader = BitReader(writer.getvalue())
        assert read_ac_band(reader, table, len(band)) == band

    def test_all_zero_band_is_single_eob(self):
        symbols, extras = ac_band_symbols([0] * 20)
        assert symbols == [EOB_SYMBOL]
        assert extras == [(0, 0)]

    def test_long_zero_run_uses_zrl(self):
        band = [0] * 20 + [3]
        symbols, _ = ac_band_symbols(band)
        assert ZRL_SYMBOL in symbols

    def test_trailing_nonzero_has_no_eob(self):
        band = [0, 0, 4]
        symbols, _ = ac_band_symbols(band)
        assert symbols[-1] != EOB_SYMBOL

    @given(st.lists(st.integers(-300, 300), min_size=1, max_size=63))
    @settings(max_examples=60, deadline=None)
    def test_ac_band_roundtrip_property(self, band):
        symbols, extras = ac_band_symbols(band)
        table = HuffmanTable.from_symbols(symbols if symbols else [EOB_SYMBOL])
        writer = BitWriter()
        write_symbols(symbols, extras, table, writer)
        reader = BitReader(writer.getvalue())
        assert read_ac_band(reader, table, len(band)) == band

    @given(st.lists(st.integers(-2000, 2000), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_dc_roundtrip_property(self, values):
        symbols, extras = dc_symbols(values)
        table = HuffmanTable.from_symbols(symbols)
        writer = BitWriter()
        write_symbols(symbols, extras, table, writer)
        reader = BitReader(writer.getvalue())
        assert read_dc_values(reader, table, len(values)) == values
