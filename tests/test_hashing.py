"""Determinism tests for the shared placement hashing module.

Golden values are pinned: placement must never drift across processes,
Python versions, or refactors, because both the storage simulator's OSD
placement and the serving cluster's shard routing are derived from it —
a drift would silently re-shard every deployed dataset.
"""

from __future__ import annotations

import zlib

import pytest

from repro.common.hashing import ConsistentHashRing, placement_index, stable_hash
from repro.storage.cluster import placement_osd

GOLDEN_HASHES = {
    "record-00000.pcr": 3425165456,
    "record-00041.pcr": 1792445238,
    "obj": 1181144172,
    "": 0,
}


class TestStableHash:
    def test_golden_values(self):
        for name, expected in GOLDEN_HASHES.items():
            assert stable_hash(name) == expected

    def test_matches_crc32(self):
        for name in GOLDEN_HASHES:
            assert stable_hash(name) == zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF

    def test_placement_index_golden(self):
        assert placement_index("record-00000.pcr", 5) == 1
        assert placement_index("record-00041.pcr", 5) == 3
        assert placement_index("obj", 5) == 2
        assert placement_index("", 5) == 0

    def test_placement_index_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            placement_index("x", 0)

    def test_storage_placement_delegates_to_shared_module(self):
        """`placement_osd` and `placement_index` are one implementation."""
        for name in ("record-00000.pcr", "record-00041.pcr", "obj", ""):
            for n in (1, 2, 5, 16):
                assert placement_osd(name, n) == placement_index(name, n)


class TestConsistentHashRing:
    def test_golden_routing(self):
        ring = ConsistentHashRing([f"shard-{i}" for i in range(4)], vnode_factor=64)
        assert ring.node_for("record-00000.pcr") == "shard-0"
        assert ring.node_for("record-00007.pcr") == "shard-1"
        assert ring.node_for("alpha") == "shard-0"
        assert ring.node_for("beta") == "shard-3"
        assert ring.nodes_for("record-00007.pcr", 3) == ["shard-1", "shard-2", "shard-3"]

    def test_identical_rings_route_identically(self):
        nodes = [f"shard-{i}" for i in range(5)]
        first = ConsistentHashRing(nodes, vnode_factor=32)
        second = ConsistentHashRing(nodes, vnode_factor=32)
        for i in range(100):
            key = f"record-{i:05d}.pcr"
            assert first.node_for(key) == second.node_for(key)
            assert first.nodes_for(key, 2) == second.nodes_for(key, 2)

    def test_nodes_for_starts_with_owner_and_is_distinct(self):
        ring = ConsistentHashRing(["a", "b", "c"], vnode_factor=16)
        for key in ("k1", "k2", "k3", "k4"):
            failover = ring.nodes_for(key, 3)
            assert failover[0] == ring.node_for(key)
            assert sorted(failover) == ["a", "b", "c"]

    def test_nodes_for_caps_at_ring_size(self):
        ring = ConsistentHashRing(["a", "b"], vnode_factor=8)
        assert len(ring.nodes_for("k", 10)) == 2

    def test_topology_change_moves_few_keys(self):
        """Adding one shard to four moves ~1/5 of keys, never a majority."""
        keys = [f"record-{i:05d}.pcr" for i in range(200)]
        four = ConsistentHashRing([f"shard-{i}" for i in range(4)], vnode_factor=64)
        five = ConsistentHashRing([f"shard-{i}" for i in range(5)], vnode_factor=64)
        moved = sum(1 for key in keys if four.node_for(key) != five.node_for(key))
        assert moved == 36  # pinned: deterministic, and well under flat rehash (~80%)
        # Keys that stay must keep their exact owner.
        for key in keys:
            if four.node_for(key) == five.node_for(key):
                assert five.node_for(key) in four.nodes

    def test_share_covers_all_keys(self):
        ring = ConsistentHashRing([f"shard-{i}" for i in range(4)], vnode_factor=64)
        keys = [f"record-{i:05d}.pcr" for i in range(200)]
        share = ring.share(keys)
        assert sum(share.values()) == len(keys)
        assert all(count > 0 for count in share.values())

    def test_rejects_empty_and_duplicate_nodes(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a", "a"])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], vnode_factor=0)
