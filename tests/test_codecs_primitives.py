"""Tests for the low-level codec primitives: colour, blocks, DCT, zigzag, quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import blocks as blocks_mod
from repro.codecs import color, dct, quantization, zigzag


class TestColor:
    def test_rgb_ycbcr_roundtrip_is_identity(self):
        rng = np.random.default_rng(0)
        rgb = rng.uniform(0, 255, size=(16, 16, 3))
        back = color.ycbcr_to_rgb(color.rgb_to_ycbcr(rgb))
        assert np.allclose(back, rgb, atol=1e-8)

    def test_gray_pixel_maps_to_zero_chroma(self):
        rgb = np.full((4, 4, 3), 117.0)
        ycc = color.rgb_to_ycbcr(rgb)
        assert np.allclose(ycc[..., 0], 117.0)
        assert np.allclose(ycc[..., 1], 128.0)
        assert np.allclose(ycc[..., 2], 128.0)

    def test_luma_weights_sum_to_one(self):
        white = np.full((2, 2, 3), 255.0)
        ycc = color.rgb_to_ycbcr(white)
        assert np.allclose(ycc[..., 0], 255.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            color.rgb_to_ycbcr(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            color.ycbcr_to_rgb(np.zeros((4, 4, 2)))

    def test_subsample_halves_dimensions(self):
        channel = np.arange(64, dtype=float).reshape(8, 8)
        sub = color.subsample_420(channel)
        assert sub.shape == (4, 4)

    def test_subsample_handles_odd_dimensions(self):
        channel = np.ones((7, 5))
        sub = color.subsample_420(channel)
        assert sub.shape == (4, 3)
        assert np.allclose(sub, 1.0)

    def test_subsample_is_local_average(self):
        channel = np.array([[0.0, 2.0], [4.0, 6.0]])
        assert color.subsample_420(channel)[0, 0] == pytest.approx(3.0)

    def test_upsample_restores_shape(self):
        channel = np.random.default_rng(1).uniform(size=(4, 4))
        up = color.upsample_420(channel, 8, 8)
        assert up.shape == (8, 8)

    def test_upsample_crops_to_odd_target(self):
        channel = np.ones((4, 4))
        up = color.upsample_420(channel, 7, 5)
        assert up.shape == (7, 5)

    def test_constant_channel_roundtrips_through_subsampling(self):
        channel = np.full((10, 10), 42.0)
        up = color.upsample_420(color.subsample_420(channel), 10, 10)
        assert np.allclose(up, 42.0)


class TestBlocks:
    def test_split_shape(self):
        channel = np.zeros((16, 24))
        split = blocks_mod.split_into_blocks(channel)
        assert split.shape == (2, 3, 8, 8)

    def test_split_pads_non_multiples(self):
        channel = np.zeros((9, 10))
        split = blocks_mod.split_into_blocks(channel)
        assert split.shape == (2, 2, 8, 8)

    def test_padding_replicates_edges(self):
        channel = np.arange(9.0)[:, None] * np.ones((1, 9))
        padded = blocks_mod.pad_to_block_multiple(channel)
        assert padded.shape == (16, 16)
        assert np.allclose(padded[9:, :9], channel[-1, :])

    def test_merge_inverts_split(self):
        rng = np.random.default_rng(2)
        channel = rng.uniform(size=(20, 30))
        blocks = blocks_mod.split_into_blocks(channel)
        merged = blocks_mod.merge_blocks(blocks, 20, 30)
        assert np.allclose(merged, channel)

    def test_block_grid_shape(self):
        assert blocks_mod.block_grid_shape(8, 8) == (1, 1)
        assert blocks_mod.block_grid_shape(9, 8) == (2, 1)
        assert blocks_mod.block_grid_shape(17, 25) == (3, 4)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_split_merge_roundtrip_property(self, height, width):
        rng = np.random.default_rng(height * 100 + width)
        channel = rng.uniform(0, 255, size=(height, width))
        blocks = blocks_mod.split_into_blocks(channel)
        merged = blocks_mod.merge_blocks(blocks, height, width)
        assert np.allclose(merged, channel)


class TestDCT:
    def test_forward_inverse_roundtrip(self):
        rng = np.random.default_rng(3)
        blocks = rng.uniform(0, 255, size=(4, 4, 8, 8))
        coefficients = dct.forward_dct_blocks(blocks)
        back = dct.inverse_dct_blocks(coefficients)
        assert np.allclose(back, blocks, atol=1e-9)

    def test_constant_block_has_only_dc(self):
        block = np.full((1, 8, 8), 200.0)
        coefficients = dct.forward_dct_blocks(block)
        assert abs(coefficients[0, 0, 0] - (200.0 - 128.0) * 8.0) < 1e-9
        assert np.allclose(coefficients[0].ravel()[1:], 0.0, atol=1e-9)

    def test_dc_coefficient_is_shifted_mean_times_eight(self):
        rng = np.random.default_rng(4)
        block = rng.uniform(0, 255, size=(1, 8, 8))
        coefficients = dct.forward_dct_blocks(block)
        assert coefficients[0, 0, 0] == pytest.approx((block.mean() - 128.0) * 8.0)

    def test_rejects_non_8x8_blocks(self):
        with pytest.raises(ValueError):
            dct.forward_dct_blocks(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            dct.inverse_dct_blocks(np.zeros((2, 7, 7)))

    def test_energy_preserved(self):
        rng = np.random.default_rng(5)
        blocks = rng.uniform(0, 255, size=(3, 8, 8))
        coefficients = dct.forward_dct_blocks(blocks)
        assert np.sum(coefficients**2) == pytest.approx(np.sum((blocks - 128.0) ** 2))


class TestZigzag:
    def test_order_covers_all_indices(self):
        assert sorted(zigzag.ZIGZAG_ORDER.tolist()) == list(range(64))

    def test_order_starts_with_low_frequencies(self):
        # First entries: DC, then (0,1), (1,0), (2,0), (1,1), (0,2)...
        assert zigzag.ZIGZAG_ORDER[0] == 0
        assert set(zigzag.ZIGZAG_ORDER[:3].tolist()) == {0, 1, 8}

    def test_last_entry_is_highest_frequency(self):
        assert zigzag.ZIGZAG_ORDER[-1] == 63

    def test_roundtrip(self):
        rng = np.random.default_rng(6)
        blocks = rng.integers(-100, 100, size=(5, 8, 8))
        zz = zigzag.blocks_to_zigzag(blocks)
        back = zigzag.zigzag_to_blocks(zz)
        assert np.array_equal(back, blocks)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            zigzag.blocks_to_zigzag(np.zeros((4, 7, 8)))
        with pytest.raises(ValueError):
            zigzag.zigzag_to_blocks(np.zeros((4, 63)))


class TestQuantization:
    def test_quality_scale_factor_extremes(self):
        assert quantization.quality_scale_factor(50) == pytest.approx(100.0)
        assert quantization.quality_scale_factor(100) == pytest.approx(0.0)
        assert quantization.quality_scale_factor(1) == pytest.approx(5000.0)

    def test_quality_out_of_range(self):
        with pytest.raises(ValueError):
            quantization.quality_scale_factor(0)
        with pytest.raises(ValueError):
            quantization.quality_scale_factor(101)

    def test_higher_quality_gives_smaller_table_entries(self):
        q50 = quantization.scaled_table(quantization.BASE_LUMA_TABLE, 50)
        q90 = quantization.scaled_table(quantization.BASE_LUMA_TABLE, 90)
        assert (q90 <= q50).all()
        assert q90.min() >= 1.0

    def test_quality_100_table_is_all_ones(self):
        q100 = quantization.scaled_table(quantization.BASE_LUMA_TABLE, 100)
        assert np.allclose(q100, 1.0)

    def test_tables_serialize_roundtrip(self):
        tables = quantization.QuantizationTables.for_quality(83)
        restored = quantization.QuantizationTables.from_bytes(tables.to_bytes())
        assert restored.quality == 83
        assert np.array_equal(restored.luma, tables.luma)
        assert np.array_equal(restored.chroma, tables.chroma)

    def test_table_for_component(self):
        tables = quantization.QuantizationTables.for_quality(75)
        assert np.array_equal(tables.table_for_component(0), tables.luma)
        assert np.array_equal(tables.table_for_component(1), tables.chroma)
        assert np.array_equal(tables.table_for_component(2), tables.chroma)

    def test_quantize_dequantize_bounded_error(self):
        rng = np.random.default_rng(7)
        table = quantization.QuantizationTables.for_quality(90).luma
        coefficients = rng.uniform(-500, 500, size=(6, 8, 8))
        quantized = quantization.quantize(coefficients, table)
        restored = quantization.dequantize(quantized, table)
        assert np.max(np.abs(restored - coefficients)) <= table.max() / 2 + 1e-9

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            quantization.QuantizationTables.from_bytes(b"\x00" * 10)
