"""End-to-end tests of the PCR writer, reader, dataset view, and converters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.baseline import BaselineCodec
from repro.codecs.progressive import ProgressiveCodec
from repro.codecs.transcode import transcode_to_progressive
from repro.core.convert import build_static_copies, convert_to_pcr, reference_record_bytes
from repro.core.dataset import PCRDataset
from repro.core.errors import MissingSampleError, PCRError, ScanGroupError
from repro.core.reader import PCRReader
from repro.core.scan_groups import ScanGroupPolicy
from repro.core.writer import PCRWriter
from repro.metrics.psnr import mse


class TestWriterReader:
    def test_dataset_structure(self, pcr_dataset, tiny_samples):
        assert len(pcr_dataset) == len(tiny_samples)
        assert pcr_dataset.n_groups == 10
        assert len(pcr_dataset.record_names) == 3  # 20 samples / 8 per record

    def test_labels_preserved(self, pcr_dataset, tiny_samples):
        expected = {key: label for key, _, label in tiny_samples}
        for sample in pcr_dataset:
            assert sample.label == expected[sample.key]

    def test_epoch_bytes_monotone_in_group(self, pcr_dataset):
        by_group = pcr_dataset.epoch_bytes_by_group()
        sizes = [by_group[g] for g in sorted(by_group)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_scan_group_one_reads_far_fewer_bytes(self, pcr_dataset):
        by_group = pcr_dataset.epoch_bytes_by_group()
        assert by_group[10] / by_group[1] > 2.0  # the paper reports 2-10x

    def test_quality_improves_with_scan_group(self, pcr_dataset, tiny_samples):
        originals = {key: image for key, image, _ in tiny_samples}
        errors = {}
        for group in (1, 5, 10):
            pcr_dataset.set_scan_group(group)
            errors[group] = np.mean(
                [mse(originals[s.key], s.image) for s in pcr_dataset]
            )
        pcr_dataset.set_scan_group(10)
        assert errors[1] > errors[5] > errors[10]

    def test_bytes_read_accounting(self, tmp_path, tiny_samples):
        dataset = PCRDataset.build(tiny_samples[:8], tmp_path / "acct", images_per_record=8)
        dataset.set_scan_group(2)
        list(dataset)
        expected = dataset.reader.dataset_bytes_for_group(2)
        assert dataset.reader.stats.bytes_read == expected

    def test_read_sample_random_access(self, pcr_dataset, tiny_samples):
        key = tiny_samples[5][0]
        sample = pcr_dataset.reader.read_sample(key, scan_group=3)
        assert sample.key == key
        assert sample.image is not None

    def test_missing_sample_raises(self, pcr_dataset):
        with pytest.raises(MissingSampleError):
            pcr_dataset.reader.read_sample("does-not-exist", scan_group=1)

    def test_invalid_scan_group_raises(self, pcr_dataset):
        with pytest.raises(ScanGroupError):
            pcr_dataset.set_scan_group(0)
        with pytest.raises(ScanGroupError):
            pcr_dataset.set_scan_group(11)

    def test_decode_false_returns_streams_only(self, pcr_dataset):
        record = pcr_dataset.record_names[0]
        samples = pcr_dataset.reader.read_record(record, scan_group=2, decode=False)
        assert all(sample.image is None for sample in samples)
        assert all(len(sample.stream) > 0 for sample in samples)
        # The streams are themselves decodable.
        image = ProgressiveCodec().decode(samples[0].stream)
        assert image.height > 0

    def test_writer_rejects_wrong_scan_count(self, tmp_path, tiny_samples):
        key, image, label = tiny_samples[0]
        baseline = BaselineCodec(quality=90).encode(image)  # 3 scans, policy expects 10
        writer = PCRWriter(tmp_path / "bad", images_per_record=1)
        with pytest.raises(PCRError):
            writer.add_sample(key, baseline, label)

    def test_writer_accepts_preencoded_progressive(self, tmp_path, tiny_samples):
        writer = PCRWriter(tmp_path / "pre", images_per_record=4)
        for key, image, label in tiny_samples[:4]:
            stream = transcode_to_progressive(BaselineCodec(quality=90).encode(image))
            writer.add_sample(key, stream, label)
        result = writer.finalize()
        assert result.n_samples == 4
        reader = PCRReader(tmp_path / "pre")
        assert reader.n_samples == 4

    def test_lsm_backend_roundtrip(self, tmp_path, tiny_samples):
        dataset = PCRDataset.build(
            tiny_samples[:6], tmp_path / "lsm", images_per_record=3, backend="lsm"
        )
        assert len(dataset.record_names) == 2
        dataset.set_scan_group(1)
        assert len(list(dataset)) == 6

    def test_clustered_policy_reduces_group_count(self, tmp_path, tiny_samples):
        policy = ScanGroupPolicy.clustered([1, 4, 10])
        dataset = PCRDataset.build(
            tiny_samples[:6],
            tmp_path / "clustered",
            images_per_record=3,
            policy=policy,
        )
        assert dataset.n_groups == 3
        by_group = dataset.epoch_bytes_by_group()
        assert set(by_group) == {1, 2, 3}

    def test_partial_record_is_flushed_on_finalize(self, tmp_path, tiny_samples):
        writer = PCRWriter(tmp_path / "partial", images_per_record=16)
        for key, image, label in tiny_samples[:5]:
            writer.add_sample(key, image, label)
        result = writer.finalize()
        assert result.n_records == 1
        assert result.n_samples == 5

    def test_writer_double_finalize_raises(self, tmp_path, tiny_samples):
        writer = PCRWriter(tmp_path / "double", images_per_record=4)
        writer.add_sample(*tiny_samples[0])
        writer.finalize()
        with pytest.raises(PCRError):
            writer.finalize()

    def test_reader_on_missing_directory(self, tmp_path):
        with pytest.raises(PCRError):
            PCRReader(tmp_path / "nope")

    def test_no_space_overhead_vs_plain_progressive(self, tmp_path, tiny_samples):
        # Total PCR bytes should be within a few percent of the sum of the
        # individual progressive streams (the paper: within 5%).
        codec = ProgressiveCodec(quality=90)
        plain_total = sum(len(codec.encode(image)) for _, image, _ in tiny_samples)
        dataset = PCRDataset.build(tiny_samples, tmp_path / "overhead", images_per_record=8)
        pcr_total = sum(
            dataset.reader.record_index(name).total_bytes for name in dataset.record_names
        )
        assert pcr_total / plain_total < 1.10

    def test_label_mapper_view(self, pcr_dataset):
        view = pcr_dataset.with_label_mapper(lambda label: label % 2)
        labels = {sample.label for sample in view}
        assert labels <= {0, 1}
        # the underlying dataset is unchanged
        assert {sample.label for sample in pcr_dataset} == {0, 1, 2, 3}


class TestConverters:
    @pytest.fixture(scope="class")
    def few_samples(self, tiny_samples):
        return tiny_samples[:8]

    def test_convert_to_pcr_report(self, tmp_path, few_samples):
        result, report = convert_to_pcr(few_samples, tmp_path / "conv", images_per_record=4)
        assert result.n_samples == 8
        assert report.approach == "pcr"
        assert report.total_seconds > 0
        assert report.output_bytes == result.total_bytes
        assert report.n_copies == 1

    def test_static_copies_cost_more(self, tmp_path, few_samples):
        _, pcr_report = convert_to_pcr(few_samples, tmp_path / "pcr2", images_per_record=4)
        static_report = build_static_copies(few_samples, tmp_path / "static", qualities=(50, 75, 90, 95))
        assert static_report.n_copies == 4
        assert len(static_report.per_copy_bytes) == 4
        # Four full copies occupy far more space than one PCR dataset.
        assert static_report.output_bytes > 2 * pcr_report.output_bytes

    def test_space_amplification_reference(self, tmp_path, few_samples):
        reference = reference_record_bytes(few_samples, tmp_path / "ref", quality=90)
        static_report = build_static_copies(few_samples, tmp_path / "static2", qualities=(75, 90))
        amplification = static_report.space_amplification(reference)
        assert amplification > 1.2

    def test_amplification_requires_positive_reference(self, tmp_path, few_samples):
        report = build_static_copies(few_samples, tmp_path / "static3", qualities=(75,))
        with pytest.raises(ValueError):
            report.space_amplification(0)


class TestReaderConcurrency:
    """Regression: one PCRReader shared by many threads must behave like one."""

    def test_concurrent_reads_match_sequential(self, pcr_dataset):
        import threading

        reader = PCRReader(pcr_dataset.reader.directory, decode=False)
        names = reader.record_names
        groups = list(range(1, reader.n_groups + 1))
        expected = {
            (name, group): reader.read_record_bytes(name, group)
            for name in names
            for group in (1, reader.n_groups)
        }
        reader.stats.reset()
        mismatches: list[str] = []
        errors: list[BaseException] = []

        def hammer(thread_index: int) -> None:
            try:
                for round_index in range(3):
                    for name in names:
                        group = groups[(thread_index + round_index) % len(groups)]
                        data = reader.read_record_bytes(name, group)
                        want = reader.record_index(name).bytes_for_group(group)
                        if len(data) != want:
                            mismatches.append(f"{name}@{group}: {len(data)} != {want}")
                    for name in names:
                        for group in (1, reader.n_groups):
                            if reader.read_record_bytes(name, group) != expected[(name, group)]:
                                mismatches.append(f"{name}@{group}: payload drift")
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert not mismatches, mismatches[:5]
        # Counters under the lock must account for every read exactly once.
        n_reads = 8 * 3 * (len(names) + 2 * len(names))
        assert reader.stats.records_read == n_reads
        reader.close()

    def test_concurrent_decoded_reads(self, pcr_dataset):
        """Decoding readers share index cache, stats, and the kvstore handle."""
        import threading

        reader = pcr_dataset.reader
        name = pcr_dataset.record_names[0]
        baseline = reader.read_record(name, 1, decode=True)
        results: list[list] = [[] for _ in range(4)]
        errors: list[BaseException] = []

        def decode_worker(slot: int) -> None:
            try:
                results[slot] = reader.read_record(name, 1, decode=True)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=decode_worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        for decoded in results:
            assert [s.key for s in decoded] == [s.key for s in baseline]
            for mine, ref in zip(decoded, baseline):
                assert np.array_equal(mine.image.pixels, ref.image.pixels)
