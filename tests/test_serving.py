"""Tests for the serving subsystem: wire protocol, cache, server, client, loader."""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.core.errors import ScanGroupError
from repro.pipeline.batch import Minibatch
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.serving import protocol
from repro.serving.client import PCRClient
from repro.serving.remote_source import RemoteRecordSource
from repro.serving.server import PCRRecordServer, ScanPrefixCache


@pytest.fixture(scope="module")
def server(pcr_dataset):
    with PCRRecordServer(pcr_dataset.reader.directory, port=0) as running:
        yield running


@pytest.fixture()
def client(server):
    with PCRClient(port=server.port) as connected:
        yield connected


# -- protocol ----------------------------------------------------------------


class TestProtocolFrames:
    def test_frame_roundtrip(self):
        frame = protocol.encode_frame(protocol.MSG_GET_RECORD, b"payload")
        msg_type, length = protocol.parse_header(frame[: protocol.HEADER_SIZE])
        assert msg_type == protocol.MSG_GET_RECORD
        assert length == 7
        assert frame[protocol.HEADER_SIZE :] == b"payload"

    def test_bad_magic_rejected(self):
        frame = bytearray(protocol.encode_frame(protocol.MSG_STAT, b""))
        frame[0:2] = b"XX"
        with pytest.raises(protocol.ProtocolError, match="magic"):
            protocol.parse_header(bytes(frame))

    def test_bad_version_rejected(self):
        frame = bytearray(protocol.encode_frame(protocol.MSG_STAT, b""))
        frame[2] = 99
        with pytest.raises(protocol.ProtocolError, match="version"):
            protocol.parse_header(bytes(frame))

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(protocol.FrameTooLargeError):
            protocol.encode_frame(protocol.MSG_RECORD_DATA, b"x" * 100, max_payload=10)

    def test_oversized_payload_rejected_on_parse(self):
        header = struct.pack(
            "<2sBBI", protocol.PROTOCOL_MAGIC, protocol.PROTOCOL_VERSION,
            protocol.MSG_RECORD_DATA, 1 << 30,
        )
        with pytest.raises(protocol.FrameTooLargeError):
            protocol.parse_header(header, max_payload=1 << 20)

    def test_record_request_roundtrip(self):
        request = protocol.RecordRequest("record-00001.pcr", 7)
        packed = protocol.pack_record_request(request)
        assert protocol.unpack_record_request(packed) == request

    def test_record_request_truncation_rejected(self):
        packed = protocol.pack_record_request(protocol.RecordRequest("record", 3))
        for cut in (1, 3, len(packed) - 1):
            with pytest.raises(protocol.ProtocolError):
                protocol.unpack_record_request(packed[:cut])

    def test_record_request_trailing_bytes_rejected(self):
        packed = protocol.pack_record_request(protocol.RecordRequest("record", 3))
        with pytest.raises(protocol.ProtocolError, match="trailing"):
            protocol.unpack_record_request(packed + b"!")

    def test_batch_request_roundtrip(self):
        requests = [
            protocol.RecordRequest("a.pcr", 1),
            protocol.RecordRequest("b.pcr", 10),
        ]
        assert protocol.unpack_batch_request(protocol.pack_batch_request(requests)) == requests

    def test_error_roundtrip(self):
        error = protocol.unpack_error(protocol.pack_error(protocol.ERR_NOT_FOUND, "nope"))
        assert error.code == protocol.ERR_NOT_FOUND
        assert error.message == "nope"
        assert "not-found" in str(error)

    def test_split_frames_rejects_truncation(self):
        stream = protocol.encode_frame(protocol.MSG_STAT, b"") + protocol.encode_frame(
            protocol.MSG_RECORD_DATA, b"abcdef"
        )
        assert len(protocol.split_frames(stream)) == 2
        with pytest.raises(protocol.ProtocolError):
            protocol.split_frames(stream[:-3])


# -- scan-prefix cache -------------------------------------------------------


class TestScanPrefixCache:
    def test_prefix_containment_hit(self):
        cache = ScanPrefixCache(capacity_bytes=1 << 20)
        cache.put("r", 5, b"ABCDEFGHIJ")
        assert cache.get("r", 3, 4) == b"ABCD"
        assert cache.prefix_hits == 1 and cache.exact_hits == 0

    def test_exact_hit_and_miss_above_cached_group(self):
        cache = ScanPrefixCache(capacity_bytes=1 << 20)
        cache.put("r", 3, b"ABCDEF")
        assert cache.get("r", 3, 6) == b"ABCDEF"
        assert cache.get("r", 4, 8) is None
        assert cache.exact_hits == 1 and cache.misses == 1

    def test_longest_prefix_wins(self):
        cache = ScanPrefixCache(capacity_bytes=1 << 20)
        cache.put("r", 5, b"ABCDEFGHIJ")
        cache.put("r", 2, b"ABC")  # shorter prefix must not clobber the longer one
        assert cache.get("r", 5, 10) == b"ABCDEFGHIJ"
        assert cache.cached_bytes == 10

    def test_lru_eviction_by_bytes(self):
        cache = ScanPrefixCache(capacity_bytes=25)
        cache.put("a", 1, b"x" * 10)
        cache.put("b", 1, b"y" * 10)
        cache.get("a", 1, 10)  # touch a so b is the LRU entry
        cache.put("c", 1, b"z" * 10)
        assert cache.get("b", 1, 10) is None
        assert cache.get("a", 1, 10) == b"x" * 10
        assert cache.evictions == 1
        assert cache.cached_bytes <= 25

    def test_entry_larger_than_capacity_not_cached(self):
        cache = ScanPrefixCache(capacity_bytes=4)
        cache.put("r", 1, b"toolarge")
        assert len(cache) == 0

    def test_eviction_follows_lru_order_under_byte_pressure(self):
        """Entries leave strictly least-recently-used-first as bytes overflow."""
        cache = ScanPrefixCache(capacity_bytes=30)
        cache.put("a", 1, b"a" * 10)
        cache.put("b", 1, b"b" * 10)
        cache.put("c", 1, b"c" * 10)
        # Recency now a < b < c; touch a and b so c becomes the LRU entry.
        cache.get("a", 1, 10)
        cache.get("b", 1, 10)
        cache.put("d", 1, b"d" * 10)  # evicts c
        cache.put("e", 1, b"e" * 10)  # evicts a (next LRU after the touches)
        assert cache.get("c", 1, 10) is None
        assert cache.get("a", 1, 10) is None
        assert cache.get("b", 1, 10) == b"b" * 10
        assert cache.get("d", 1, 10) == b"d" * 10
        assert cache.evictions == 2
        assert cache.cached_bytes == 30 and len(cache) == 3

    def test_longer_prefix_replacement_reaccounts_bytes_and_evicts(self):
        """Upgrading an entry to a longer prefix must charge the byte delta
        (not double-count) and evict LRU entries if the upgrade overflows."""
        cache = ScanPrefixCache(capacity_bytes=24)
        cache.put("a", 1, b"a" * 8)
        cache.put("b", 1, b"b" * 8)
        cache.put("a", 3, b"A" * 16)  # upgrade: replaces the 8-byte entry
        assert cache.cached_bytes == 24  # 16 + 8, old 8 bytes released
        assert cache.evictions == 0
        cache.put("b", 5, b"B" * 20)  # upgrade overflows: "a" must go
        assert cache.get("a", 1, 8) is None
        assert cache.get("b", 5, 20) == b"B" * 20
        assert cache.evictions == 1
        assert cache.cached_bytes == 20 and len(cache) == 1

    def test_stats_counters_after_eviction(self):
        cache = ScanPrefixCache(capacity_bytes=20)
        cache.put("a", 2, b"a" * 10)
        cache.put("b", 2, b"b" * 10)
        cache.get("a", 1, 5)  # prefix hit while both entries live
        cache.put("c", 2, b"c" * 10)  # evicts b ("a" was touched)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["cached_bytes"] == 20
        assert cache.get("b", 1, 5) is None  # the evicted entry is a miss now
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["prefix_hits"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["misses_by_group"]["1"] == 1

    def test_per_group_counters(self):
        cache = ScanPrefixCache(capacity_bytes=1 << 20)
        cache.put("r", 4, b"ABCDEFGH")
        cache.get("r", 2, 4)
        cache.get("r", 2, 4)
        cache.get("r", 9, 16)
        stats = cache.stats()
        assert stats["hits_by_group"]["2"] == 2
        assert stats["misses_by_group"]["9"] == 1
        assert stats["bytes_served_by_group"]["2"] == 8
        assert stats["prefix_hit_rate"] == pytest.approx(2 / 3)


# -- server + client ---------------------------------------------------------


class TestServerClient:
    def test_record_bytes_match_local_reader(self, server, client, pcr_dataset):
        reader = pcr_dataset.reader
        for name in reader.record_names:
            for group in (1, reader.n_groups):
                assert client.get_record_bytes(name, group) == reader.read_record_bytes(
                    name, group
                )

    def test_dataset_meta(self, server, client, pcr_dataset):
        meta = client.dataset_meta()
        assert meta["n_groups"] == pcr_dataset.n_groups
        assert meta["n_samples"] == len(pcr_dataset)
        assert meta["record_names"] == pcr_dataset.record_names

    def test_get_index(self, server, client, pcr_dataset):
        name = pcr_dataset.record_names[0]
        assert client.get_index(name) == pcr_dataset.reader.record_index(name)

    def test_batch_pipelined_fetch(self, server, client, pcr_dataset):
        reader = pcr_dataset.reader
        names = reader.record_names
        requests = [(name, 1 + (i % reader.n_groups)) for i, name in enumerate(names)]
        blobs = client.get_record_batch(requests)
        assert len(blobs) == len(requests)
        for (name, group), blob in zip(requests, blobs):
            assert blob == reader.read_record_bytes(name, group)

    def test_missing_record_raises_remote_error(self, server, client):
        with pytest.raises(protocol.RemoteError) as info:
            client.get_record_bytes("no-such-record.pcr", 1)
        assert info.value.code == protocol.ERR_NOT_FOUND

    def test_bad_scan_group_raises_remote_error(self, server, client, pcr_dataset):
        with pytest.raises(protocol.RemoteError) as info:
            client.get_record_bytes(pcr_dataset.record_names[0], 99)
        assert info.value.code == protocol.ERR_BAD_SCAN_GROUP

    def test_unknown_request_type_gets_error_frame(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(protocol.encode_frame(0x7A, b""))
            msg_type, payload = protocol.read_frame(sock)
        assert msg_type == protocol.MSG_ERROR
        assert protocol.unpack_error(payload).code == protocol.ERR_UNSUPPORTED

    def test_truncated_frame_gets_malformed_error(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            frame = protocol.encode_frame(protocol.MSG_GET_RECORD, b"\x05\x00abc")
            sock.sendall(frame[:-2])  # drop the frame's last bytes, then EOF
            sock.shutdown(socket.SHUT_WR)
            msg_type, payload = protocol.read_frame(sock)
        assert msg_type == protocol.MSG_ERROR
        assert protocol.unpack_error(payload).code == protocol.ERR_MALFORMED

    def test_oversized_announced_payload_rejected(self, server):
        header = struct.pack(
            "<2sBBI", protocol.PROTOCOL_MAGIC, protocol.PROTOCOL_VERSION,
            protocol.MSG_GET_RECORD, protocol.DEFAULT_MAX_PAYLOAD_BYTES + 1,
        )
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(header)
            msg_type, payload = protocol.read_frame(sock)
        assert msg_type == protocol.MSG_ERROR
        assert protocol.unpack_error(payload).code == protocol.ERR_MALFORMED

    def test_stat_counters_and_prefix_cache_hits(self, pcr_dataset):
        # A dedicated server so counters are not shared with other tests.
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as fresh:
            with PCRClient(port=fresh.port) as local_client:
                names = pcr_dataset.record_names
                high = pcr_dataset.n_groups
                for name in names:
                    local_client.get_record_bytes(name, high)  # populate (misses)
                for name in names:
                    local_client.get_record_bytes(name, 1)  # containment hits
                stats = local_client.stat()
        cache = stats["cache"]
        assert cache["misses"] == len(names)
        assert cache["prefix_hits"] == len(names)
        assert cache["prefix_hit_rate"] > 0
        assert cache["bytes_served_by_group"]["1"] > 0
        assert stats["n_requests"] >= 2 * len(names)

    def test_client_reconnects_after_server_restart(self, pcr_dataset):
        directory = pcr_dataset.reader.directory
        first = PCRRecordServer(directory, port=0).start()
        port = first.port
        reconnecting = PCRClient(port=port, pool_size=1)
        name = pcr_dataset.record_names[0]
        expected = pcr_dataset.reader.read_record_bytes(name, 1)
        try:
            assert reconnecting.get_record_bytes(name, 1) == expected
            first.stop()
            with PCRRecordServer(directory, port=port) as second:
                assert second.port == port
                # The pooled socket is stale; the client must retry on a
                # fresh connection transparently.
                assert reconnecting.get_record_bytes(name, 1) == expected
        finally:
            reconnecting.close()

    def test_stop_severs_established_connections(self, pcr_dataset):
        """Graceful shutdown must also end handler threads with live clients."""
        stopping = PCRRecordServer(pcr_dataset.reader.directory, port=0).start()
        holding = PCRClient(port=stopping.port, pool_size=1, retries=0)
        name = pcr_dataset.record_names[0]
        try:
            holding.get_record_bytes(name, 1)  # leaves a pooled live connection
            stopping.stop()
            with pytest.raises(ConnectionError):
                holding.get_record_bytes(name, 1)
        finally:
            holding.close()

    def test_fully_stale_pool_recovers_in_one_retry(self, pcr_dataset):
        """A restart staling *every* pooled socket must not exhaust the retry budget."""
        directory = pcr_dataset.reader.directory
        first = PCRRecordServer(directory, port=0).start()
        port = first.port
        pooled = PCRClient(port=port, pool_size=3, retries=1)
        name = pcr_dataset.record_names[0]
        expected = pcr_dataset.reader.read_record_bytes(name, 1)
        try:
            # Open three real connections so the pool is fully populated.
            connections = [pooled._acquire() for _ in range(3)]
            for connection in connections:
                pooled._release(connection)
            first.stop()
            with PCRRecordServer(directory, port=port) as second:
                assert second.port == port
                assert pooled.get_record_bytes(name, 1) == expected
        finally:
            pooled.close()

    def test_batch_oversize_rejected_before_materializing(self, pcr_dataset):
        """One small BATCH frame must not force an unbounded response allocation."""
        reader = pcr_dataset.reader
        name = reader.record_names[0]
        record_size = reader.bytes_for_group(name, reader.n_groups)
        limit = 2 * record_size + 128
        with PCRRecordServer(reader.directory, port=0, max_payload=limit) as capped:
            with PCRClient(port=capped.port, max_payload=limit) as client:
                # A single record fits comfortably under the limit ...
                assert len(client.get_record_bytes(name, reader.n_groups)) == record_size
                # ... but a pipelined batch of ten must be rejected early.
                with pytest.raises(protocol.RemoteError) as info:
                    client.get_record_batch([(name, reader.n_groups)] * 10)
                assert info.value.code == protocol.ERR_OVERSIZED

    def test_connection_refused_after_final_stop(self, pcr_dataset):
        server = PCRRecordServer(pcr_dataset.reader.directory, port=0).start()
        port = server.port
        server.stop()
        with pytest.raises(ConnectionError):
            PCRClient(port=port, pool_size=1, retries=0).get_record_bytes("r", 1)

    def test_concurrent_clients_share_cache(self, pcr_dataset):
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as fresh:
            reader = pcr_dataset.reader
            expected = {
                (name, group): reader.read_record_bytes(name, group)
                for name in reader.record_names
                for group in (1, reader.n_groups)
            }
            failures: list[str] = []

            def fetch_all() -> None:
                with PCRClient(port=fresh.port, pool_size=2) as local_client:
                    for (name, group), want in expected.items():
                        if local_client.get_record_bytes(name, group) != want:
                            failures.append(f"{name}@{group}")

            threads = [threading.Thread(target=fetch_all) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not failures
            stats = fresh.cache.stats()
            assert stats["exact_hits"] + stats["prefix_hits"] > 0


# -- remote DataLoader source -----------------------------------------------


def _epoch_batches(loader: DataLoader) -> list[Minibatch]:
    return list(loader.epoch())


class TestRemoteRecordSource:
    def test_source_mirrors_dataset_structure(self, server, pcr_dataset):
        with RemoteRecordSource(port=server.port) as source:
            assert source.record_names == pcr_dataset.record_names
            assert len(source) == len(pcr_dataset)
            assert source.n_groups == pcr_dataset.n_groups
            assert source.scan_group == pcr_dataset.n_groups

    def test_scan_group_validation(self, server):
        with RemoteRecordSource(port=server.port) as source:
            with pytest.raises(ScanGroupError):
                source.set_scan_group(0)
            with pytest.raises(ScanGroupError):
                source.set_scan_group(source.n_groups + 1)

    def test_read_record_matches_local(self, server, pcr_dataset):
        with RemoteRecordSource(port=server.port, scan_group=2) as source:
            name = pcr_dataset.record_names[0]
            local = pcr_dataset.reader.read_record(name, 2, decode=True)
            remote = source.read_record(name, decode=True)
            assert len(local) == len(remote)
            for mine, theirs in zip(local, remote):
                assert mine.key == theirs.key
                assert mine.stream == theirs.stream
                assert np.array_equal(mine.image.pixels, theirs.image.pixels)

    def test_read_record_batch_matches_sequential(self, server, pcr_dataset):
        with RemoteRecordSource(port=server.port, scan_group=1) as source:
            names = pcr_dataset.record_names
            batched = source.read_record_batch(names, decode=False)
            for name, samples in zip(names, batched):
                singly = source.read_record(name, decode=False)
                assert [s.stream for s in samples] == [s.stream for s in singly]

    def test_epoch_bytes_matches_local_reader(self, server, pcr_dataset):
        with RemoteRecordSource(port=server.port, scan_group=2) as source:
            assert source.epoch_bytes() == pcr_dataset.reader.dataset_bytes_for_group(2)

    def test_dataloader_epoch_matches_local_at_two_scan_groups(self, server, pcr_dataset):
        """The acceptance-criteria test: remote epochs == local epochs, per group."""
        config = LoaderConfig(batch_size=8, n_workers=1, shuffle=False, seed=123)
        try:
            with RemoteRecordSource(port=server.port, decode=True) as source:
                for group in (pcr_dataset.n_groups, 1):
                    source.set_scan_group(group)
                    pcr_dataset.set_scan_group(group)
                    remote_batches = _epoch_batches(DataLoader(source, config))
                    local_batches = _epoch_batches(DataLoader(pcr_dataset, config))
                    assert len(remote_batches) == len(local_batches) > 0
                    for remote, local in zip(remote_batches, local_batches):
                        assert np.array_equal(remote.images, local.images)
                        assert np.array_equal(remote.labels, local.labels)
        finally:
            # Leave the shared session fixture at full fidelity for other tests.
            pcr_dataset.set_scan_group(pcr_dataset.n_groups)

    def test_dataloader_multiworker_epoch_complete(self, server, pcr_dataset):
        config = LoaderConfig(batch_size=8, n_workers=3, shuffle=True, seed=7)
        with RemoteRecordSource(port=server.port, scan_group=1) as source:
            batches = _epoch_batches(DataLoader(source, config))
        assert sum(batch.images.shape[0] for batch in batches) == len(pcr_dataset)

    def test_parallel_decode_matches_in_process(self, server, pcr_dataset):
        """A DecodePool behind the remote source changes nothing but the cores used."""
        from repro.codecs.parallel import DecodePool

        names = pcr_dataset.record_names
        with RemoteRecordSource(port=server.port, scan_group=2) as source:
            reference = source.read_record_batch(names, decode=True)
            with DecodePool(2) as pool:
                source.set_decode_pool(pool)
                parallel = source.read_record_batch(names, decode=True)
                assert pool.stats.parallel_batches == 1
                for ref_samples, par_samples in zip(reference, parallel):
                    for mine, theirs in zip(ref_samples, par_samples):
                        assert mine.key == theirs.key
                        assert np.array_equal(mine.image.pixels, theirs.image.pixels)
            source.set_decode_pool(None)

    def test_dataloader_decode_workers_epoch_matches_local(self, server, pcr_dataset):
        """Remote fetch + process-parallel decode == local in-process epoch."""
        config = LoaderConfig(
            batch_size=8, n_workers=1, shuffle=False, seed=123, decode_workers=2
        )
        local_config = LoaderConfig(batch_size=8, n_workers=1, shuffle=False, seed=123)
        with RemoteRecordSource(port=server.port, decode=True) as source:
            remote_loader = DataLoader(source, config)
            try:
                remote_batches = _epoch_batches(remote_loader)
            finally:
                remote_loader.close()
            local_batches = _epoch_batches(DataLoader(pcr_dataset, local_config))
        assert len(remote_batches) == len(local_batches) > 0
        for remote, local in zip(remote_batches, local_batches):
            assert np.array_equal(remote.images, local.images)
            assert np.array_equal(remote.labels, local.labels)
