"""Tests for the numpy training substrate: layers, losses, optimizers, models, loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline.batch import collate
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.training.gradients import cosine_similarity, scan_group_gradient_similarities
from repro.training.layers import (
    BatchNorm2d,
    ChannelShuffle,
    Conv2d,
    Flatten,
    GlobalAveragePool,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualBlock,
    Sequential,
    ShuffleBlock,
)
from repro.training.losses import softmax, softmax_cross_entropy
from repro.training.loop import Trainer
from repro.training.metrics import top_1_accuracy, top_k_accuracy
from repro.training.models import LinearProbe, SmallCNN, TinyResNet, TinyShuffleNet
from repro.training.optim import SGD, WarmupStepSchedule


def numerical_gradient(function, array, epsilon=1e-5):
    """Central-difference gradient of a scalar function of ``array``."""
    gradient = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = gradient.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function()
        flat[index] = original - epsilon
        minus = function()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return gradient


class TestLayerGradients:
    """Analytic backward passes are checked against finite differences."""

    def _check_input_gradient(self, layer, inputs, tolerance=1e-5):
        def loss():
            return float(np.sum(layer.forward(inputs) ** 2))

        output = layer.forward(inputs)
        analytic = layer.backward(2.0 * output)
        numeric = numerical_gradient(loss, inputs)
        assert np.allclose(analytic, numeric, atol=tolerance, rtol=1e-3)

    def _check_param_gradient(self, layer, inputs, name, tolerance=1e-5):
        def loss():
            return float(np.sum(layer.forward(inputs) ** 2))

        output = layer.forward(inputs)
        layer.backward(2.0 * output)
        analytic = layer.grads[name]
        numeric = numerical_gradient(loss, layer.params[name])
        assert np.allclose(analytic, numeric, atol=tolerance, rtol=1e-3)

    def test_linear_gradients(self):
        rng = np.random.default_rng(0)
        layer = Linear(6, 4, seed=1)
        inputs = rng.normal(size=(3, 6))
        self._check_input_gradient(layer, inputs)
        self._check_param_gradient(layer, inputs, "weight")
        self._check_param_gradient(layer, inputs, "bias")

    def test_conv_gradients(self):
        rng = np.random.default_rng(1)
        layer = Conv2d(2, 3, kernel_size=3, stride=1, padding=1, seed=2)
        inputs = rng.normal(size=(2, 2, 5, 5))
        self._check_input_gradient(layer, inputs)
        self._check_param_gradient(layer, inputs, "weight")
        self._check_param_gradient(layer, inputs, "bias")

    def test_strided_conv_gradients(self):
        rng = np.random.default_rng(2)
        layer = Conv2d(2, 2, kernel_size=3, stride=2, padding=1, seed=3)
        inputs = rng.normal(size=(1, 2, 6, 6))
        self._check_input_gradient(layer, inputs)
        self._check_param_gradient(layer, inputs, "weight")

    def test_relu_gradient(self):
        rng = np.random.default_rng(3)
        self._check_input_gradient(ReLU(), rng.normal(size=(2, 3, 4, 4)) + 0.1)

    def test_global_average_pool_gradient(self):
        rng = np.random.default_rng(4)
        self._check_input_gradient(GlobalAveragePool(), rng.normal(size=(2, 3, 4, 4)))

    def test_maxpool_gradient(self):
        rng = np.random.default_rng(5)
        # avoid ties so the max mask is unambiguous
        inputs = rng.permutation(2 * 2 * 4 * 4).reshape(2, 2, 4, 4).astype(float)
        self._check_input_gradient(MaxPool2d(2), inputs, tolerance=1e-4)

    def test_batchnorm_gradient(self):
        rng = np.random.default_rng(6)
        layer = BatchNorm2d(3)
        inputs = rng.normal(size=(4, 3, 3, 3))
        self._check_input_gradient(layer, inputs, tolerance=1e-4)
        self._check_param_gradient(layer, inputs, "gamma", tolerance=1e-4)
        self._check_param_gradient(layer, inputs, "beta", tolerance=1e-4)

    def test_channel_shuffle_is_a_permutation(self):
        rng = np.random.default_rng(7)
        layer = ChannelShuffle(2)
        inputs = rng.normal(size=(2, 4, 3, 3))
        output = layer.forward(inputs)
        restored = layer.backward(output)
        assert np.allclose(restored, inputs)

    def test_residual_block_gradient(self):
        rng = np.random.default_rng(8)
        block = ResidualBlock(2, 4, stride=2, seed=9)
        inputs = rng.normal(size=(2, 2, 6, 6))
        self._check_input_gradient(block, inputs, tolerance=1e-4)

    def test_shuffle_block_gradient(self):
        rng = np.random.default_rng(9)
        block = ShuffleBlock(4, stride=1, seed=10)
        inputs = rng.normal(size=(2, 4, 6, 6))
        self._check_input_gradient(block, inputs, tolerance=1e-4)


class TestLayerBehaviour:
    def test_conv_output_shape(self):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        output = layer.forward(np.zeros((2, 3, 16, 16)))
        assert output.shape == (2, 8, 8, 8)

    def test_maxpool_output_shape(self):
        assert MaxPool2d(2).forward(np.zeros((1, 2, 9, 9))).shape == (1, 2, 4, 4)

    def test_batchnorm_normalizes_in_training(self):
        rng = np.random.default_rng(10)
        layer = BatchNorm2d(2)
        output = layer.forward(rng.normal(5.0, 3.0, size=(8, 2, 4, 4)))
        assert abs(output.mean()) < 1e-6
        assert abs(output.std() - 1.0) < 1e-2

    def test_batchnorm_uses_running_stats_in_eval(self):
        rng = np.random.default_rng(11)
        layer = BatchNorm2d(2, momentum=0.0)
        train_inputs = rng.normal(2.0, 1.0, size=(16, 2, 4, 4))
        layer.forward(train_inputs)
        layer.set_training(False)
        output = layer.forward(np.full((2, 2, 4, 4), 2.0))
        assert np.allclose(output.mean(axis=(0, 2, 3)), -layer.running_mean * 0 + (2.0 - layer.running_mean) / np.sqrt(layer.running_var + layer.epsilon), atol=1e-6)

    def test_flatten_roundtrip(self):
        layer = Flatten()
        inputs = np.arange(24.0).reshape(2, 3, 2, 2)
        assert layer.forward(inputs).shape == (2, 12)
        assert layer.backward(layer.forward(inputs)).shape == inputs.shape

    def test_sequential_collects_parameter_layers(self):
        network = Sequential([Conv2d(1, 2, 3), ReLU(), Linear(4, 2)])
        assert len(network.parameter_layers()) == 2

    def test_channel_shuffle_rejects_indivisible(self):
        with pytest.raises(ValueError):
            ChannelShuffle(3).forward(np.zeros((1, 4, 2, 2)))


class TestLossesAndMetrics:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(12)
        probabilities = softmax(rng.normal(size=(5, 7)))
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_cross_entropy_of_perfect_prediction_is_small(self):
        logits = np.array([[20.0, 0.0], [0.0, 20.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_cross_entropy_gradient_matches_numerical(self):
        rng = np.random.default_rng(13)
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        _, gradient = softmax_cross_entropy(logits, labels)

        def loss_at(perturbed):
            value, _ = softmax_cross_entropy(perturbed, labels)
            return value

        numeric = np.zeros_like(logits)
        epsilon = 1e-6
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                perturbed = logits.copy()
                perturbed[i, j] += epsilon
                plus = loss_at(perturbed)
                perturbed[i, j] -= 2 * epsilon
                minus = loss_at(perturbed)
                numeric[i, j] = (plus - minus) / (2 * epsilon)
        assert np.allclose(gradient, numeric, atol=1e-6)

    def test_uniform_logits_give_log_n_classes(self):
        loss, _ = softmax_cross_entropy(np.zeros((3, 4)), np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(4))

    def test_rejects_non_2d_logits(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(4), np.array([0]))

    def test_top_k_accuracy(self):
        logits = np.array([[0.1, 0.9, 0.0], [0.8, 0.1, 0.1]])
        labels = np.array([0, 0])
        assert top_1_accuracy(logits, labels) == pytest.approx(0.5)
        assert top_k_accuracy(logits, labels, k=2) == pytest.approx(1.0)

    def test_top_k_larger_than_classes(self):
        logits = np.array([[0.2, 0.8]])
        assert top_k_accuracy(logits, np.array([0]), k=10) == 1.0


class TestOptimizerAndSchedule:
    def test_sgd_moves_against_gradient(self):
        layer = Linear(2, 2, seed=0)
        layer.grads["weight"] = np.ones_like(layer.params["weight"])
        layer.grads["bias"] = np.ones_like(layer.params["bias"])
        before = layer.params["weight"].copy()
        SGD(learning_rate=0.1, momentum=0.0, weight_decay=0.0).step([layer])
        assert np.allclose(layer.params["weight"], before - 0.1)

    def test_momentum_accumulates(self):
        layer = Linear(1, 1, seed=0)
        optimizer = SGD(learning_rate=0.1, momentum=0.9, weight_decay=0.0)
        deltas = []
        for _ in range(3):
            before = layer.params["weight"].copy()
            layer.grads["weight"] = np.ones_like(before)
            layer.grads["bias"] = np.zeros_like(layer.params["bias"])
            optimizer.step([layer])
            deltas.append(float(np.abs(layer.params["weight"] - before).sum()))
        assert deltas[1] > deltas[0]
        assert deltas[2] > deltas[1]

    def test_weight_decay_only_on_matrices(self):
        layer = Linear(2, 2, seed=0)
        layer.grads["weight"] = np.zeros_like(layer.params["weight"])
        layer.grads["bias"] = np.zeros_like(layer.params["bias"])
        before_bias = layer.params["bias"].copy()
        before_weight = layer.params["weight"].copy()
        SGD(learning_rate=0.1, momentum=0.0, weight_decay=0.5).step([layer])
        assert np.allclose(layer.params["bias"], before_bias)
        assert not np.allclose(layer.params["weight"], before_weight)

    def test_warmup_step_schedule(self):
        schedule = WarmupStepSchedule(base_learning_rate=0.1, warmup_epochs=5, milestones=(30, 60))
        assert schedule.learning_rate(0) == pytest.approx(0.02)
        assert schedule.learning_rate(4) == pytest.approx(0.1)
        assert schedule.learning_rate(10) == pytest.approx(0.1)
        assert schedule.learning_rate(30) == pytest.approx(0.01)
        assert schedule.learning_rate(60) == pytest.approx(0.001)


class TestModelsAndTrainer:
    def _toy_batch(self, n=16, size=16, n_classes=3, seed=0):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, n_classes, size=n)
        images = np.zeros((n, size, size, 3), dtype=np.float32)
        for index, label in enumerate(labels):
            images[index, :, :, label % 3] = (label + 1) / n_classes
            images[index] += rng.normal(0, 0.02, size=(size, size, 3))
        return collate(list(images), list(labels))

    @pytest.mark.parametrize("model_class", [TinyResNet, TinyShuffleNet, SmallCNN])
    def test_forward_shapes(self, model_class):
        model = model_class(n_classes=5, width=8)
        logits = model.forward(np.zeros((2, 16, 16, 3), dtype=np.float32))
        assert logits.shape == (2, 5)

    def test_linear_probe_shape(self):
        model = LinearProbe(n_classes=4, input_size=8)
        assert model.forward(np.zeros((3, 8, 8, 3))).shape == (3, 4)

    def test_resnet_costs_more_than_shufflenet(self):
        assert TinyResNet.relative_compute_cost > TinyShuffleNet.relative_compute_cost

    def test_training_reduces_loss_on_separable_data(self):
        batch = self._toy_batch(n=24, n_classes=3)
        model = SmallCNN(n_classes=3, width=8)
        trainer = Trainer(model, SGD(learning_rate=0.1, momentum=0.9, weight_decay=0.0))
        first_loss, _ = trainer.train_step(batch)
        for _ in range(30):
            loss, accuracy = trainer.train_step(batch)
        assert loss < first_loss
        assert accuracy > 0.8

    def test_checkpoint_and_rollback(self):
        model = SmallCNN(n_classes=3, width=8)
        trainer = Trainer(model, SGD(learning_rate=0.1))
        state = trainer.checkpoint()
        batch = self._toy_batch()
        for _ in range(3):
            trainer.train_step(batch)
        changed_logits = model.forward(batch.images)
        trainer.rollback(state)
        restored_logits = model.forward(batch.images)
        assert not np.allclose(changed_logits, restored_logits)
        # Rolling back twice is idempotent.
        trainer.rollback(state)
        assert np.allclose(model.forward(batch.images), restored_logits)

    def test_state_dict_mismatch_rejected(self):
        model_a = SmallCNN(n_classes=3, width=8)
        model_b = LinearProbe(n_classes=3, input_size=8)
        with pytest.raises(ValueError):
            model_b.load_state_dict(model_a.state_dict())

    def test_trainer_with_loader_and_schedule(self, pcr_dataset):
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=8, n_workers=1, seed=1))
        model = LinearProbe(n_classes=4, input_size=32)
        trainer = Trainer(model, SGD(learning_rate=0.05), WarmupStepSchedule(0.05, warmup_epochs=1))
        result = trainer.train_epoch(loader, test_loader=loader, scan_group=10)
        assert result.images_per_second > 0
        assert result.test_accuracy is not None
        assert trainer.history.epochs[0].scan_group == 10

    def test_history_time_to_accuracy(self, pcr_dataset):
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=8, n_workers=1, seed=2))
        model = LinearProbe(n_classes=4, input_size=32)
        trainer = Trainer(model, SGD(learning_rate=0.1, momentum=0.9))
        history = trainer.fit(loader, n_epochs=4, test_loader=loader)
        assert len(history.epochs) == 4
        assert history.final_test_accuracy is not None
        assert history.total_wall_seconds() > 0
        # time_to_accuracy is None for unreachable targets
        assert history.time_to_accuracy(1.1) is None

    def test_gradient_vector_is_consistent_shape(self):
        model = SmallCNN(n_classes=3, width=8)
        trainer = Trainer(model)
        batch = self._toy_batch(n=8)
        gradient_a = trainer.gradient_vector(batch)
        gradient_b = trainer.gradient_vector(batch)
        assert gradient_a.shape == gradient_b.shape
        assert cosine_similarity(gradient_a, gradient_b) == pytest.approx(1.0)


class TestGradientSimilarity:
    def test_cosine_similarity_basics(self):
        a = np.array([1.0, 0.0])
        assert cosine_similarity(a, a) == pytest.approx(1.0)
        assert cosine_similarity(a, np.array([0.0, 1.0])) == pytest.approx(0.0)
        assert cosine_similarity(a, -a) == pytest.approx(-1.0)
        assert cosine_similarity(a, np.zeros(2)) == 0.0

    def test_scan_group_similarity_increases_with_quality(self, pcr_dataset):
        model = LinearProbe(n_classes=4, input_size=32)
        trainer = Trainer(model)
        similarities = scan_group_gradient_similarities(
            trainer, pcr_dataset, scan_groups=[1, 5, 10], max_samples=12
        )
        assert similarities[10] == pytest.approx(1.0, abs=1e-9)
        assert similarities[1] <= similarities[5] + 0.05
        assert pcr_dataset.scan_group == 10  # restored after measurement
