"""Tests for the queueing-theory throughput model, roofline, and training simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulate.roofline import RooflineModel
from repro.simulate.throughput import (
    PipelineModel,
    empirical_image_size_distribution,
    expected_read_seconds,
    loader_throughput,
    pipeline_throughput,
    predicted_throughput_by_scan,
    speedup,
)
from repro.simulate.trainer_sim import (
    ClusterSpec,
    TrainingSimulator,
    mssim_degraded_accuracy,
    saturating_accuracy_curve,
)

MiB = 1024 * 1024


class TestThroughputLemmas:
    def test_lemma_a1_read_time_scales_with_size(self):
        fast = expected_read_seconds(50_000, 100 * MiB, images_per_record=100)
        slow = expected_read_seconds(100_000, 100 * MiB, images_per_record=100)
        assert slow == pytest.approx(2 * fast)

    def test_lemma_a1_setup_cost_added_once_per_record(self):
        with_setup = expected_read_seconds(1000, MiB, images_per_record=10, setup_seconds=0.01)
        without = expected_read_seconds(1000, MiB, images_per_record=10)
        assert with_setup == pytest.approx(without + 0.01)

    def test_lemma_a2_throughput_is_bandwidth_over_size(self):
        assert loader_throughput(110_000, 400 * MiB) == pytest.approx(400 * MiB / 110_000)

    def test_lemma_a3_speedup_is_size_ratio(self):
        assert speedup(110_000, 55_000) == pytest.approx(2.0)
        assert speedup(110_000, 11_000) == pytest.approx(10.0)

    def test_lemma_a4_min_bound(self):
        assert pipeline_throughput(4000, 8000) == 4000
        assert pipeline_throughput(8000, 4000) == 4000

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            loader_throughput(0, 100)
        with pytest.raises(ValueError):
            expected_read_seconds(10, 0)
        with pytest.raises(ValueError):
            speedup(10, 0)


class TestPipelineModel:
    def _model(self):
        return PipelineModel(
            storage_bandwidth_bytes_per_second=400 * MiB,
            compute_images_per_second=7500,
            images_per_record=1024,
        )

    def test_io_bound_at_large_images(self):
        model = self._model()
        assert model.is_io_bound(110_000)
        assert not model.is_io_bound(10_000)

    def test_theorem_a5_speedup_equals_data_reduction_when_io_bound(self):
        model = self._model()
        # both sizes I/O bound: speedup equals the byte ratio
        assert model.speedup_over(220_000, 110_000) == pytest.approx(2.0, rel=1e-6)

    def test_speedup_capped_by_compute(self):
        model = self._model()
        crossover = model.crossover_image_bytes()
        capped = model.speedup_over(2 * crossover, crossover / 8)
        assert capped == pytest.approx(2.0, rel=1e-6)  # can't exceed compute-bound rate

    def test_epoch_seconds(self):
        model = self._model()
        seconds = model.epoch_seconds(110_000, 1_281_167)
        assert seconds == pytest.approx(1_281_167 / model.end_to_end_rate(110_000))

    def test_crossover_matches_paper_ballpark(self):
        # 400 MiB/s and ~7500 img/s -> crossover around 56 kB/image, i.e. the
        # full-quality 110 kB ImageNet image is storage bound (as in the paper).
        model = self._model()
        assert 40_000 < model.crossover_image_bytes() < 70_000


class TestPredictionsAndDistributions:
    def test_predicted_throughput_matches_ratio(self):
        sizes = {1: 10_000.0, 5: 50_000.0, 10: 100_000.0}
        predictions = predicted_throughput_by_scan(sizes, full_quality_rate_images_per_second=4000)
        assert predictions[10] == pytest.approx(4000)
        assert predictions[5] == pytest.approx(8000)
        assert predictions[1] == pytest.approx(40_000)

    def test_empty_prediction(self):
        assert predicted_throughput_by_scan({}, 100) == {}

    def test_size_distribution_summary(self):
        rng = np.random.default_rng(0)
        sizes = list(rng.lognormal(np.log(110_000), 0.5, size=500).astype(int))
        summary = empirical_image_size_distribution(sizes)
        assert summary["min"] <= summary["p05"] <= summary["median"] <= summary["p95"] <= summary["max"]
        assert summary["mean"] > 0

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            empirical_image_size_distribution([])


class TestRoofline:
    def test_attainable_rate_is_min_of_roofs(self):
        model = RooflineModel(compute_images_per_second=7500, storage_bandwidth_bytes_per_second=400 * MiB)
        assert model.attainable_rate(1_000) == pytest.approx(7500)
        big = 10 * MiB
        assert model.attainable_rate(big) == pytest.approx(400 * MiB / big)

    def test_ridge_point(self):
        model = RooflineModel(7500, 400 * MiB)
        ridge = model.ridge_point_bytes()
        assert model.attainable_rate(ridge) == pytest.approx(7500, rel=1e-9)

    def test_sweep_is_monotone_nonincreasing(self):
        model = RooflineModel(7500, 400 * MiB)
        _, rates = model.sweep(1_000, 1_000_000, n_points=32)
        assert all(rates[i] >= rates[i + 1] - 1e-9 for i in range(len(rates) - 1))

    def test_annotate_scan_groups(self):
        model = RooflineModel(7500, 400 * MiB)
        placements = model.annotate_scan_groups({1: 11_000, 10: 110_000})
        assert placements[1][2] == "compute-bound"
        assert placements[10][2] == "io-bound"


class TestTrainingSimulator:
    def _simulator(self, shufflenet=True):
        cluster = ClusterSpec.paper_shufflenet() if shufflenet else ClusterSpec.paper_resnet()
        return TrainingSimulator(cluster, n_train_images=1_281_167, eval_every_epochs=5)

    def test_cluster_aggregate_rates(self):
        assert ClusterSpec.paper_resnet().compute_images_per_second == pytest.approx(4450)
        assert ClusterSpec.paper_shufflenet().compute_images_per_second == pytest.approx(7500)

    def test_lower_scan_groups_train_faster(self):
        simulator = self._simulator()
        sizes = {1: 11_000, 2: 22_000, 5: 55_000, 10: 110_000}
        accuracies = {1: 0.55, 2: 0.62, 5: 0.66, 10: 0.67}
        runs = simulator.compare_scan_groups(sizes, accuracies, n_epochs=90)
        assert runs[1].epoch_seconds < runs[5].epoch_seconds < runs[10].epoch_seconds
        assert runs[5].final_accuracy > runs[1].final_accuracy

    def test_speedup_table_shape_matches_paper(self):
        # ShuffleNet on ImageNet: scan 5 (roughly half the bytes) gives ~2x;
        # the gains saturate once compute bound.
        simulator = self._simulator()
        speedups = simulator.speedup_table({1: 11_000, 2: 22_000, 5: 55_000, 10: 110_000})
        assert speedups[10] == pytest.approx(1.0)
        assert 1.7 < speedups[5] <= 2.1
        assert speedups[1] <= speedups[2] * 1.01 or speedups[1] >= speedups[2]

    def test_resnet_speedups_smaller_than_shufflenet(self):
        sizes = {5: 55_000, 10: 110_000}
        shufflenet_speedup = self._simulator(True).speedup_table(sizes)[5]
        resnet_speedup = self._simulator(False).speedup_table(sizes)[5]
        assert shufflenet_speedup >= resnet_speedup

    def test_time_to_accuracy_improves_with_compression(self):
        simulator = self._simulator()
        runs = simulator.compare_scan_groups(
            {5: 55_000, 10: 110_000}, {5: 0.66, 10: 0.67}, n_epochs=90
        )
        target = 0.6
        assert runs[5].time_to_accuracy(target) < runs[10].time_to_accuracy(target)

    def test_unreachable_accuracy_returns_none(self):
        simulator = self._simulator()
        runs = simulator.compare_scan_groups({10: 110_000}, {10: 0.5}, n_epochs=10)
        assert runs[10].time_to_accuracy(0.9) is None

    def test_saturating_curve_properties(self):
        curve = saturating_accuracy_curve(0.7, time_constant_epochs=10)
        assert curve(0) < curve(10) < curve(100)
        assert curve(300) == pytest.approx(0.7, abs=1e-3)

    def test_mssim_degraded_accuracy(self):
        assert mssim_degraded_accuracy(0.7, 1.0) == pytest.approx(0.7)
        assert mssim_degraded_accuracy(0.7, 0.9, sensitivity=2.0) < mssim_degraded_accuracy(
            0.7, 0.9, sensitivity=0.5
        )
        assert mssim_degraded_accuracy(0.7, 0.0, sensitivity=5.0) == 0.0
