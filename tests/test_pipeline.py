"""Tests for samplers, augmentations, batching, the loader, and stall tracking."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.pipeline.augment import (
    CenterCrop,
    Compose,
    HorizontalFlip,
    RandomCrop,
    Resize,
    bilinear_resize,
    standard_training_augmentations,
)
from repro.pipeline.batch import collate
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.pipeline.sampler import SequentialSampler, ShuffleSampler
from repro.pipeline.stall import StallTracker


class TestSamplers:
    def test_sequential_preserves_order(self):
        items = ["a", "b", "c"]
        assert list(SequentialSampler(items)) == items

    def test_shuffle_is_permutation(self):
        items = list(range(50))
        sampler = ShuffleSampler(items, seed=3)
        shuffled = list(sampler)
        assert sorted(shuffled) == items
        assert shuffled != items

    def test_shuffle_differs_across_epochs(self):
        sampler = ShuffleSampler(list(range(30)), seed=1)
        assert list(sampler) != list(sampler)

    def test_shuffle_reproducible_with_seed(self):
        assert list(ShuffleSampler(list(range(20)), seed=5)) == list(
            ShuffleSampler(list(range(20)), seed=5)
        )

    def test_len(self):
        assert len(SequentialSampler([1, 2])) == 2
        assert len(ShuffleSampler([1, 2, 3])) == 3


class TestAugmentations:
    def _image(self, height=20, width=30):
        rng = np.random.default_rng(0)
        return rng.uniform(0, 255, size=(height, width, 3))

    def test_resize_shape(self):
        rng = np.random.default_rng(1)
        out = Resize(16)(self._image(), rng)
        assert out.shape == (16, 16, 3)

    def test_bilinear_resize_preserves_constant_images(self):
        constant = np.full((10, 10), 7.0)
        assert np.allclose(bilinear_resize(constant, 23, 17), 7.0)

    def test_bilinear_resize_identity(self):
        image = self._image(8, 8)
        assert np.allclose(bilinear_resize(image, 8, 8), image)

    def test_random_crop_shape_and_content(self):
        rng = np.random.default_rng(2)
        image = self._image(20, 20)
        out = RandomCrop(12)(image, rng)
        assert out.shape == (12, 12, 3)

    def test_random_crop_pads_small_images(self):
        rng = np.random.default_rng(3)
        out = RandomCrop(32)(self._image(20, 20), rng)
        assert out.shape == (32, 32, 3)

    def test_center_crop_is_deterministic(self):
        rng = np.random.default_rng(4)
        image = self._image(21, 21)
        a = CenterCrop(10)(image, rng)
        b = CenterCrop(10)(image, rng)
        assert np.array_equal(a, b)

    def test_horizontal_flip_probability_one(self):
        rng = np.random.default_rng(5)
        image = self._image(6, 6)
        flipped = HorizontalFlip(probability=1.0)(image, rng)
        assert np.array_equal(flipped, image[:, ::-1])

    def test_horizontal_flip_probability_zero(self):
        rng = np.random.default_rng(6)
        image = self._image(6, 6)
        assert np.array_equal(HorizontalFlip(probability=0.0)(image, rng), image)

    def test_compose_and_standard_recipe(self):
        rng = np.random.default_rng(7)
        recipe = standard_training_augmentations(24)
        assert isinstance(recipe, Compose)
        out = recipe(self._image(48, 40), rng)
        assert out.shape == (24, 24, 3)

    def test_eval_recipe_deterministic(self):
        rng = np.random.default_rng(8)
        recipe = standard_training_augmentations(24, train=False)
        image = self._image(48, 40)
        assert np.array_equal(recipe(image, rng), recipe(image, rng))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Resize(0)
        with pytest.raises(ValueError):
            HorizontalFlip(probability=1.5)


class TestCollate:
    def test_shapes_and_scaling(self):
        images = [np.full((8, 8, 3), 255.0), np.zeros((8, 8, 3))]
        batch = collate(images, [1, 0])
        assert batch.images.shape == (2, 8, 8, 3)
        assert batch.images.dtype == np.float32
        assert batch.images.max() <= 1.0
        assert batch.labels.tolist() == [1, 0]
        assert len(batch) == 2

    def test_grayscale_gets_channel_axis(self):
        batch = collate([np.zeros((8, 8))], [0])
        assert batch.images.shape == (1, 8, 8, 1)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            collate([np.zeros((4, 4, 3))], [0, 1])

    def test_empty_batch(self):
        with pytest.raises(ValueError):
            collate([], [])

    def test_classes_present(self):
        batch = collate([np.zeros((4, 4, 3))] * 3, [0, 0, 2])
        assert batch.n_classes_present == 2


class TestDataLoader:
    def test_epoch_covers_every_sample_once(self, pcr_dataset):
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=6, n_workers=2, shuffle=True))
        total = sum(len(batch) for batch in loader.epoch())
        assert total == len(pcr_dataset)

    def test_batches_per_epoch(self, pcr_dataset):
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=6))
        assert loader.batches_per_epoch() == 4  # 20 samples -> 3 full + 1 partial
        loader_drop = DataLoader(pcr_dataset, LoaderConfig(batch_size=6, drop_last=True))
        assert loader_drop.batches_per_epoch() == 3

    def test_drop_last(self, pcr_dataset):
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=6, drop_last=True))
        sizes = [len(batch) for batch in loader.epoch()]
        assert all(size == 6 for size in sizes)

    def test_augmented_batches_have_requested_size(self, pcr_dataset):
        loader = DataLoader(
            pcr_dataset,
            LoaderConfig(batch_size=4, n_workers=1, shuffle=False),
            augmentations=standard_training_augmentations(24),
        )
        batch = next(iter(loader.epoch()))
        assert batch.images.shape[1:] == (24, 24, 3)

    def test_scan_group_switch_changes_bytes_read(self, pcr_dataset):
        # Open an independent dataset view so byte accounting is not shared
        # with other tests' loaders.
        from repro.core.dataset import PCRDataset

        dataset = PCRDataset(pcr_dataset.reader.directory, scan_group=1)
        loader = DataLoader(dataset, LoaderConfig(batch_size=8, n_workers=1))
        list(loader.epoch())
        low_bytes = dataset.reader.stats.bytes_read
        dataset.reader.stats.reset()
        dataset.set_scan_group(10)
        list(loader.epoch())
        high_bytes = dataset.reader.stats.bytes_read
        assert low_bytes == dataset.reader.dataset_bytes_for_group(1)
        assert high_bytes == dataset.reader.dataset_bytes_for_group(10)
        assert high_bytes > 1.5 * low_bytes
        dataset.close()

    def test_stalls_are_recorded(self, pcr_dataset):
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=8, n_workers=1))
        list(loader.epoch())
        assert len(loader.stalls.wait_seconds) > 0


def _wait_for_thread_count(limit: int, deadline_seconds: float = 5.0) -> int:
    deadline = time.monotonic() + deadline_seconds
    while threading.active_count() > limit and time.monotonic() < deadline:
        time.sleep(0.02)
    return threading.active_count()


class TestDataLoaderShutdown:
    """Regression tests: error/abandonment paths must not leak worker threads.

    A tiny prefetch queue forces workers to block mid-``put``, which is
    exactly the state the stop-event/drain shutdown has to recover from.
    """

    def test_worker_error_joins_all_workers(self, pcr_dataset):
        loader = DataLoader(
            pcr_dataset,
            LoaderConfig(batch_size=4, n_workers=2, prefetch_batches=1, shuffle=False),
        )
        original_load = loader._load_record
        failures = {"count": 0}

        def failing_load(record_name, rng):
            failures["count"] += 1
            if failures["count"] == 1:
                raise RuntimeError("injected worker failure")
            return original_load(record_name, rng)

        loader._load_record = failing_load
        baseline_threads = threading.active_count()
        with pytest.raises(RuntimeError, match="injected worker failure"):
            for _ in loader.epoch():
                pass
        assert _wait_for_thread_count(baseline_threads) <= baseline_threads

    def test_abandoned_iterator_joins_all_workers(self, pcr_dataset):
        loader = DataLoader(
            pcr_dataset,
            LoaderConfig(batch_size=4, n_workers=2, prefetch_batches=1, shuffle=False),
        )
        baseline_threads = threading.active_count()
        iterator = loader.epoch()
        next(iterator)
        iterator.close()  # GeneratorExit inside epoch() must trigger shutdown
        assert _wait_for_thread_count(baseline_threads) <= baseline_threads

    def test_clean_epoch_leaves_no_threads(self, pcr_dataset):
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=4, n_workers=2))
        baseline_threads = threading.active_count()
        list(loader.epoch())
        assert _wait_for_thread_count(baseline_threads) <= baseline_threads


class TestDataLoaderParallelDecode:
    """`decode_workers` must change throughput mechanics, never results."""

    @staticmethod
    def _epoch(dataset, decode_workers: int):
        # One reader thread: with several, batch order depends on thread
        # interleaving (for any decode_workers), which is not what's under
        # test — decode parallelism must not change the *content*.
        loader = DataLoader(
            dataset,
            LoaderConfig(batch_size=8, n_workers=1, seed=11, decode_workers=decode_workers),
        )
        try:
            return [(b.images.copy(), b.labels.copy()) for b in loader.epoch()]
        finally:
            loader.close()

    def test_epoch_identical_to_in_process(self, pcr_dataset):
        reference = self._epoch(pcr_dataset, 0)
        parallel = self._epoch(pcr_dataset, 4)
        assert len(reference) == len(parallel)
        for (ref_images, ref_labels), (par_images, par_labels) in zip(reference, parallel):
            assert np.array_equal(ref_images, par_images)
            assert np.array_equal(ref_labels, par_labels)

    def test_pool_persists_across_epochs_then_close(self, pcr_dataset):
        loader = DataLoader(
            pcr_dataset, LoaderConfig(batch_size=8, n_workers=1, decode_workers=2)
        )
        list(loader.epoch())
        pool = loader._decode_pool
        assert pool is not None and not pool.closed
        list(loader.epoch())
        assert loader._decode_pool is pool  # warm fleet reused
        assert pool.stats.parallel_batches > 0
        loader.close()
        assert loader._decode_pool is None
        assert pool.closed
        assert pcr_dataset.reader._decode_pool is None  # uninstalled

    def test_keyboard_interrupt_tears_down_decode_workers(self, pcr_dataset):
        loader = DataLoader(
            pcr_dataset,
            LoaderConfig(batch_size=4, n_workers=2, prefetch_batches=1, decode_workers=2),
        )
        iterator = loader.epoch()
        next(iterator)
        pool = loader._decode_pool
        assert pool is not None
        workers = list(pool._state.workers)
        with pytest.raises(KeyboardInterrupt):
            iterator.throw(KeyboardInterrupt)
        assert loader._decode_pool is None
        assert pool.closed
        deadline = time.monotonic() + 5.0
        while any(w.is_alive() for w in workers) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert all(not w.is_alive() for w in workers)

    def test_abandoned_iterator_tears_down_decode_workers(self, pcr_dataset):
        loader = DataLoader(
            pcr_dataset,
            LoaderConfig(batch_size=4, n_workers=2, prefetch_batches=1, decode_workers=2),
        )
        iterator = loader.epoch()
        next(iterator)
        pool = loader._decode_pool
        iterator.close()  # GeneratorExit
        assert loader._decode_pool is None
        assert pool.closed


class TestStallTracker:
    def test_fraction_and_totals(self):
        tracker = StallTracker()
        tracker.record_wait(1.0)
        tracker.record_compute(3.0)
        assert tracker.total_wait == 1.0
        assert tracker.stall_fraction == pytest.approx(0.25)

    def test_stalled_iterations_threshold(self):
        tracker = StallTracker()
        tracker.record_wait(0.0001)
        tracker.record_wait(0.5)
        assert tracker.stalled_iterations(threshold_seconds=1e-3) == 1

    def test_timeline(self):
        tracker = StallTracker()
        tracker.record_wait(0.1)
        tracker.record_wait(0.2)
        assert tracker.timeline() == [(0, 0.1), (1, 0.2)]

    def test_empty_tracker(self):
        assert StallTracker().stall_fraction == 0.0
